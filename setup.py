"""Setuptools shim for environments without the `wheel` package.

`pip install -e . --no-build-isolation` falls back to the legacy develop
install through this file; all metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
