"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``synthetic``
    Run the methodology on one of the five synthetic cases and print the
    analysis + tuning summary.
``tddft``
    Run the staged methodology on a simulated RT-TDDFT case study.
``report``
    Analyze a campaign trace (``--trace-dir`` output): stage wall-time
    attribution and best-value-vs-evaluations progression.  With
    ``--service DIR`` it instead aggregates every job trace in a
    service directory into one cross-job table.
``info``
    Print the package inventory and the per-experiment benchmark map.
``serve``
    Run the crash-safe tuning job service (WAL-backed registry,
    lease-supervised workers, REST API; see ``docs/service.md``).
``submit``
    Submit a job to a running service (or enqueue it offline straight
    into a registry directory for the next ``serve``).
``jobs``
    List jobs or show one job's status on a running service.
``watch``
    Follow a running service's SSE event stream (all jobs, or one job
    until it completes; see ``docs/observability.md``).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

__all__ = ["main"]


def _make_telemetry(args: argparse.Namespace, command: str):
    """Build the run's Telemetry handle from CLI flags (or ``None``).

    Tracing requires ``--trace-dir`` (one JSONL trace file per command
    run); the live progress line additionally needs a TTY stderr and no
    ``--no-progress``.  Without either, no telemetry object exists at
    all — the zero-overhead default, and no telemetry files are written.
    """
    want_progress = (
        not getattr(args, "no_progress", False) and sys.stderr.isatty()
    )
    trace_dir = getattr(args, "trace_dir", None)
    if trace_dir is None and not want_progress:
        return None
    from .telemetry import JsonlSink, ProgressReporter, Telemetry

    sinks = []
    if trace_dir is not None:
        sinks.append(
            JsonlSink(os.path.join(trace_dir, f"{command}.trace.jsonl"))
        )
    progress = ProgressReporter() if want_progress else None
    return Telemetry(sinks, progress=progress)


def _cmd_synthetic(args: argparse.Namespace) -> int:
    from .core import TuningMethodology
    from .synthetic import SyntheticFunction

    app = SyntheticFunction(args.case, random_state=args.seed)
    telemetry = _make_telemetry(args, "synthetic")
    tm = TuningMethodology(
        app.search_space(),
        app.routines(),
        cutoff=args.cutoff,
        n_variations=args.variations,
        telemetry=telemetry,
        random_state=args.seed,
        **_robustness_kwargs(args),
    )
    try:
        result = tm.run() if not args.plan_only else tm.analyze()
    finally:
        if telemetry is not None:
            telemetry.close()
    print(result.summary())
    if not args.plan_only:
        print(f"\ncombined best F = {app(result.best_config):.3f}")
    return 0


def _cmd_tddft(args: argparse.Namespace) -> int:
    from .core import TuningMethodology
    from .tddft import RTTDDFTApplication, case_study

    app = RTTDDFTApplication(case_study(args.case_study), random_state=args.seed)
    telemetry = _make_telemetry(args, "tddft")
    tm = TuningMethodology(
        app.search_space(),
        app.routines(),
        cutoff=args.cutoff,
        n_variations=args.variations,
        n_baselines=args.baselines,
        variation_mode="random",
        hierarchy=app.hierarchy(),
        telemetry=telemetry,
        random_state=args.seed,
        **_robustness_kwargs(args),
    )
    try:
        result = tm.run() if not args.plan_only else tm.analyze()
    finally:
        if telemetry is not None:
            telemetry.close()
    print(result.summary())
    if not args.plan_only:
        app.noise_scale = 0.0
        before = app.total_runtime(app.defaults())
        after = app.total_runtime(result.best_config)
        print(f"\ndefault : {1000 * before:9.2f} ms/iteration")
        print(f"tuned   : {1000 * after:9.2f} ms/iteration "
              f"({before / after:.2f}x speedup)")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    if args.service is not None:
        from .service import ServiceReport

        report = ServiceReport.from_service_dir(args.service)
        if not report.jobs:
            print(f"{args.service}: no jobs recorded")
            return 1
        print(report.format())
        return 0
    if args.trace is None:
        print("repro report: provide TRACE.jsonl or --service DIR",
              file=sys.stderr)
        return 2
    from .telemetry import TraceReport

    report = TraceReport.from_file(args.trace)
    if not report.events:
        print(f"{args.trace}: empty trace")
        return 1
    print(report.format())
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    from . import __version__

    print(f"repro {__version__} — IPDPS'24 cost-effective tuning methodology")
    print(__doc__ or "")
    print("experiment -> benchmark map:")
    experiments = [
        ("Table I", "bench_table1_synthetic.py"),
        ("Table II", "bench_table2_sensitivity.py"),
        ("Figure 2", "bench_fig2_dag.py"),
        ("Table III", "bench_table3_strategies.py"),
        ("Table IV", "bench_table4_space.py"),
        ("Table V", "bench_table5_cs1_sensitivity.py"),
        ("Table VI", "bench_table6_cs2_sensitivity.py"),
        ("Figure 5", "bench_fig5_tddft_dag.py"),
        ("Table VII", "bench_table7_search_set.py"),
        ("Figure 6", "bench_fig6_progression.py"),
        ("Sec. V motivation", "bench_cpu_motivation.py"),
        ("Sec. VIII joint-vs-separate", "bench_joint_vs_separate.py"),
        ("Sec. IV-C observation cost", "bench_orthogonality_cost.py"),
        ("Abstract headline claims", "bench_headline_claims.py"),
    ]
    for exp, bench in experiments:
        print(f"  {exp:<28} benchmarks/{bench}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import AdmissionController, JobRegistry, ServiceServer, Supervisor

    telemetry = _make_telemetry(args, "serve")
    registry = JobRegistry(
        os.path.join(args.registry_dir, "registry"), fsync=args.fsync
    )
    admission = AdmissionController(
        max_queue=args.max_queue,
        tenant_quota=args.tenant_quota,
        tenant_fail_threshold=args.tenant_fail_threshold,
    )
    supervisor = Supervisor(
        registry,
        jobs_dir=os.path.join(args.registry_dir, "jobs"),
        admission=admission,
        workers=args.workers,
        heartbeat_interval=args.heartbeat_interval,
        max_missed=args.max_missed,
        max_attempts=args.max_attempts,
        inline=args.inline,
        telemetry=telemetry,
        job_traces=args.job_traces,
        pool_size=args.pool_size,
        eval_store=args.eval_store,
    )
    supervisor.install_signal_handlers()
    orphans = supervisor.recover()
    if orphans:
        print(f"requeued {len(orphans)} orphaned job(s)")
    server = None
    if not args.no_http:
        server = ServiceServer(supervisor, host=args.host, port=args.port)
        server.start()
        print(f"listening on {server.url}", flush=True)
    try:
        clean = supervisor.run(
            drain_when_idle=args.drain_when_idle,
            max_seconds=args.max_seconds,
        )
    finally:
        if server is not None:
            server.stop()
        registry.compact()
        registry.close()
        if telemetry is not None:
            telemetry.close()
    return 0 if clean else 1


def _parse_job_params(args: argparse.Namespace) -> dict:
    import json

    params = dict(json.loads(args.params)) if args.params else {}
    for key in ("case", "seed", "budget"):
        value = getattr(args, key, None)
        if value is not None:
            params[key] = value
    return params


def _cmd_submit(args: argparse.Namespace) -> int:
    import json

    params = _parse_job_params(args)
    if args.registry_dir is not None:
        # Offline enqueue: write straight into the registry; the next
        # `repro serve` on this directory leases it.
        from .service import JobRegistry, JobSpec

        with JobRegistry(os.path.join(args.registry_dir, "registry")) as reg:
            rec = reg.submit(
                JobSpec(kind=args.kind, tenant=args.tenant, params=params)
            )
        print(json.dumps({"job_id": rec.job_id, "state": rec.state}))
        return 0
    from .service import ServiceClientError, submit_job, wait_for_job

    try:
        rec = submit_job(
            args.server, args.kind, tenant=args.tenant, params=params
        )
    except ServiceClientError as exc:
        print(json.dumps(exc.payload), file=sys.stderr)
        return 1
    if args.wait:
        rec = wait_for_job(args.server, rec["job_id"], timeout=args.timeout)
    print(json.dumps(rec, sort_keys=True))
    return 0 if rec["state"] not in ("failed", "rejected") else 1


def _format_watch_event(cursor: int, event: dict) -> str:
    """One human-readable line per service event."""
    name = event.get("event", "?")
    job = event.get("job", "?")
    if name == "job_state":
        extra = f" reason={event['reason']}" if event.get("reason") else ""
        snap = " (snapshot)" if event.get("snapshot") else ""
        return f"[{cursor}] {job} state={event.get('state')}{extra}{snap}"
    if name == "tune_start":
        return (
            f"[{cursor}] {job} tune_start scope={event.get('scope')} "
            f"engine={event.get('engine')} budget={event.get('budget')}"
            + (" resumed" if event.get("resumed") else "")
        )
    if name == "combo_result":
        obj = event.get("objective")
        best = event.get("best")
        line = (
            f"[{cursor}] {job} eval #{event.get('seq')} "
            f"objective={obj if obj is not None else 'failed'}"
        )
        if isinstance(best, (int, float)):
            line += f" best={best:.6g}"
        return line
    if name == "job_progress":
        eta = event.get("eta_seconds")
        thr = event.get("throughput")
        bits = [f"{event.get('done')}/{event.get('budget') or '?'} evals"]
        if event.get("best") is not None:
            bits.append(f"best={event['best']:.6g}")
        if thr is not None:
            bits.append(f"{thr:.1f} eval/s")
        if eta is not None:
            bits.append(f"eta={eta:.0f}s")
        return f"[{cursor}] {job} progress " + " ".join(bits)
    if name == "job_done":
        bits = [f"[{cursor}] {job} {event.get('state')}"]
        if event.get("best_objective") is not None:
            bits.append(f"best={event['best_objective']:.6g}")
        if event.get("fingerprint"):
            bits.append(f"fingerprint={event['fingerprint'][:12]}")
        if event.get("error"):
            bits.append(f"error={event['error']}")
        return " ".join(bits)
    import json

    return f"[{cursor}] {json.dumps(event, sort_keys=True)}"


def _cmd_watch(args: argparse.Namespace) -> int:
    import json

    from .service import ServiceClientError, stream_events

    exit_state = None
    try:
        for cursor, event in stream_events(
            args.server,
            args.job,
            last_event_id=args.last_event_id,
            timeout=args.timeout,
            max_events=args.max_events,
            keepalive=args.keepalive,
        ):
            if args.raw:
                print(json.dumps({"cursor": cursor, **event}, sort_keys=True),
                      flush=True)
            else:
                print(_format_watch_event(cursor, event), flush=True)
            if event.get("event") == "job_done" and event.get("job") == args.job:
                exit_state = event.get("state")
    except ServiceClientError as exc:
        print(json.dumps(exc.payload), file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        return 0
    if args.job is not None:
        return 0 if exit_state == "done" else 1
    return 0


def _cmd_jobs(args: argparse.Namespace) -> int:
    import json

    from .service import cancel_job, job_status, list_jobs

    if args.job is None:
        for rec in list_jobs(args.server):
            print(json.dumps(rec, sort_keys=True))
        return 0
    rec = (
        cancel_job(args.server, args.job)
        if args.cancel
        else job_status(args.server, args.job)
    )
    print(json.dumps(rec, sort_keys=True))
    return 0


def _add_verbosity(p: argparse.ArgumentParser) -> None:
    p.add_argument("-v", "--verbose", action="count", default=0,
                   help="log level: -v = INFO, -vv = DEBUG on the "
                        "repro.* logger hierarchy (default: WARNING)")


def _add_executor_options(p: argparse.ArgumentParser) -> None:
    """Campaign-executor flags shared by the tuning commands."""
    _add_verbosity(p)
    p.add_argument("--sampler", "--engine", dest="sampler", default="bo",
                   metavar="NAME",
                   help="search engine for the planned searches: any "
                        "registered sampler name (gp-bo/bo, batch-bo, "
                        "random, grid, tpe, cma-es-lite, qmc, hillclimb, "
                        "anneal; default: bo)")
    p.add_argument("--sampler-for", action="append", default=[],
                   metavar="REGION=NAME",
                   help="override the sampler for one planned search / "
                        "DAG region by name (e.g. --sampler-for "
                        "'G3+G4=tpe'); repeatable, other searches keep "
                        "--sampler")
    p.add_argument("--parallel", action="store_true",
                   help="run each stage's member searches concurrently "
                        "(process pool; falls back in-process for "
                        "unpicklable objectives with identical results)")
    p.add_argument("--workers", type=int, default=None, metavar="N",
                   help="process-pool width (default: cpu count)")
    p.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                   help="directory for crash-recovery evaluation "
                        "checkpoints; rerunning resumes from them")
    p.add_argument("--parallel-analysis", action="store_true",
                   help="fan phase-1 measurements (baseline, variations, "
                        "insight sample) across the process pool; "
                        "bit-identical to sequential for deterministic "
                        "objectives")
    p.add_argument("--analysis-checkpoint-dir", default=None, metavar="DIR",
                   help="directory for phase-1 append-only observation "
                        "logs; a killed analysis resumes mid-variation "
                        "instead of restarting")
    p.add_argument("--warm-start", action=argparse.BooleanOptionalAction,
                   default=False,
                   help="recycle phase-1 observations as BO seed history "
                        "(each match replaces one cold search "
                        "evaluation); --no-warm-start keeps searches "
                        "cold (default)")
    p.add_argument("--warm-start-tolerance", type=float, default=0.0,
                   metavar="TOL",
                   help="relative tolerance for numeric pin matching "
                        "during warm-start projection (default: 0 = "
                        "exact; inexact matches never prime the "
                        "memoization cache)")
    p.add_argument("--warm-start-max", type=int, default=None, metavar="K",
                   help="cap on seeded observations per search "
                        "(default: the engine's n_initial)")
    p.add_argument("--max-retries", type=int, default=0, metavar="K",
                   help="retry transiently-failing evaluations up to K "
                        "times (permanent failures short-circuit)")
    p.add_argument("--retry-backoff", type=float, default=0.05,
                   metavar="SEC", help="initial exponential-backoff delay "
                        "between retries (default: 0.05s)")
    p.add_argument("--memoize", action="store_true",
                   help="cache evaluations on the canonicalized "
                        "configuration (permanent failures become poison "
                        "keys and are never re-paid)")
    p.add_argument("--wall-timeout", type=float, default=None, metavar="SEC",
                   help="real wall-clock watchdog deadline per evaluation "
                        "(catches genuinely hanging objectives)")
    p.add_argument("--quarantine-threshold", type=int, default=None,
                   metavar="K",
                   help="circuit breaker: quarantine a space cell after K "
                        "permanently-classified failures in it")
    p.add_argument("--quarantine-resolution", type=int, default=4,
                   metavar="R", help="breaker grid resolution per axis "
                        "(default: 4)")
    p.add_argument("--inject-faults", default=None, metavar="PLAN.json",
                   help="chaos testing: inject deterministic faults per "
                        "the FaultPlan JSON file (see docs/robustness.md)")
    p.add_argument("--trace-dir", default=None, metavar="DIR",
                   help="write a JSONL campaign trace (spans, per-"
                        "evaluation events, metrics) to DIR; inspect it "
                        "with `repro report` (see docs/observability.md)")
    p.add_argument("--no-progress", "--quiet", dest="no_progress",
                   action="store_true",
                   help="suppress the live progress/ETA line on stderr")


def _sampler_overrides(args: argparse.Namespace) -> dict[str, str]:
    """Parse repeated ``--sampler-for REGION=NAME`` flags."""
    overrides: dict[str, str] = {}
    for term in getattr(args, "sampler_for", None) or []:
        region, sep, name = term.partition("=")
        if not sep or not region or not name:
            raise SystemExit(
                f"repro: bad --sampler-for {term!r}; expected REGION=NAME"
            )
        overrides[region.strip()] = name.strip()
    return overrides


def _robustness_kwargs(args: argparse.Namespace) -> dict:
    """Translate executor flags into TuningMethodology keyword arguments."""
    from .faults import FaultPlan

    return {
        "engine": getattr(args, "sampler", "bo"),
        "engine_overrides": _sampler_overrides(args),
        "parallel": args.parallel,
        "n_workers": args.workers,
        "checkpoint_dir": args.checkpoint_dir,
        "parallel_analysis": args.parallel_analysis,
        "analysis_checkpoint_dir": args.analysis_checkpoint_dir,
        "warm_start": args.warm_start,
        "warm_start_tolerance": args.warm_start_tolerance,
        "warm_start_max": args.warm_start_max,
        "max_retries": args.max_retries,
        "retry_backoff": args.retry_backoff,
        "memoize": args.memoize,
        "wall_timeout": args.wall_timeout,
        "quarantine_threshold": args.quarantine_threshold,
        "quarantine_resolution": args.quarantine_resolution,
        "fault_plan": (
            FaultPlan.from_json(args.inject_faults)
            if args.inject_faults
            else None
        ),
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cost-effective tuning-search methodology (IPDPS'24 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("synthetic", help="tune a synthetic case")
    p.add_argument("--case", type=int, default=3, choices=range(1, 6))
    p.add_argument("--cutoff", type=float, default=0.25)
    p.add_argument("--variations", type=int, default=100)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--plan-only", action="store_true",
                   help="run the analysis phases without executing searches")
    _add_executor_options(p)
    p.set_defaults(func=_cmd_synthetic)

    p = sub.add_parser("tddft", help="tune a simulated RT-TDDFT case study")
    p.add_argument("--case-study", type=int, default=1, choices=(1, 2))
    p.add_argument("--cutoff", type=float, default=0.10)
    p.add_argument("--variations", type=int, default=5)
    p.add_argument("--baselines", type=int, default=5)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--plan-only", action="store_true")
    _add_executor_options(p)
    p.set_defaults(func=_cmd_tddft)

    p = sub.add_parser(
        "report", help="analyze a campaign trace written by --trace-dir"
    )
    p.add_argument("trace", metavar="TRACE.jsonl", nargs="?", default=None,
                   help="trace file produced by --trace-dir")
    p.add_argument("--service", default=None, metavar="DIR",
                   help="aggregate every job trace in a service directory "
                        "(the --registry-dir of `repro serve`) into one "
                        "cross-job stage-attribution table")
    _add_verbosity(p)
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("info", help="package inventory and experiment map")
    _add_verbosity(p)
    p.set_defaults(func=_cmd_info)

    p = sub.add_parser(
        "serve", help="run the crash-safe tuning job service"
    )
    p.add_argument("--registry-dir", required=True, metavar="DIR",
                   help="service state root (WAL registry + job workdirs); "
                        "restarting on the same DIR resumes every "
                        "interrupted job from its checkpoints")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="HTTP port (default: 0 = ephemeral, printed on start)")
    p.add_argument("--no-http", action="store_true",
                   help="supervise queued jobs without the REST front-end "
                        "(batch/offline mode)")
    p.add_argument("--workers", type=int, default=2, metavar="N",
                   help="concurrent worker-process slots (default: 2)")
    p.add_argument("--pool-size", type=int, default=None, metavar="N",
                   help="run jobs on a shared pool of N long-lived worker "
                        "processes instead of forking one process per job "
                        "(amortizes process startup; implies --workers N)")
    p.add_argument("--eval-store", default=None, metavar="PATH",
                   help="append-only JSONL evaluation store shared across "
                        "jobs: configurations another job on the same "
                        "space already measured are served from the store "
                        "instead of re-evaluated")
    p.add_argument("--inline", action="store_true",
                   help="run jobs in-process instead of worker processes "
                        "(no kill-based supervision; benchmark mode)")
    p.add_argument("--heartbeat-interval", type=float, default=0.25,
                   metavar="SEC")
    p.add_argument("--max-missed", type=int, default=8, metavar="K",
                   help="heartbeats missed before a lease expires and the "
                        "worker is killed + fenced (default: 8)")
    p.add_argument("--max-attempts", type=int, default=5, metavar="K",
                   help="lease attempts before a job fails permanently")
    p.add_argument("--max-queue", type=int, default=64, metavar="N",
                   help="queued-job bound; beyond it submissions are shed "
                        "with an explicit queue_full rejection")
    p.add_argument("--tenant-quota", type=int, default=None, metavar="N",
                   help="max active jobs per tenant (default: unlimited)")
    p.add_argument("--tenant-fail-threshold", type=int, default=None,
                   metavar="K",
                   help="permanently-failed jobs before a tenant is "
                        "quarantined (circuit breaker; default: off)")
    p.add_argument("--fsync", default="always",
                   choices=("always", "rotate", "close"),
                   help="registry WAL durability policy (default: always)")
    p.add_argument("--job-traces", action=argparse.BooleanOptionalAction,
                   default=True,
                   help="write per-job JSONL traces (the substrate of "
                        "`repro watch` and GET /events; default: on). "
                        "--no-job-traces runs jobs unobserved.")
    p.add_argument("--drain-when-idle", action="store_true",
                   help="exit cleanly once the queue is empty and no "
                        "leases are active (batch mode)")
    p.add_argument("--max-seconds", type=float, default=None, metavar="SEC",
                   help="hard cap on the supervision loop (exit 1 if hit)")
    p.add_argument("--trace-dir", default=None, metavar="DIR",
                   help="write a JSONL service trace (job lifecycle "
                        "events) to DIR")
    p.add_argument("--no-progress", "--quiet", dest="no_progress",
                   action="store_true", help=argparse.SUPPRESS)
    _add_verbosity(p)
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("submit", help="submit a tuning job")
    p.add_argument("--server", default="http://127.0.0.1:8642",
                   metavar="URL", help="service base URL")
    p.add_argument("--registry-dir", default=None, metavar="DIR",
                   help="enqueue offline into this registry instead of "
                        "talking to a server")
    p.add_argument("--kind", default="campaign",
                   choices=("campaign", "methodology"))
    p.add_argument("--tenant", default="default")
    p.add_argument("--case", type=int, default=None, choices=range(1, 6))
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("--budget", type=int, default=None,
                   help="campaign-kind evaluation budget")
    p.add_argument("--params", default=None, metavar="JSON",
                   help="extra job params as a JSON object")
    p.add_argument("--wait", action="store_true",
                   help="block until the job reaches a terminal state")
    p.add_argument("--timeout", type=float, default=300.0, metavar="SEC")
    _add_verbosity(p)
    p.set_defaults(func=_cmd_submit)

    p = sub.add_parser("jobs", help="list/inspect jobs on a running service")
    p.add_argument("--server", default="http://127.0.0.1:8642", metavar="URL")
    p.add_argument("--job", default=None, metavar="ID")
    p.add_argument("--cancel", action="store_true",
                   help="cancel the job given by --job")
    _add_verbosity(p)
    p.set_defaults(func=_cmd_jobs)

    p = sub.add_parser(
        "watch", help="follow a service's live SSE event stream"
    )
    p.add_argument("job", nargs="?", default=None, metavar="JOB_ID",
                   help="watch one job (stream ends at its job_done; exit "
                        "0 iff it completed); omit to watch every job")
    p.add_argument("--server", default="http://127.0.0.1:8642", metavar="URL")
    p.add_argument("--raw", action="store_true",
                   help="print raw event JSON (one object per line, with "
                        "the cursor) instead of formatted lines")
    p.add_argument("--last-event-id", type=int, default=None, metavar="N",
                   help="resume after a previously seen cursor (sent as "
                        "the Last-Event-ID header)")
    p.add_argument("--max-events", type=int, default=None, metavar="N",
                   help="stop after N events (default: until the stream "
                        "ends)")
    p.add_argument("--keepalive", type=float, default=None, metavar="SEC",
                   help="server keep-alive ping cadence (default: 15s)")
    p.add_argument("--timeout", type=float, default=3600.0, metavar="SEC",
                   help="socket read timeout; must exceed the keep-alive "
                        "cadence (default: 3600)")
    _add_verbosity(p)
    p.set_defaults(func=_cmd_watch)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    from .log import configure_logging

    args = build_parser().parse_args(argv)
    configure_logging(getattr(args, "verbose", 0))
    try:
        return args.func(args)
    except BrokenPipeError:
        # e.g. `repro report trace.jsonl | head`; suppress the stderr
        # noise from the interpreter closing the torn stdout at exit.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
