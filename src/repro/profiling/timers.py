"""Lightweight profiling utilities.

Following the HPC-Python optimization workflow (measure before tuning),
the examples and the numeric mini-app use these region timers to report
where time goes — a miniature of the profiling pass that told the paper's
authors "40-50% of the runtime is attributed to communication primitives".
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["RegionTimer", "TimingReport"]


@dataclass
class _Record:
    total: float = 0.0
    count: int = 0


class RegionTimer:
    """Accumulating named-region timer.

    >>> timer = RegionTimer()
    >>> with timer.region("fft"):
    ...     pass
    >>> timer.total("fft") >= 0.0
    True

    Regions may nest and repeat; totals accumulate across entries.
    """

    def __init__(self):
        self._records: dict[str, _Record] = {}

    @contextmanager
    def region(self, name: str) -> Iterator[None]:
        """Time one entry of the named region."""
        if not name:
            raise ValueError("region name must be non-empty")
        rec = self._records.setdefault(name, _Record())
        t0 = time.perf_counter()
        try:
            yield
        finally:
            rec.total += time.perf_counter() - t0
            rec.count += 1

    def add(self, name: str, seconds: float, count: int = 1) -> None:
        """Record externally measured (e.g. simulated) time."""
        if seconds < 0:
            raise ValueError("seconds must be >= 0")
        rec = self._records.setdefault(name, _Record())
        rec.total += seconds
        rec.count += count

    def total(self, name: str) -> float:
        return self._records[name].total

    def count(self, name: str) -> int:
        return self._records[name].count

    @property
    def regions(self) -> list[str]:
        return list(self._records)

    def report(self) -> "TimingReport":
        return TimingReport(
            {n: (r.total, r.count) for n, r in self._records.items()}
        )

    def reset(self) -> None:
        self._records.clear()


@dataclass
class TimingReport:
    """Immutable snapshot of a :class:`RegionTimer`."""

    entries: dict[str, tuple[float, int]] = field(default_factory=dict)

    @property
    def grand_total(self) -> float:
        return sum(t for t, _ in self.entries.values())

    def share(self, name: str) -> float:
        """Fraction of the grand total spent in ``name``."""
        total = self.grand_total
        return self.entries[name][0] / total if total > 0 else 0.0

    def to_json(self) -> str:
        """Serialize to a JSON string (inverse of :meth:`from_json`)."""
        return json.dumps(
            {n: [t, c] for n, (t, c) in sorted(self.entries.items())},
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "TimingReport":
        data = json.loads(text)
        return cls({n: (float(t), int(c)) for n, (t, c) in data.items()})

    def merge(self, other: "TimingReport") -> "TimingReport":
        """New report with totals and call counts summed per region."""
        entries = dict(self.entries)
        for name, (t, c) in other.entries.items():
            t0, c0 = entries.get(name, (0.0, 0))
            entries[name] = (t0 + t, c0 + c)
        return TimingReport(entries)

    def format(self) -> str:
        """Sorted profile table (largest region first).

        The name column widens to fit the longest region name, so long
        names (e.g. span kinds like ``sensitivity_checkpoint_loaded``)
        no longer push their row out of alignment.
        """
        total = self.grand_total
        w = max(24, max((len(n) for n in self.entries), default=0))
        lines = [f"{'Region':<{w}} {'Total':>12} {'Calls':>8} {'Share':>7}"]
        for name, (t, c) in sorted(self.entries.items(), key=lambda kv: -kv[1][0]):
            share = 100.0 * t / total if total > 0 else 0.0
            lines.append(f"{name:<{w}} {t:>11.4f}s {c:>8} {share:>6.1f}%")
        lines.append(f"{'TOTAL':<{w}} {total:>11.4f}s")
        return "\n".join(lines)
