"""Profiling utilities (region timers, timing reports)."""

from .timers import RegionTimer, TimingReport

__all__ = ["RegionTimer", "TimingReport"]
