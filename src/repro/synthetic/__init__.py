"""The paper's 20-dimensional synthetic tuning benchmark (Section III-C)."""

from .functions import (
    CASE_INFLUENCE,
    GROUP_VARIABLES,
    SyntheticFunction,
    all_cases,
)

__all__ = [
    "SyntheticFunction",
    "GROUP_VARIABLES",
    "CASE_INFLUENCE",
    "all_cases",
]
