"""The paper's 20-dimensional synthetic benchmark suite (Section III-C).

Implements Figure 1's function body and the five Group-3 variants of
Table I exactly:

.. math::

   F(x_0..x_{19}) = \\log|G_1| + \\log|G_2| + \\log|G_3| + \\log|G_4|

with (:math:`A_i = 10\\cos(2\\pi (x_i - 1)) + \\epsilon`, all
:math:`x_i \\in [-50, 50]`):

* Group 1 (owns x0..x4):  ``sum_{i=0}^{3}(x_i - x_{i+1})^2 + sum_{i=0}^{4} A_i``
* Group 2 (owns x5..x9):  ``sum_{k=5}^{8}(x_k - x_{k+1})^4 + sum_{k=5}^{9} A_k``
* Group 3 (owns x10..x14): the per-case template of Table I, which also
  reads Group 4's variables x15..x19 — the deliberate cross-routine
  interdependence the methodology must discover:

  ========  =====================  ==============================================
  Case      Group-4 influence      Group-3 formula
  ========  =====================  ==============================================
  Case 1    very low               ``sum x_u + sum cos(2 pi x_v) + eps``
  Case 2    low                    ``sum x_u^2 + sum x_v + eps``
  Case 3    medium                 ``sum x_u^2 + sum x_v^2 + eps``
  Case 4    high                   ``sum (x_u * x_v^4)^2 + eps``
  Case 5    extremely high         ``sum (x_u * x_v^8)^2 + eps``
  ========  =====================  ==============================================

  (u runs over 10..14 and v over 15..19; cases 4 and 5 pair u=10+j with
  v=15+j.)
* Group 4 (owns x15..x19): ``sum_{v=15}^{19} 1/x_v + eps``.

The "log() transformation applied to the absolute value of each group's
result" is guarded at ``|g| >= 1e-12`` so the objective stays finite, and
Group 4's reciprocals clip ``|x_v| >= 1e-6`` against division by zero.

Noise: every :math:`\\epsilon` is an independent draw from
``N(0, noise_scale^2)`` using the function's own generator, "aligning with
the inherent unpredictability encountered in HPC applications".  Set
``noise_scale=0`` for deterministic unit-testable values.
"""

from __future__ import annotations

import math
import time
from typing import Any, Mapping, Sequence

import numpy as np

from ..core.routine import Routine, RoutineSet
from ..space import Real, SearchSpace

__all__ = [
    "SyntheticFunction",
    "GROUP_VARIABLES",
    "CASE_INFLUENCE",
    "all_cases",
]

# Ownership map of Figure 1: which x-variables each group may tune.
GROUP_VARIABLES: dict[str, tuple[str, ...]] = {
    "Group 1": tuple(f"x{i}" for i in range(0, 5)),
    "Group 2": tuple(f"x{i}" for i in range(5, 10)),
    "Group 3": tuple(f"x{i}" for i in range(10, 15)),
    "Group 4": tuple(f"x{i}" for i in range(15, 20)),
}

# Table I's qualitative grading of Group 4's influence on Group 3.
CASE_INFLUENCE: dict[int, str] = {
    1: "Very Low",
    2: "Low",
    3: "Medium",
    4: "High",
    5: "Extremely High",
}

_LOG_FLOOR = 1e-12
_RECIP_FLOOR = 1e-6


def _safe_log_abs(value: float) -> float:
    return math.log(max(abs(value), _LOG_FLOOR))


class _GroupObjective:
    """One group's runtime-like output as a standalone objective.

    A module-level class (rather than a closure inside
    :meth:`SyntheticFunction.routines`) so routine objectives can cross a
    ``ProcessPoolExecutor`` boundary — parallel Phase-1 analysis and
    parallel campaigns pickle the whole routine set into worker processes.
    """

    __slots__ = ("fn", "group")

    def __init__(self, fn: "SyntheticFunction", group: str):
        self.fn = fn
        self.group = group

    def __call__(self, config: Mapping[str, Any]) -> float:
        return self.fn.group_outputs(config)[self.group]


class SyntheticFunction:
    """One of the five synthetic cases, exposed as a tunable application.

    Parameters
    ----------
    case:
        1..5, selecting the Group-3 template from Table I.
    noise_scale:
        Standard deviation of every epsilon draw (0 = deterministic).  The
        default keeps the noise-induced variability under ~1% of typical
        group magnitudes, matching the paper's observation that noise
        produces "marginal variability (less than 1%)" in the
        non-interdependent groups.
    random_state:
        Seed / generator for the noise stream.
    eval_cost:
        Seconds of wall-clock to burn per application run (default 0).
        The real workloads the paper tunes cost minutes per measurement;
        this knob lets service/caching benchmarks reproduce that regime
        — where the evaluation dominates and a served cache hit is a
        genuine saving — without shipping an HPC kernel.

    The object is callable on configuration dicts (``{"x0": .., ...,
    "x19": ..}``) and also accepts plain 20-vectors via
    :meth:`evaluate_vector`.
    """

    N_DIM = 20
    LOW, HIGH = -50.0, 50.0

    def __init__(
        self,
        case: int,
        *,
        noise_scale: float = 0.001,
        random_state: int | np.random.Generator | None = None,
        eval_cost: float = 0.0,
    ):
        if case not in CASE_INFLUENCE:
            raise ValueError(f"case must be 1..5, got {case}")
        if noise_scale < 0:
            raise ValueError("noise_scale must be >= 0")
        if eval_cost < 0:
            raise ValueError("eval_cost must be >= 0")
        self.case = int(case)
        self.noise_scale = float(noise_scale)
        self.eval_cost = float(eval_cost)
        self.rng = (
            random_state
            if isinstance(random_state, np.random.Generator)
            else np.random.default_rng(random_state)
        )

    # ------------------------------------------------------------------
    # Noise
    # ------------------------------------------------------------------
    def _eps(self) -> float:
        if self.noise_scale == 0.0:
            return 0.0
        return float(self.rng.normal(0.0, self.noise_scale))

    def _A(self, x: float) -> float:
        """Figure 1's ``A_i = 10 cos(2 pi (x_i - 1)) + eps`` term."""
        return 10.0 * math.cos(2.0 * math.pi * (x - 1.0)) + self._eps()

    # ------------------------------------------------------------------
    # Raw (pre-log) group values
    # ------------------------------------------------------------------
    def group1_raw(self, x: Sequence[float]) -> float:
        quad = sum((x[i] - x[i + 1]) ** 2 for i in range(0, 4))
        return quad + sum(self._A(x[i]) for i in range(0, 5))

    def group2_raw(self, x: Sequence[float]) -> float:
        quart = sum((x[k] - x[k + 1]) ** 4 for k in range(5, 9))
        return quart + sum(self._A(x[k]) for k in range(5, 10))

    def group3_raw(self, x: Sequence[float]) -> float:
        u = range(10, 15)
        v = range(15, 20)
        c = self.case
        if c == 1:
            val = sum(x[i] for i in u) + sum(
                math.cos(2.0 * math.pi * x[j]) for j in v
            )
        elif c == 2:
            val = sum(x[i] ** 2 for i in u) + sum(x[j] for j in v)
        elif c == 3:
            val = sum(x[i] ** 2 for i in u) + sum(x[j] ** 2 for j in v)
        elif c == 4:
            val = sum((x[10 + j] * x[15 + j] ** 4) ** 2 for j in range(5))
        else:  # case 5
            val = sum((x[10 + j] * x[15 + j] ** 8) ** 2 for j in range(5))
        return val + self._eps()

    def group4_raw(self, x: Sequence[float]) -> float:
        total = 0.0
        for j in range(15, 20):
            xv = x[j]
            if abs(xv) < _RECIP_FLOOR:
                xv = _RECIP_FLOOR if xv >= 0 else -_RECIP_FLOOR
            total += 1.0 / xv
        return total + self._eps()

    # ------------------------------------------------------------------
    # Objective interface
    # ------------------------------------------------------------------
    def group_raw_values(self, config: Mapping[str, Any]) -> dict[str, float]:
        """Raw (pre-transform) group values (one "application run")."""
        if self.eval_cost > 0.0:
            time.sleep(self.eval_cost)
        x = self.config_to_vector(config)
        return {
            "Group 1": self.group1_raw(x),
            "Group 2": self.group2_raw(x),
            "Group 3": self.group3_raw(x),
            "Group 4": self.group4_raw(x),
        }

    def group_outputs(self, config: Mapping[str, Any]) -> dict[str, float]:
        """Per-group runtime-like outputs: ``|raw group value|``.

        These are the quantities the paper's sensitivity analysis observes
        ("Variability of Group 3 output", Table II) and the per-routine
        tuning objectives.  Minimizing ``|g|`` is equivalent to minimizing
        the log-transformed contribution ``log|g|``.
        """
        return {k: abs(v) for k, v in self.group_raw_values(config).items()}

    def group_objectives(self, config: Mapping[str, Any]) -> dict[str, float]:
        """Per-group log|raw| contributions to the overall objective F."""
        return {
            k: _safe_log_abs(v) for k, v in self.group_raw_values(config).items()
        }

    def __call__(self, config: Mapping[str, Any]) -> float:
        """Full objective: sum of the four log-transformed group values."""
        return float(sum(self.group_objectives(config).values()))

    def evaluate_vector(self, x: Sequence[float]) -> float:
        """Convenience: evaluate a plain 20-vector."""
        return self(self.vector_to_config(x))

    # ------------------------------------------------------------------
    # Config <-> vector helpers
    # ------------------------------------------------------------------
    @classmethod
    def config_to_vector(cls, config: Mapping[str, Any]) -> list[float]:
        try:
            return [float(config[f"x{i}"]) for i in range(cls.N_DIM)]
        except KeyError as exc:
            raise KeyError(f"configuration missing variable {exc.args[0]!r}") from None

    @classmethod
    def vector_to_config(cls, x: Sequence[float]) -> dict[str, float]:
        x = list(x)
        if len(x) != cls.N_DIM:
            raise ValueError(f"expected {cls.N_DIM} values, got {len(x)}")
        return {f"x{i}": float(x[i]) for i in range(cls.N_DIM)}

    # ------------------------------------------------------------------
    # Application plumbing for the methodology
    # ------------------------------------------------------------------
    def search_space(self) -> SearchSpace:
        """The full 20-dimensional space: x_i real in [-50, 50]."""
        params = [
            Real(f"x{i}", self.LOW, self.HIGH, default=1.0) for i in range(self.N_DIM)
        ]
        return SearchSpace(params, name=f"synthetic-case{self.case}")

    def routines(self) -> RoutineSet:
        """The four groups as routines with their owned variables.

        Each routine's objective is its own log-transformed group value
        evaluated on the full configuration — Group 3's objective reads
        x15..x19 in every case, which is precisely the interdependence the
        sensitivity analysis must detect.

        The set carries :meth:`group_outputs` as its profiler: one
        evaluation of the synthetic "application" computes all four group
        outputs, so profiled Phase-1 analyses observe every routine from a
        single run per configuration.  Objectives are picklable
        (:class:`_GroupObjective`), so both the routine set and the
        profiler can cross process-pool boundaries.
        """
        return RoutineSet(
            [
                Routine(g, GROUP_VARIABLES[g], _GroupObjective(self, g))
                for g in ("Group 1", "Group 2", "Group 3", "Group 4")
            ],
            profiler=self.group_outputs,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SyntheticFunction(case={self.case}, "
            f"influence={CASE_INFLUENCE[self.case]!r})"
        )


def all_cases(
    *, noise_scale: float = 0.001, random_state: int | None = 0
) -> dict[int, SyntheticFunction]:
    """All five cases with independent child seeds."""
    base = np.random.default_rng(random_state)
    return {
        c: SyntheticFunction(
            c, noise_scale=noise_scale, random_state=np.random.default_rng(int(s))
        )
        for c, s in zip(sorted(CASE_INFLUENCE), base.integers(0, 2**63, 5))
    }
