"""Tuning-parameter types for constrained HPC search spaces.

Every parameter exposes a uniform interface used by the samplers, the
Bayesian-optimization surrogate, and the sensitivity analysis:

* ``sample(rng)``        -- draw one value uniformly from the domain,
* ``to_unit(value)``     -- map a value into ``[0, 1]`` (surrogate encoding),
* ``from_unit(u)``       -- inverse of :meth:`to_unit` (snaps to the grid for
  discrete parameters),
* ``neighbors(value)``   -- values adjacent to ``value`` (local search moves),
* ``perturb(value, frac, rng)`` -- the +/-``frac`` relative variation used by
  the paper's sensitivity analysis (Section IV-B).

The concrete types mirror what HPC autotuners such as GPTune expose:

``Real``
    continuous parameter on ``[low, high]`` (optionally log-scaled),
``Integer``
    integral parameter on ``[low, high]`` (optionally log-scaled),
``Ordinal``
    explicit ordered grid of numeric values (e.g. power-of-two threadblock
    sizes ``32, 64, ..., 1024``),
``Categorical``
    unordered set of choices (encoded by index; no metric structure is
    assumed by the surrogate beyond the index embedding).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Any, Sequence

import numpy as np

__all__ = [
    "Parameter",
    "Real",
    "Integer",
    "Ordinal",
    "Categorical",
    "Constant",
]


class Parameter(ABC):
    """Abstract base class for a single tunable parameter.

    Parameters
    ----------
    name:
        Identifier used in configurations (dictionaries keyed by name).
    default:
        Value assigned when the parameter is *dropped* from a search by the
        dimensionality cap (paper Section IV-D).  When ``None`` the midpoint
        of the domain is used.
    """

    def __init__(self, name: str, default: Any | None = None):
        if not name or not isinstance(name, str):
            raise ValueError(f"parameter name must be a non-empty string, got {name!r}")
        self.name = name
        self._default = default

    # ------------------------------------------------------------------
    # Core interface
    # ------------------------------------------------------------------
    @abstractmethod
    def sample(self, rng: np.random.Generator) -> Any:
        """Draw one value uniformly at random from the domain."""

    def sample_batch(self, n: int, rng: np.random.Generator) -> list[Any]:
        """Draw ``n`` independent values; vectorized in the subclasses so
        constrained rejection sampling stays out of per-value Python
        overhead."""
        return [self.sample(rng) for _ in range(n)]

    @abstractmethod
    def to_unit(self, value: Any) -> float:
        """Encode ``value`` into the unit interval ``[0, 1]``."""

    @abstractmethod
    def from_unit(self, u: float) -> Any:
        """Decode a unit-interval coordinate back into the domain."""

    def to_unit_batch(self, values: Sequence[Any]) -> np.ndarray:
        """Vectorized :meth:`to_unit` over ``values`` -> ``(n,)``.

        The numeric subclasses override this with one column operation;
        results are *bitwise* equal to the scalar path (both sides use the
        same numpy ufuncs elementwise), which is what lets the BO hot path
        encode candidate pools in bulk without perturbing proposals.
        """
        return np.array([self.to_unit(v) for v in values], dtype=float)

    def from_unit_batch(self, u: np.ndarray) -> list[Any]:
        """Vectorized :meth:`from_unit` over a unit-interval column."""
        return [self.from_unit(float(v)) for v in np.asarray(u, dtype=float)]

    @abstractmethod
    def contains(self, value: Any) -> bool:
        """Return ``True`` when ``value`` lies inside the domain."""

    @abstractmethod
    def neighbors(self, value: Any) -> list[Any]:
        """Return the domain values adjacent to ``value``."""

    @abstractmethod
    def grid(self, max_points: int = 0) -> list[Any]:
        """Return the full value grid (or ``max_points`` quantiles for
        continuous parameters)."""

    @property
    def default(self) -> Any:
        """Default value used when the parameter is pinned (dropped)."""
        if self._default is not None:
            return self._default
        return self.from_unit(0.5)

    # ------------------------------------------------------------------
    # Sensitivity-analysis support
    # ------------------------------------------------------------------
    def perturb(self, value: Any, frac: float, rng: np.random.Generator) -> Any:
        """Return ``value`` varied by a relative fraction ``frac``.

        This implements the "increase the variable value by 10% relative to
        the preceding iteration" operation from the paper's sensitivity
        analysis.  Discrete parameters snap to the nearest grid point; when
        the perturbation does not leave the current grid point, the next
        grid point in the direction of the perturbation is returned so that
        a variation always changes the configuration (otherwise the
        sensitivity score would be spuriously zero).
        """
        u = self.to_unit(value)
        step = frac if frac != 0.0 else 0.1
        nu = min(1.0, max(0.0, u * (1.0 + step) if u > 0 else step))
        candidate = self.from_unit(nu)
        if candidate == value:
            neigh = self.neighbors(value)
            if neigh:
                ups = [n for n in neigh if self.to_unit(n) > u]
                candidate = ups[0] if ups else neigh[-1]
        return candidate

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r})"

    def __eq__(self, other: object) -> bool:
        return (
            type(self) is type(other)
            and self.__dict__ == other.__dict__  # type: ignore[union-attr]
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.name))


def _check_bounds(low: float, high: float) -> None:
    if not (math.isfinite(low) and math.isfinite(high)):
        raise ValueError(f"bounds must be finite, got [{low}, {high}]")
    if low >= high:
        raise ValueError(f"low must be < high, got [{low}, {high}]")


class Real(Parameter):
    """Continuous parameter on ``[low, high]``.

    Parameters
    ----------
    log:
        When ``True`` the unit encoding is logarithmic, which makes the
        surrogate and samplers treat e.g. ``[1e-6, 1e-1]`` sensibly.  Both
        bounds must then be strictly positive.
    """

    def __init__(
        self,
        name: str,
        low: float,
        high: float,
        *,
        log: bool = False,
        default: float | None = None,
    ):
        super().__init__(name, default)
        _check_bounds(low, high)
        if log and low <= 0:
            raise ValueError("log-scaled Real requires low > 0")
        self.low = float(low)
        self.high = float(high)
        self.log = bool(log)
        if default is not None and not self.contains(default):
            raise ValueError(f"default {default} outside [{low}, {high}]")

    def sample(self, rng: np.random.Generator) -> float:
        return self.from_unit(float(rng.random()))

    def sample_batch(self, n: int, rng: np.random.Generator) -> list[float]:
        u = rng.random(n)
        if self.log:
            lo, hi = np.log(self.low), np.log(self.high)
            return np.exp(lo + u * (hi - lo)).tolist()
        return (self.low + u * (self.high - self.low)).tolist()

    def to_unit(self, value: Any) -> float:
        # np.log (not math.log): the numpy scalar and array ufuncs agree
        # bitwise, so to_unit_batch is exactly a stacked to_unit.
        v = float(value)
        if self.log:
            return float(
                (np.log(v) - np.log(self.low)) / (np.log(self.high) - np.log(self.low))
            )
        return (v - self.low) / (self.high - self.low)

    def from_unit(self, u: float) -> float:
        u = min(1.0, max(0.0, float(u)))
        if self.log:
            return float(
                np.exp(np.log(self.low) + u * (np.log(self.high) - np.log(self.low)))
            )
        return float(self.low + u * (self.high - self.low))

    def to_unit_batch(self, values: Sequence[Any]) -> np.ndarray:
        v = np.asarray(values, dtype=float)
        if self.log:
            return (np.log(v) - np.log(self.low)) / (
                np.log(self.high) - np.log(self.low)
            )
        return (v - self.low) / (self.high - self.low)

    def from_unit_batch(self, u: np.ndarray) -> list[float]:
        u = np.clip(np.asarray(u, dtype=float), 0.0, 1.0)
        if self.log:
            out = np.exp(np.log(self.low) + u * (np.log(self.high) - np.log(self.low)))
        else:
            out = self.low + u * (self.high - self.low)
        return out.tolist()

    def contains(self, value: Any) -> bool:
        try:
            v = float(value)
        except (TypeError, ValueError):
            return False
        return self.low <= v <= self.high

    def neighbors(self, value: Any) -> list[float]:
        # Continuous parameters use a 5% span step in each direction.
        span = 0.05
        u = self.to_unit(value)
        out = []
        for nu in (u - span, u + span):
            if 0.0 <= nu <= 1.0:
                out.append(self.from_unit(nu))
        return out

    def grid(self, max_points: int = 0) -> list[float]:
        n = max_points if max_points > 0 else 11
        return [self.from_unit(u) for u in np.linspace(0.0, 1.0, n)]


class Integer(Parameter):
    """Integral parameter on ``{low, ..., high}`` (inclusive)."""

    def __init__(
        self,
        name: str,
        low: int,
        high: int,
        *,
        log: bool = False,
        default: int | None = None,
    ):
        super().__init__(name, default)
        if int(low) != low or int(high) != high:
            raise ValueError("Integer bounds must be whole numbers")
        _check_bounds(low, high)
        if log and low <= 0:
            raise ValueError("log-scaled Integer requires low > 0")
        self.low = int(low)
        self.high = int(high)
        self.log = bool(log)
        if default is not None and not self.contains(default):
            raise ValueError(f"default {default} outside [{low}, {high}]")

    @property
    def cardinality(self) -> int:
        return self.high - self.low + 1

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.integers(self.low, self.high + 1))

    def sample_batch(self, n: int, rng: np.random.Generator) -> list[int]:
        if self.log:
            lo, hi = np.log(self.low), np.log(self.high)
            raw = np.exp(lo + rng.random(n) * (hi - lo))
            return np.clip(np.rint(raw), self.low, self.high).astype(int).tolist()
        return rng.integers(self.low, self.high + 1, size=n).tolist()

    def to_unit(self, value: Any) -> float:
        v = float(value)
        if self.log:
            return float(
                (np.log(v) - np.log(self.low)) / (np.log(self.high) - np.log(self.low))
            )
        return (v - self.low) / (self.high - self.low)

    def from_unit(self, u: float) -> int:
        u = min(1.0, max(0.0, float(u)))
        if self.log:
            raw = np.exp(
                np.log(self.low) + u * (np.log(self.high) - np.log(self.low))
            )
        else:
            raw = self.low + u * (self.high - self.low)
        return int(min(self.high, max(self.low, round(raw))))

    def to_unit_batch(self, values: Sequence[Any]) -> np.ndarray:
        v = np.asarray(values, dtype=float)
        if self.log:
            return (np.log(v) - np.log(self.low)) / (
                np.log(self.high) - np.log(self.low)
            )
        return (v - self.low) / (self.high - self.low)

    def from_unit_batch(self, u: np.ndarray) -> list[int]:
        u = np.clip(np.asarray(u, dtype=float), 0.0, 1.0)
        if self.log:
            raw = np.exp(np.log(self.low) + u * (np.log(self.high) - np.log(self.low)))
        else:
            raw = self.low + u * (self.high - self.low)
        # np.rint rounds half-to-even, matching the scalar round() path.
        return [
            int(v) for v in np.clip(np.rint(raw), self.low, self.high).astype(int)
        ]

    def contains(self, value: Any) -> bool:
        try:
            v = float(value)
        except (TypeError, ValueError):
            return False
        return v == int(v) and self.low <= v <= self.high

    def neighbors(self, value: Any) -> list[int]:
        v = int(value)
        out = []
        if v - 1 >= self.low:
            out.append(v - 1)
        if v + 1 <= self.high:
            out.append(v + 1)
        return out

    def grid(self, max_points: int = 0) -> list[int]:
        if max_points and self.cardinality > max_points:
            vals = sorted({self.from_unit(u) for u in np.linspace(0.0, 1.0, max_points)})
            return vals
        return list(range(self.low, self.high + 1))


class Ordinal(Parameter):
    """Explicit ordered grid of numeric values.

    The canonical HPC example is a power-of-two threadblock size:
    ``Ordinal("tb", [32, 64, 128, 256, 512, 1024])``.
    """

    def __init__(self, name: str, values: Sequence[Any], *, default: Any | None = None):
        super().__init__(name, default)
        vals = list(values)
        if len(vals) < 2:
            raise ValueError("Ordinal needs at least 2 values")
        if len(set(vals)) != len(vals):
            raise ValueError("Ordinal values must be unique")
        if sorted(vals) != vals:
            raise ValueError("Ordinal values must be sorted ascending")
        self.values = vals
        self._index = {v: i for i, v in enumerate(vals)}
        if default is not None and default not in self._index:
            raise ValueError(f"default {default!r} not among ordinal values")

    @property
    def cardinality(self) -> int:
        return len(self.values)

    def sample(self, rng: np.random.Generator) -> Any:
        return self.values[int(rng.integers(0, len(self.values)))]

    def sample_batch(self, n: int, rng: np.random.Generator) -> list[Any]:
        idx = rng.integers(0, len(self.values), size=n)
        return [self.values[i] for i in idx]

    def to_unit(self, value: Any) -> float:
        return self._index[value] / (len(self.values) - 1)

    def from_unit(self, u: float) -> Any:
        u = min(1.0, max(0.0, float(u)))
        return self.values[int(round(u * (len(self.values) - 1)))]

    def to_unit_batch(self, values: Sequence[Any]) -> np.ndarray:
        idx = np.array([self._index[v] for v in values], dtype=float)
        return idx / (len(self.values) - 1)

    def from_unit_batch(self, u: np.ndarray) -> list[Any]:
        u = np.clip(np.asarray(u, dtype=float), 0.0, 1.0)
        idx = np.rint(u * (len(self.values) - 1)).astype(int)
        return [self.values[i] for i in idx]

    def contains(self, value: Any) -> bool:
        return value in self._index

    def neighbors(self, value: Any) -> list[Any]:
        i = self._index[value]
        out = []
        if i > 0:
            out.append(self.values[i - 1])
        if i < len(self.values) - 1:
            out.append(self.values[i + 1])
        return out

    def grid(self, max_points: int = 0) -> list[Any]:
        if max_points and len(self.values) > max_points:
            idx = np.unique(np.linspace(0, len(self.values) - 1, max_points).round().astype(int))
            return [self.values[i] for i in idx]
        return list(self.values)


class Categorical(Parameter):
    """Unordered set of choices, encoded by index.

    No metric structure among choices is implied; the unit encoding exists
    only so surrogates have *some* embedding, which matches how GPTune-style
    frameworks one-hot or index-encode categorical inputs.
    """

    def __init__(self, name: str, choices: Sequence[Any], *, default: Any | None = None):
        super().__init__(name, default)
        ch = list(choices)
        if len(ch) < 2:
            raise ValueError("Categorical needs at least 2 choices")
        if len(set(map(repr, ch))) != len(ch):
            raise ValueError("Categorical choices must be unique")
        self.choices = ch
        self._index = {repr(c): i for i, c in enumerate(ch)}
        if default is not None and repr(default) not in self._index:
            raise ValueError(f"default {default!r} not among choices")

    @property
    def cardinality(self) -> int:
        return len(self.choices)

    def sample(self, rng: np.random.Generator) -> Any:
        return self.choices[int(rng.integers(0, len(self.choices)))]

    def sample_batch(self, n: int, rng: np.random.Generator) -> list[Any]:
        idx = rng.integers(0, len(self.choices), size=n)
        return [self.choices[i] for i in idx]

    def to_unit(self, value: Any) -> float:
        return self._index[repr(value)] / (len(self.choices) - 1)

    def from_unit(self, u: float) -> Any:
        u = min(1.0, max(0.0, float(u)))
        return self.choices[int(round(u * (len(self.choices) - 1)))]

    def to_unit_batch(self, values: Sequence[Any]) -> np.ndarray:
        idx = np.array([self._index[repr(v)] for v in values], dtype=float)
        return idx / (len(self.choices) - 1)

    def from_unit_batch(self, u: np.ndarray) -> list[Any]:
        u = np.clip(np.asarray(u, dtype=float), 0.0, 1.0)
        idx = np.rint(u * (len(self.choices) - 1)).astype(int)
        return [self.choices[i] for i in idx]

    def contains(self, value: Any) -> bool:
        return repr(value) in self._index

    def neighbors(self, value: Any) -> list[Any]:
        # Every other choice is a "neighbor": categories have no order.
        return [c for c in self.choices if repr(c) != repr(value)]

    def grid(self, max_points: int = 0) -> list[Any]:
        return list(self.choices)

    def perturb(self, value: Any, frac: float, rng: np.random.Generator) -> Any:
        # A relative variation is meaningless for categories; pick a random
        # different choice instead, which is the standard OAT fallback.
        others = self.neighbors(value)
        return others[int(rng.integers(0, len(others)))]


class Constant(Parameter):
    """A parameter fixed to a single value.

    HPC search spaces routinely contain parameters that a given problem
    instance pins (e.g. ``nspb = 1`` when the physical system has a single
    spin channel, paper Section VIII).  Keeping them in the space as
    constants preserves a uniform 20-parameter configuration layout while
    contributing no search dimensionality: sensitivity analysis sees zero
    variability, and samplers always emit the fixed value.
    """

    def __init__(self, name: str, value: Any):
        super().__init__(name, value)
        self.value = value

    @property
    def cardinality(self) -> int:
        return 1

    def sample(self, rng: np.random.Generator) -> Any:
        return self.value

    def sample_batch(self, n: int, rng: np.random.Generator) -> list[Any]:
        return [self.value] * n

    def to_unit(self, value: Any) -> float:
        if value != self.value:
            raise ValueError(f"constant {self.name!r} only takes {self.value!r}")
        return 0.0

    def from_unit(self, u: float) -> Any:
        return self.value

    def to_unit_batch(self, values: Sequence[Any]) -> np.ndarray:
        for v in values:
            if v != self.value:
                raise ValueError(f"constant {self.name!r} only takes {self.value!r}")
        return np.zeros(len(values))

    def from_unit_batch(self, u: np.ndarray) -> list[Any]:
        return [self.value] * len(np.asarray(u))

    def contains(self, value: Any) -> bool:
        return value == self.value

    def neighbors(self, value: Any) -> list[Any]:
        return []

    def grid(self, max_points: int = 0) -> list[Any]:
        return [self.value]

    def perturb(self, value: Any, frac: float, rng: np.random.Generator) -> Any:
        return self.value


def parameters_from_dict(spec: dict[str, Any]) -> list[Parameter]:
    """Build a parameter list from a compact dictionary specification.

    Accepted value shapes per name:

    * ``(low, high)`` tuple of ints      -> :class:`Integer`
    * ``(low, high)`` tuple of floats    -> :class:`Real`
    * ``list``                           -> :class:`Ordinal` when sorted
      numeric, else :class:`Categorical`
    * a :class:`Parameter` instance      -> used as-is (name must match)
    """
    out: list[Parameter] = []
    for name, val in spec.items():
        if isinstance(val, Parameter):
            if val.name != name:
                raise ValueError(f"parameter name mismatch: {val.name!r} under key {name!r}")
            out.append(val)
        elif isinstance(val, tuple) and len(val) == 2:
            lo, hi = val
            if isinstance(lo, int) and isinstance(hi, int):
                out.append(Integer(name, lo, hi))
            else:
                out.append(Real(name, float(lo), float(hi)))
        elif isinstance(val, list):
            numeric = all(isinstance(v, (int, float)) and not isinstance(v, bool) for v in val)
            if numeric and sorted(val) == val and len(set(val)) == len(val):
                out.append(Ordinal(name, val))
            else:
                out.append(Categorical(name, val))
        else:
            raise TypeError(f"cannot interpret spec for {name!r}: {val!r}")
    return out
