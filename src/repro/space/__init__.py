"""Search-space substrate: parameter types, constraints, and spaces.

This package provides the constrained mixed-type search-space machinery
that every engine in :mod:`repro` (Bayesian optimization, random/grid
search, sensitivity analysis) operates on.
"""

from .conditional import Condition, ConditionalSpace
from .constraints import (
    Constraint,
    ConstraintViolation,
    ExpressionConstraint,
    check_all,
)
from .parameters import (
    Categorical,
    Constant,
    Integer,
    Ordinal,
    Parameter,
    Real,
    parameters_from_dict,
)
from .serialize import (
    UnserializableConstraintError,
    load_space,
    save_space,
    space_from_dict,
    space_to_dict,
)
from .space import InfeasibleSpaceError, PinnedSubspace, SearchSpace

__all__ = [
    "Parameter",
    "Constant",
    "Real",
    "Integer",
    "Ordinal",
    "Categorical",
    "parameters_from_dict",
    "Constraint",
    "ExpressionConstraint",
    "ConstraintViolation",
    "check_all",
    "SearchSpace",
    "PinnedSubspace",
    "InfeasibleSpaceError",
    "Condition",
    "ConditionalSpace",
    "space_to_dict",
    "space_from_dict",
    "save_space",
    "load_space",
    "UnserializableConstraintError",
]
