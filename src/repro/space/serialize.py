"""JSON (de)serialization of search spaces.

Crash recovery is only complete when the *search definition* survives
alongside the evaluation database: these helpers turn a
:class:`~repro.space.SearchSpace` into a plain JSON-compatible dict and
back.  All parameter types round-trip; constraints round-trip when they
are :class:`~repro.space.ExpressionConstraint` (declarative, re-compiled on
load) — opaque callable constraints cannot be serialized and raise unless
``skip_opaque_constraints=True``.
"""

from __future__ import annotations

import json
from typing import Any

from .conditional import Condition, ConditionalSpace
from .constraints import Constraint, ExpressionConstraint
from .parameters import Categorical, Constant, Integer, Ordinal, Parameter, Real
from .space import SearchSpace

__all__ = [
    "space_to_dict",
    "space_from_dict",
    "save_space",
    "load_space",
    "UnserializableConstraintError",
]


class UnserializableConstraintError(TypeError):
    """Raised for constraints that are opaque callables, not expressions."""


def _parameter_to_dict(p: Parameter) -> dict[str, Any]:
    if isinstance(p, Real):
        return {
            "type": "real", "name": p.name, "low": p.low, "high": p.high,
            "log": p.log, "default": p._default,
        }
    if isinstance(p, Integer):
        return {
            "type": "integer", "name": p.name, "low": p.low, "high": p.high,
            "log": p.log, "default": p._default,
        }
    if isinstance(p, Ordinal):
        return {"type": "ordinal", "name": p.name, "values": list(p.values),
                "default": p._default}
    if isinstance(p, Categorical):
        return {"type": "categorical", "name": p.name, "choices": list(p.choices),
                "default": p._default}
    if isinstance(p, Constant):
        return {"type": "constant", "name": p.name, "value": p.value}
    raise TypeError(f"cannot serialize parameter type {type(p).__name__}")


def _parameter_from_dict(d: dict[str, Any]) -> Parameter:
    kind = d.get("type")
    if kind == "real":
        return Real(d["name"], d["low"], d["high"], log=d.get("log", False),
                    default=d.get("default"))
    if kind == "integer":
        return Integer(d["name"], d["low"], d["high"], log=d.get("log", False),
                       default=d.get("default"))
    if kind == "ordinal":
        return Ordinal(d["name"], d["values"], default=d.get("default"))
    if kind == "categorical":
        return Categorical(d["name"], d["choices"], default=d.get("default"))
    if kind == "constant":
        return Constant(d["name"], d["value"])
    raise ValueError(f"unknown parameter type {kind!r}")


def space_to_dict(
    space: SearchSpace, *, skip_opaque_constraints: bool = False
) -> dict[str, Any]:
    """Serialize a space (parameters + expression constraints) to a dict."""
    constraints = []
    for c in space.constraints:
        if isinstance(c, ExpressionConstraint):
            constraints.append({"expression": c.expression, "name": c.name})
        elif not skip_opaque_constraints:
            raise UnserializableConstraintError(
                f"constraint {c.name!r} is an opaque callable; use "
                f"ExpressionConstraint or skip_opaque_constraints=True"
            )
    out = {
        "name": space.name,
        "parameters": [_parameter_to_dict(p) for p in space.parameters],
        "constraints": constraints,
    }
    if isinstance(space, ConditionalSpace) and space.conditions:
        out["conditions"] = {
            child: cond.to_dict() for child, cond in space.conditions.items()
        }
    return out


def space_from_dict(d: dict[str, Any]) -> SearchSpace:
    """Inverse of :func:`space_to_dict`."""
    params = [_parameter_from_dict(pd) for pd in d["parameters"]]
    constraints: list[Constraint] = [
        ExpressionConstraint(cd["expression"], cd.get("name", ""))
        for cd in d.get("constraints", [])
    ]
    if d.get("conditions"):
        conditions = {
            child: Condition.from_dict(cd)
            for child, cd in d["conditions"].items()
        }
        return ConditionalSpace(
            params, constraints, conditions, name=d.get("name", "space")
        )
    return SearchSpace(params, constraints, name=d.get("name", "space"))


def save_space(space: SearchSpace, path: str, **kwargs: Any) -> None:
    """Write a space to a JSON file."""
    with open(path, "w") as f:
        json.dump(space_to_dict(space, **kwargs), f, indent=2)


def load_space(path: str) -> SearchSpace:
    """Read a space from a JSON file."""
    with open(path) as f:
        return space_from_dict(json.load(f))
