"""The :class:`SearchSpace` container: parameters + constraints.

A search space owns an ordered list of parameters and a list of constraints,
and provides the primitives every engine in this package builds on:

* constrained uniform sampling (rejection with a retry budget),
* encode/decode between configuration dicts and points in ``[0, 1]^d``
  (the representation the GP surrogate operates on),
* sub-space projection (``subspace``) used by the search planner when it
  splits or merges routine searches and pins dropped parameters,
* neighborhood enumeration for local acquisition refinement,
* cardinality accounting used to report the paper's Table IV space sizes.
"""

from __future__ import annotations

import math
from typing import Any, Mapping, Sequence

import numpy as np

from .constraints import Constraint, check_all
from .parameters import Parameter, Real

__all__ = ["SearchSpace", "InfeasibleSpaceError"]


class InfeasibleSpaceError(RuntimeError):
    """Raised when rejection sampling cannot find a feasible configuration
    within the retry budget — usually a sign of over-aggressive constraints,
    which the paper warns 'could confine the search within local minima and
    create additional overhead'."""


class SearchSpace:
    """An ordered, possibly constrained collection of tuning parameters.

    Parameters
    ----------
    parameters:
        The tunable parameters, in a stable order (the order defines the
        axes of the unit-cube encoding).
    constraints:
        Validity predicates over configurations.  Only constraints whose
        referenced names all exist in this space are enforced.
    name:
        Label used in reports (e.g. ``"Group 2+3"``).
    """

    def __init__(
        self,
        parameters: Sequence[Parameter],
        constraints: Sequence[Constraint] = (),
        name: str = "space",
    ):
        params = list(parameters)
        if not params:
            raise ValueError("a search space needs at least one parameter")
        names = [p.name for p in params]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate parameter names: {dupes}")
        self.parameters: list[Parameter] = params
        self.constraints: list[Constraint] = list(constraints)
        self.name = name
        self._by_name = {p.name: p for p in params}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        """Number of tunable parameters (the ``d`` of the paper's d-dim
        searches)."""
        return len(self.parameters)

    @property
    def names(self) -> list[str]:
        return [p.name for p in self.parameters]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> Parameter:
        return self._by_name[name]

    def __len__(self) -> int:
        return len(self.parameters)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SearchSpace({self.name!r}, d={self.dimension})"

    def cardinality(self) -> float:
        """Total number of raw grid configurations (``inf`` if any parameter
        is continuous).  Constraints are *not* applied — this matches how the
        paper's Table IV reports `41,943,040 x N_nstb x N_nkpb x N_nspb`
        before validity filtering."""
        total = 1.0
        for p in self.parameters:
            if isinstance(p, Real):
                return math.inf
            total *= p.cardinality  # type: ignore[attr-defined]
        return total

    # ------------------------------------------------------------------
    # Validity
    # ------------------------------------------------------------------
    def is_valid(self, config: Mapping[str, Any]) -> bool:
        """True when ``config`` assigns an in-domain value to every parameter
        and satisfies every applicable constraint."""
        for p in self.parameters:
            if p.name not in config or not p.contains(config[p.name]):
                return False
        return check_all(self.constraints, config)

    def validate(self, config: Mapping[str, Any]) -> None:
        """Raise ``ValueError`` with a precise message when invalid."""
        for p in self.parameters:
            if p.name not in config:
                raise ValueError(f"missing parameter {p.name!r}")
            if not p.contains(config[p.name]):
                raise ValueError(
                    f"value {config[p.name]!r} outside domain of parameter {p.name!r}"
                )
        check_all(self.constraints, config, strict=True)

    def _constraints_ok(self, config: Mapping[str, Any]) -> bool:
        """Constraint check hook; subclasses fold in pinned values."""
        return check_all(self.constraints, config)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def _raw_batch(self, n: int, rng: np.random.Generator) -> list[dict[str, Any]]:
        """``n`` unconstrained configurations via one vectorized draw per
        parameter (constraints not yet applied)."""
        columns = [p.sample_batch(n, rng) for p in self.parameters]
        names = self.names
        return [dict(zip(names, row)) for row in zip(*columns)]

    def _repair_batch(
        self, configs: list[dict[str, Any]], rng: np.random.Generator, *, rounds: int = 40
    ) -> list[dict[str, Any]]:
        """Per-constraint repair sampling.

        For each violated constraint, only that constraint's parameters
        are redrawn.  When constraints touch disjoint parameter groups
        (the typical HPC shape — e.g. one occupancy rule per kernel), the
        feasible set is a product of per-group feasible sets and this
        procedure samples it *exactly* uniformly, while whole-config
        rejection would need the product of all acceptance rates.
        Overlapping constraints are handled by iterating to a fixpoint;
        configurations still invalid after ``rounds`` are dropped.
        """
        pending = list(configs)
        for _ in range(rounds):
            broken = False
            for c in self.constraints:
                if not c.applies_to(self.names) and not isinstance(self, PinnedSubspace):
                    continue
                bad = [
                    cfg for cfg in pending
                    if not c.is_satisfied(self._completed_view(cfg))
                ]
                if not bad:
                    continue
                broken = True
                names = [n for n in c.names if n in self._by_name]
                for name in names:
                    vals = self._by_name[name].sample_batch(len(bad), rng)
                    for cfg, v in zip(bad, vals):
                        cfg[name] = v
            if not broken:
                return pending
        return [cfg for cfg in pending if self._constraints_ok(cfg)]

    def _completed_view(self, config: Mapping[str, Any]) -> Mapping[str, Any]:
        """Hook: subclasses merge pinned values before constraint checks."""
        return config

    def sample(
        self,
        rng: np.random.Generator,
        *,
        max_rejects: int = 10_000,
    ) -> dict[str, Any]:
        """Draw one feasible configuration by rejection sampling."""
        try:
            return self.sample_batch(1, rng, max_rejects=max_rejects)[0]
        except InfeasibleSpaceError:
            raise InfeasibleSpaceError(
                f"no feasible configuration found in {max_rejects} draws for "
                f"{self.name!r}"
            ) from None

    def sample_batch(
        self,
        n: int,
        rng: np.random.Generator,
        *,
        unique: bool = False,
        max_rejects: int = 10_000,
    ) -> list[dict[str, Any]]:
        """Draw ``n`` feasible configurations (vectorized rejection
        sampling: whole chunks are drawn per parameter, then filtered
        through the constraints).

        With ``unique=True`` duplicates (by parameter values) are
        filtered, falling back to returning fewer than ``n`` when the
        feasible set is smaller than requested.
        """
        if n < 1:
            raise ValueError("n must be >= 1")
        out: list[dict[str, Any]] = []
        seen: set[tuple] = set()
        attempts = 0
        chunk = max(64, 2 * n)
        while len(out) < n and attempts < max_rejects:
            take = min(chunk, max_rejects - attempts)
            attempts += take
            raw = self._raw_batch(take, rng)
            valid = [cfg for cfg in raw if self._constraints_ok(cfg)]
            if len(valid) < min(take, n - len(out)):
                invalid = [cfg for cfg in raw if not self._constraints_ok(cfg)]
                valid.extend(self._repair_batch(invalid, rng))
            for cfg in valid:
                if unique:
                    key = tuple(cfg[k] for k in self.names)
                    if key in seen:
                        continue
                    seen.add(key)
                out.append(cfg)
                if len(out) >= n:
                    break
            chunk = min(4 * chunk, 8192)
        if not out:
            raise InfeasibleSpaceError(
                f"could not sample any configuration for {self.name!r}"
            )
        return out

    def latin_hypercube(
        self,
        n: int,
        rng: np.random.Generator,
        *,
        max_rejects: int = 200,
    ) -> list[dict[str, Any]]:
        """Space-filling initial design (LHS) with constraint repair.

        BO initialization benefits from stratified coverage; infeasible LHS
        points are replaced by rejection-sampled feasible ones so the design
        always has exactly ``n`` points.
        """
        d = self.dimension
        # Stratified unit-cube samples: one point per row-stratum per axis.
        u = (rng.permuted(np.tile(np.arange(n), (d, 1)), axis=1).T + rng.random((n, d))) / n
        out: list[dict[str, Any]] = []
        for row in u:
            cfg = self.decode(row)
            if self._constraints_ok(cfg):
                out.append(cfg)
            else:
                try:
                    out.append(self.sample(rng, max_rejects=max_rejects * 50))
                except InfeasibleSpaceError:
                    continue
        if not out:
            raise InfeasibleSpaceError(f"LHS produced no feasible points for {self.name!r}")
        return out

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode(self, config: Mapping[str, Any]) -> np.ndarray:
        """Map a configuration to a point in ``[0, 1]^d`` (parameter order)."""
        return np.array([p.to_unit(config[p.name]) for p in self.parameters], dtype=float)

    def decode(self, x: np.ndarray | Sequence[float]) -> dict[str, Any]:
        """Inverse of :meth:`encode`; snaps discrete axes to their grid."""
        arr = np.asarray(x, dtype=float)
        if arr.shape != (self.dimension,):
            raise ValueError(f"expected shape ({self.dimension},), got {arr.shape}")
        return {p.name: p.from_unit(float(u)) for p, u in zip(self.parameters, arr)}

    def encode_batch(self, configs: Sequence[Mapping[str, Any]]) -> np.ndarray:
        """Vectorized :meth:`encode` over many configurations -> ``(n, d)``.

        One column operation per parameter (``Parameter.to_unit_batch``)
        instead of a per-configuration Python loop; the result is bitwise
        equal to ``np.stack([self.encode(c) for c in configs])`` because
        the scalar and batch codecs share the same numpy ufuncs.  This is
        the encoding path the BO candidate pool rides every iteration.
        """
        configs = list(configs)
        if not configs:
            return np.empty((0, self.dimension))
        out = np.empty((len(configs), self.dimension))
        for j, p in enumerate(self.parameters):
            out[:, j] = p.to_unit_batch([c[p.name] for c in configs])
        return out

    def decode_batch(self, X: np.ndarray) -> list[dict[str, Any]]:
        """Vectorized :meth:`decode` over ``(n, d)`` encoded rows."""
        arr = np.atleast_2d(np.asarray(X, dtype=float))
        if arr.shape[1] != self.dimension:
            raise ValueError(
                f"expected shape (n, {self.dimension}), got {arr.shape}"
            )
        columns = [
            p.from_unit_batch(arr[:, j]) for j, p in enumerate(self.parameters)
        ]
        names = self.names
        return [dict(zip(names, row)) for row in zip(*columns)]

    # ------------------------------------------------------------------
    # Structure operations used by the planner
    # ------------------------------------------------------------------
    def subspace(
        self,
        names: Sequence[str],
        *,
        pinned: Mapping[str, Any] | None = None,
        name: str = "",
    ) -> "PinnedSubspace":
        """Project onto ``names``; everything else is pinned.

        Dropped parameters take the value from ``pinned`` when given, else
        their declared default.  Constraints that straddle kept and pinned
        parameters remain enforceable because the pinned values are folded
        into every configuration the subspace produces.
        """
        missing = [n for n in names if n not in self._by_name]
        if missing:
            raise KeyError(f"unknown parameters: {missing}")
        kept = [self._by_name[n] for n in names]
        pin: dict[str, Any] = {}
        for p in self.parameters:
            if p.name not in names:
                pin[p.name] = (pinned or {}).get(p.name, p.default)
        return PinnedSubspace(
            kept,
            self.constraints,
            pin,
            name=name or f"{self.name}[{len(kept)}d]",
        )

    def defaults(self) -> dict[str, Any]:
        """Configuration with every parameter at its default value."""
        return {p.name: p.default for p in self.parameters}

    def neighbors(self, config: Mapping[str, Any]) -> list[dict[str, Any]]:
        """All feasible one-parameter moves away from ``config``."""
        out = []
        for p in self.parameters:
            for v in p.neighbors(config[p.name]):
                cand = dict(config)
                cand[p.name] = v
                if self.is_valid(cand):
                    out.append(cand)
        return out


class PinnedSubspace(SearchSpace):
    """A :class:`SearchSpace` over a subset of parameters with the rest
    pinned to fixed values.

    All sampling/encoding operates on the kept parameters only; the pinned
    assignments are merged into every configuration via :meth:`complete` so
    objective functions expecting the full parameter set keep working.  This
    is the mechanism behind the paper's "assigning default tuning values to
    the discarded variables".
    """

    def __init__(
        self,
        parameters: Sequence[Parameter],
        constraints: Sequence[Constraint],
        pinned: Mapping[str, Any],
        name: str = "subspace",
    ):
        super().__init__(parameters, constraints, name)
        self.pinned: dict[str, Any] = dict(pinned)
        overlap = set(self.pinned) & set(self.names)
        if overlap:
            raise ValueError(f"parameters both kept and pinned: {sorted(overlap)}")

    def _constraints_ok(self, config: Mapping[str, Any]) -> bool:
        return check_all(self.constraints, self.complete(config))

    def _completed_view(self, config: Mapping[str, Any]) -> Mapping[str, Any]:
        return self.complete(config)

    def complete(self, config: Mapping[str, Any]) -> dict[str, Any]:
        """Merge kept values with the pinned assignments -> full config."""
        full = dict(self.pinned)
        full.update(config)
        return full

    def is_valid(self, config: Mapping[str, Any]) -> bool:
        for p in self.parameters:
            if p.name not in config or not p.contains(config[p.name]):
                return False
        return check_all(self.constraints, self.complete(config))

    def validate(self, config: Mapping[str, Any]) -> None:
        for p in self.parameters:
            if p.name not in config:
                raise ValueError(f"missing parameter {p.name!r}")
            if not p.contains(config[p.name]):
                raise ValueError(
                    f"value {config[p.name]!r} outside domain of parameter {p.name!r}"
                )
        check_all(self.constraints, self.complete(config), strict=True)
