"""Conditional search spaces: parameters active only under a parent value.

HPC tuning spaces are full of structural switches — a tiling factor that
only matters when the blocked kernel variant is selected, an MPI overlap
depth that only exists when communication/computation overlap is on.
None of the flat :class:`~repro.space.SearchSpace` machinery can express
this; a :class:`ConditionalSpace` can: each *child* parameter carries a
:class:`Condition` naming its *parent* parameter and the parent values
under which the child is active.

The key design decision is **masking**: an inactive child is not absent
from configurations — it is pinned to its declared default (the
``inactive_value``).  This keeps every configuration a full dict over all
parameters, so objectives, the unit-cube encoding, the evaluation
database, and the memoization cache all keep working unchanged.  Masking
is enforced everywhere configurations are produced:

* ``_raw_batch`` / ``_repair_batch`` — sampled and repair-redrawn
  configurations are masked, so repair sampling can never activate a
  dead branch;
* ``decode`` / ``decode_batch`` — any sampler that proposes through the
  unit-cube codec (BO, QMC, CMA-ES-lite, LHS initial designs) is
  conditionally-safe by construction;
* ``is_valid`` / ``validate`` — a configuration whose inactive child
  deviates from its inactive value is *invalid*, which is what the
  sampler conformance gauntlet asserts ("never proposes an inactive
  parameter").

Conditions may chain (a parent may itself be conditional on a
grandparent); activity is resolved in parameter order, so parents must be
declared before their children.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from .constraints import Constraint, check_all
from .parameters import Parameter
from .space import SearchSpace

__all__ = ["Condition", "ConditionalSpace"]


class Condition:
    """Activation rule for one child parameter.

    The child is active when its parent's value is one of ``values`` *and*
    the parent itself is active (conditions chain).

    Parameters
    ----------
    parent:
        Name of the controlling parameter.
    values:
        Parent values under which the child is active.  Membership is by
        equality (``==``), matching how constraints compare values.
    """

    def __init__(self, parent: str, values: Sequence[Any] | Any):
        if not parent or not isinstance(parent, str):
            raise ValueError(f"condition parent must be a non-empty string, got {parent!r}")
        if isinstance(values, (str, bytes)) or not isinstance(values, Sequence):
            values = (values,)
        vals = tuple(values)
        if not vals:
            raise ValueError(f"condition on {parent!r} needs at least one value")
        self.parent = parent
        self.values = vals

    def holds(self, parent_value: Any) -> bool:
        """True when ``parent_value`` activates the child."""
        return any(parent_value == v for v in self.values)

    def to_dict(self) -> dict[str, Any]:
        return {"parent": self.parent, "values": list(self.values)}

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "Condition":
        return cls(d["parent"], d["values"])

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Condition)
            and self.parent == other.parent
            and self.values == other.values
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Condition({self.parent!r}, {list(self.values)!r})"


class ConditionalSpace(SearchSpace):
    """A :class:`SearchSpace` where some parameters are conditionally active.

    Parameters
    ----------
    parameters:
        As for :class:`SearchSpace`.  A condition's parent must be declared
        *before* its child (activity resolves in one forward pass).
    constraints:
        As for :class:`SearchSpace`; constraints see masked configurations.
    conditions:
        Mapping ``child name -> Condition``.
    name:
        Label used in reports.
    """

    def __init__(
        self,
        parameters: Sequence[Parameter],
        constraints: Sequence[Constraint] = (),
        conditions: Mapping[str, Condition] | None = None,
        name: str = "space",
    ):
        super().__init__(parameters, constraints, name)
        self.conditions: dict[str, Condition] = dict(conditions or {})
        order = {p.name: i for i, p in enumerate(self.parameters)}
        for child, cond in self.conditions.items():
            if child not in order:
                raise KeyError(f"condition on unknown parameter {child!r}")
            if cond.parent not in order:
                raise KeyError(
                    f"condition parent {cond.parent!r} of {child!r} is not in the space"
                )
            if cond.parent == child:
                raise ValueError(f"parameter {child!r} cannot condition on itself")
            if order[cond.parent] >= order[child]:
                raise ValueError(
                    f"condition parent {cond.parent!r} must be declared before "
                    f"its child {child!r}"
                )

    # ------------------------------------------------------------------
    # Activity and masking
    # ------------------------------------------------------------------
    def inactive_value(self, name: str) -> Any:
        """The value an inactive parameter is pinned to (its default)."""
        return self._by_name[name].default

    def is_active(self, name: str, config: Mapping[str, Any]) -> bool:
        """True when ``name`` is active under ``config`` (chains resolved)."""
        cond = self.conditions.get(name)
        if cond is None:
            return True
        if not self.is_active(cond.parent, config):
            return False
        return cond.holds(config[cond.parent])

    def active_names(self, config: Mapping[str, Any]) -> list[str]:
        """Names of the parameters active under ``config``, in order."""
        return [p.name for p in self.parameters if self.is_active(p.name, config)]

    def mask(self, config: Mapping[str, Any]) -> dict[str, Any]:
        """Pin every inactive child to its inactive value.

        One forward pass in parameter order: parents are declared before
        children, so each child's activity is decided on already-masked
        ancestor values (a child of a deactivated switch is deactivated
        too, even if the raw draw happened to activate it).
        """
        out = dict(config)
        for name in self._masked_off(config):
            out[name] = self.inactive_value(name)
        return out

    def _masked_off(self, config: Mapping[str, Any]) -> set[str]:
        """Names pinned inactive in ``config`` (helper for chained masks)."""
        off: set[str] = set()
        for p in self.parameters:
            cond = self.conditions.get(p.name)
            if cond is None:
                continue
            if cond.parent in off or not cond.holds(config[cond.parent]):
                off.add(p.name)
        return off

    # ------------------------------------------------------------------
    # Validity: inactive children must sit at their inactive value
    # ------------------------------------------------------------------
    def is_valid(self, config: Mapping[str, Any]) -> bool:
        if not super().is_valid(config):
            return False
        for name in self._masked_off(config):
            if config[name] != self.inactive_value(name):
                return False
        return True

    def validate(self, config: Mapping[str, Any]) -> None:
        super().validate(config)
        for name in self._masked_off(config):
            if config[name] != self.inactive_value(name):
                cond = self.conditions[name]
                raise ValueError(
                    f"parameter {name!r} is inactive (condition on "
                    f"{cond.parent!r} not met) but holds {config[name]!r} "
                    f"instead of its inactive value "
                    f"{self.inactive_value(name)!r}"
                )

    # ------------------------------------------------------------------
    # Sampling and decoding: mask at every production site
    # ------------------------------------------------------------------
    def _raw_batch(self, n: int, rng: np.random.Generator) -> list[dict[str, Any]]:
        return [self.mask(cfg) for cfg in super()._raw_batch(n, rng)]

    def _repair_batch(
        self, configs: list[dict[str, Any]], rng: np.random.Generator, *, rounds: int = 40
    ) -> list[dict[str, Any]]:
        # Re-mask after constraint repair: a repair redraw of a parent can
        # flip a child's activity, and a redraw of an inactive child must
        # never stick (repair can never activate a dead branch).
        repaired = super()._repair_batch(configs, rng, rounds=rounds)
        masked = [self.mask(cfg) for cfg in repaired]
        return [cfg for cfg in masked if check_all(self.constraints, cfg)]

    def decode(self, x: np.ndarray | Sequence[float]) -> dict[str, Any]:
        return self.mask(super().decode(x))

    def decode_batch(self, X: np.ndarray) -> list[dict[str, Any]]:
        return [self.mask(cfg) for cfg in super().decode_batch(X)]

    def neighbors(self, config: Mapping[str, Any]) -> list[dict[str, Any]]:
        """Feasible one-parameter moves; parent moves re-mask their subtree."""
        out: list[dict[str, Any]] = []
        seen: set[tuple] = set()
        for p in self.parameters:
            if not self.is_active(p.name, config):
                continue  # moving an inactive child is meaningless
            for v in p.neighbors(config[p.name]):
                cand = self.mask({**config, p.name: v})
                key = tuple(repr(cand[n]) for n in self.names)
                if key not in seen and self.is_valid(cand):
                    seen.add(key)
                    out.append(cand)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ConditionalSpace({self.name!r}, d={self.dimension}, "
            f"conditional={len(self.conditions)})"
        )
