"""Constraint handling for HPC search spaces.

Real HPC tuning spaces are heavily constrained — the paper's RT-TDDFT space
requires ``nstb * nkpb * nspb <= total_ranks`` and, per GPU kernel,
``tb * tb_sm <= max_active_threads_per_SM``.  The paper notes that how a BO
framework handles such constraints materially changes search cost; GPTune
filters candidates up front, which is the behaviour implemented here.

Two constraint flavors are supported:

:class:`Constraint`
    wraps a predicate ``config -> bool`` over full configurations, plus the
    subset of parameter names it reads (used for constraint-aware repair and
    for restricting checks to sub-spaces).
:class:`ExpressionConstraint`
    compiles a Python expression string (e.g. ``"tb * tb_sm <= 2048"``)
    evaluated against the configuration dict — convenient for declarative
    space definitions and for serializing spaces to JSON checkpoints.
"""

from __future__ import annotations

import ast
from typing import Any, Callable, Iterable, Mapping, Sequence

__all__ = [
    "Constraint",
    "ExpressionConstraint",
    "ConstraintViolation",
    "check_all",
]


class ConstraintViolation(ValueError):
    """Raised when a configuration violates a constraint and strict checking
    was requested."""

    def __init__(self, constraint: "Constraint", config: Mapping[str, Any]):
        self.constraint = constraint
        self.config = dict(config)
        super().__init__(f"configuration violates constraint {constraint.name!r}")


class Constraint:
    """A predicate over configurations.

    Parameters
    ----------
    fn:
        ``config -> bool``; must return ``True`` for feasible configurations.
        Receives the configuration as a plain dict.  Exceptions raised by the
        predicate are treated as *infeasible* (matching GPTune's behaviour of
        rejecting configurations its constraint lambdas cannot evaluate).
    names:
        Parameter names the predicate reads.  A constraint is only enforced
        when all its names are present in the configuration, which lets the
        same constraint set be reused across sub-spaces produced by the
        search planner.
    name:
        Human-readable label for diagnostics.
    """

    def __init__(
        self,
        fn: Callable[[Mapping[str, Any]], bool],
        names: Sequence[str],
        name: str = "",
    ):
        if not callable(fn):
            raise TypeError("constraint fn must be callable")
        self.fn = fn
        self.names = tuple(names)
        if not self.names:
            raise ValueError("constraint must declare the parameter names it reads")
        self.name = name or getattr(fn, "__name__", "constraint")

    def applies_to(self, available: Iterable[str]) -> bool:
        """True when every parameter the constraint reads is available."""
        avail = set(available)
        return all(n in avail for n in self.names)

    def is_satisfied(self, config: Mapping[str, Any]) -> bool:
        """Evaluate the predicate; exceptions count as infeasible."""
        if not self.applies_to(config.keys()):
            return True
        try:
            return bool(self.fn(config))
        except Exception:
            return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Constraint({self.name!r}, names={list(self.names)})"


_ALLOWED_NODES = (
    ast.Expression,
    ast.BoolOp, ast.And, ast.Or,
    ast.UnaryOp, ast.Not, ast.USub, ast.UAdd,
    ast.BinOp, ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Mod, ast.Pow,
    ast.Compare, ast.Eq, ast.NotEq, ast.Lt, ast.LtE, ast.Gt, ast.GtE,
    ast.In, ast.NotIn,
    ast.Name, ast.Load, ast.Constant,
    ast.Tuple, ast.List,
    ast.Call,
)

_ALLOWED_FUNCS = {"min": min, "max": max, "abs": abs, "len": len, "int": int, "float": float}


def _validate_expression(tree: ast.Expression) -> set[str]:
    """Walk the AST, reject anything outside the arithmetic subset, and
    return the free variable names."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, _ALLOWED_NODES):
            raise ValueError(
                f"disallowed syntax in constraint expression: {type(node).__name__}"
            )
        if isinstance(node, ast.Call):
            if not (isinstance(node.func, ast.Name) and node.func.id in _ALLOWED_FUNCS):
                raise ValueError("only min/max/abs/len/int/float calls are allowed")
        if isinstance(node, ast.Name):
            if node.id not in _ALLOWED_FUNCS:
                names.add(node.id)
    return names


class ExpressionConstraint(Constraint):
    """Constraint compiled from a restricted Python expression string.

    Example
    -------
    >>> c = ExpressionConstraint("tb * tb_sm <= 2048")
    >>> c.is_satisfied({"tb": 32, "tb_sm": 32})
    True
    >>> c.is_satisfied({"tb": 128, "tb_sm": 32})
    False

    Only arithmetic, comparisons, boolean operators, and ``min``/``max``/
    ``abs``/``len``/``int``/``float`` calls are accepted; this keeps the
    expression serializable and safe to re-load from JSON checkpoints.
    """

    def __init__(self, expression: str, name: str = ""):
        tree = ast.parse(expression, mode="eval")
        free = _validate_expression(tree)
        if not free:
            raise ValueError("constraint expression references no parameters")
        code = compile(tree, "<constraint>", "eval")

        def fn(config: Mapping[str, Any]) -> bool:
            env = dict(_ALLOWED_FUNCS)
            env.update({k: config[k] for k in free})
            return bool(eval(code, {"__builtins__": {}}, env))  # noqa: S307

        super().__init__(fn, sorted(free), name or expression)
        self.expression = expression

    def __reduce__(self):  # support pickling despite the closure
        return (ExpressionConstraint, (self.expression, self.name))


def check_all(
    constraints: Iterable[Constraint],
    config: Mapping[str, Any],
    *,
    strict: bool = False,
) -> bool:
    """Evaluate every applicable constraint against ``config``.

    With ``strict=True`` a :class:`ConstraintViolation` is raised on the
    first failing constraint instead of returning ``False``.
    """
    for c in constraints:
        if not c.is_satisfied(config):
            if strict:
                raise ConstraintViolation(c, config)
            return False
    return True
