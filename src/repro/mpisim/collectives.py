"""Analytic cost models for the MPI collectives RT-TDDFT exercises.

QBox's CPU path spends "around 40-50% of the runtime ... in communication
primitives", mostly the matrix transpose&padding (an alltoall among the
``ngb`` ranks) inside the distributed 3D-FFT, plus the accumulation
allreduces at the end of the Slater-determinant loop.  These closed-form
cost models follow the standard Hockney/LogGP-style formulations used by
MPI performance literature:

* point-to-point: ``latency + overhead + bytes / bandwidth`` with the
  intra-node fast path,
* allreduce: Rabenseifner (reduce-scatter + allgather),
  ``2 log2(P) * latency + 2 (P-1)/P * bytes / bw`` for large messages,
* alltoall: pairwise exchange, ``(P-1)`` steps of ``bytes/P`` each,
* the FFT transpose: an alltoall of the wavefunction slab plus a local
  repack (padding) pass at memory bandwidth.

``P = 1`` is always free — the identity the GPU port exploits by setting
``ngb = 1`` and replacing the distributed transpose with an on-device
cuZcopy.
"""

from __future__ import annotations

import math

from .cluster import ClusterSpec

__all__ = [
    "point_to_point_time",
    "allreduce_time",
    "alltoall_time",
    "transpose_padding_time",
    "broadcast_time",
]


def _check(bytes_total: float, ranks: int) -> None:
    if bytes_total < 0:
        raise ValueError("byte count must be >= 0")
    if ranks < 1:
        raise ValueError("ranks must be >= 1")


def _effective_bandwidth(cluster: ClusterSpec, ranks: int) -> float:
    """Mean per-rank bandwidth for a rank group of size ``ranks``.

    Groups that fit in one node ride shared memory; larger groups are
    bounded by the NIC injection bandwidth shared by the node's ranks.
    """
    if ranks <= cluster.ranks_per_node:
        return cluster.intra_node_bandwidth()
    return cluster.interconnect.injection_bandwidth / cluster.ranks_per_node


def point_to_point_time(cluster: ClusterSpec, bytes_total: float, *, same_node: bool) -> float:
    """One message between two ranks."""
    _check(bytes_total, 1)
    ic = cluster.interconnect
    if same_node:
        return ic.per_message_overhead + bytes_total / cluster.intra_node_bandwidth()
    return ic.latency + ic.per_message_overhead + bytes_total / (
        ic.injection_bandwidth / cluster.ranks_per_node
    )


def allreduce_time(cluster: ClusterSpec, bytes_total: float, ranks: int) -> float:
    """Rabenseifner allreduce of ``bytes_total`` over ``ranks`` ranks."""
    _check(bytes_total, ranks)
    if ranks == 1 or bytes_total == 0:
        return 0.0
    ic = cluster.interconnect
    bw = _effective_bandwidth(cluster, ranks)
    steps = math.ceil(math.log2(ranks))
    return 2.0 * steps * (ic.latency + ic.per_message_overhead) + (
        2.0 * (ranks - 1) / ranks
    ) * bytes_total / bw


def broadcast_time(cluster: ClusterSpec, bytes_total: float, ranks: int) -> float:
    """Binomial-tree broadcast."""
    _check(bytes_total, ranks)
    if ranks == 1 or bytes_total == 0:
        return 0.0
    ic = cluster.interconnect
    bw = _effective_bandwidth(cluster, ranks)
    steps = math.ceil(math.log2(ranks))
    return steps * (ic.latency + ic.per_message_overhead + bytes_total / bw)


def alltoall_time(cluster: ClusterSpec, bytes_total: float, ranks: int) -> float:
    """Pairwise-exchange alltoall; ``bytes_total`` is the per-rank buffer
    (each rank sends ``bytes_total / ranks`` to every peer)."""
    _check(bytes_total, ranks)
    if ranks == 1 or bytes_total == 0:
        return 0.0
    ic = cluster.interconnect
    bw = _effective_bandwidth(cluster, ranks)
    per_peer = bytes_total / ranks
    return (ranks - 1) * (
        ic.latency + ic.per_message_overhead + per_peer / bw
    )


def transpose_padding_time(
    cluster: ClusterSpec,
    bytes_total: float,
    ranks: int,
    *,
    padding_factor: float = 1.15,
) -> float:
    """The QBox FFT transpose&padding step among ``ranks`` MPI tasks.

    alltoall of the slab + a local strided repack (with zero padding —
    hence ``padding_factor`` extra bytes moved) through host memory.  This
    is the dominant CPU-path communication the GPU offload eliminates.
    """
    _check(bytes_total, ranks)
    if padding_factor < 1.0:
        raise ValueError("padding_factor must be >= 1")
    comm = alltoall_time(cluster, bytes_total, ranks)
    repack = padding_factor * bytes_total / cluster.node.memory_bandwidth
    return comm + repack
