"""Machine model for the simulated cluster (Perlmutter-like GPU nodes).

The paper measures on NERSC Perlmutter GPU nodes: one AMD EPYC 7763 (64
cores), 256 GB DDR4 at 204.8 GB/s, four NVIDIA A100 GPUs per node on
PCIe 4.0, nodes connected by Slingshot-11.  This module encodes those
machine parameters as plain data consumed by the communication cost models
(:mod:`repro.mpisim.collectives`) and the GPU kernel models
(:mod:`repro.tddft.gpu`).

All bandwidths are bytes/second, latencies seconds.  The numbers are
nominal public figures; the reproduction's claims are about *shape*
(who wins, where crossovers fall), not absolute seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["NodeSpec", "InterconnectSpec", "ClusterSpec", "perlmutter_gpu"]


@dataclass(frozen=True)
class NodeSpec:
    """One compute node.

    Attributes
    ----------
    cores:
        CPU cores (Perlmutter GPU node: 64).
    memory_bandwidth:
        Host DRAM bandwidth (204.8 GB/s).
    gpus:
        GPUs per node (4).
    pcie_bandwidth:
        Effective host<->GPU bandwidth per direction (PCIe 4.0 x16:
        ~25 GB/s nominal, ~21 GB/s effective).
    pcie_latency:
        Per-transfer setup latency.
    """

    cores: int = 64
    memory_bandwidth: float = 204.8e9
    gpus: int = 4
    pcie_bandwidth: float = 21.0e9
    pcie_latency: float = 10e-6

    def __post_init__(self):
        if self.cores < 1 or self.gpus < 0:
            raise ValueError("invalid node spec")
        if min(self.memory_bandwidth, self.pcie_bandwidth) <= 0:
            raise ValueError("bandwidths must be positive")


@dataclass(frozen=True)
class InterconnectSpec:
    """Inter-node network (Slingshot-11-like).

    ``injection_bandwidth`` is per-NIC (node) one-direction bandwidth;
    ``latency`` the small-message one-way latency; ``per_message_overhead``
    the software/rendezvous cost added per MPI message.
    """

    injection_bandwidth: float = 25.0e9
    latency: float = 2.0e-6
    per_message_overhead: float = 1.0e-6

    def __post_init__(self):
        if self.injection_bandwidth <= 0 or self.latency < 0:
            raise ValueError("invalid interconnect spec")


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster: N identical nodes + interconnect.

    ``ranks_per_node`` reflects the paper's placement policy ("we have
    restricted each GPU to a single task, resulting in 4 MPI tasks per
    node").
    """

    name: str = "cluster"
    nodes: int = 10
    node: NodeSpec = field(default_factory=NodeSpec)
    interconnect: InterconnectSpec = field(default_factory=InterconnectSpec)
    ranks_per_node: int = 4

    def __post_init__(self):
        if self.nodes < 1:
            raise ValueError("cluster needs at least one node")
        if not (1 <= self.ranks_per_node <= max(self.node.cores, 1)):
            raise ValueError("ranks_per_node out of range")

    @property
    def total_ranks(self) -> int:
        """MPI ranks available across the whole allocation."""
        return self.nodes * self.ranks_per_node

    def node_of_rank(self, rank: int) -> int:
        """Block placement: ranks fill node 0 first, then node 1, ..."""
        if not (0 <= rank < self.total_ranks):
            raise ValueError(f"rank {rank} outside [0, {self.total_ranks})")
        return rank // self.ranks_per_node

    def same_node(self, a: int, b: int) -> bool:
        return self.node_of_rank(a) == self.node_of_rank(b)

    def intra_node_bandwidth(self) -> float:
        """Rank-to-rank bandwidth within a node (shared-memory copy,
        bounded by DRAM bandwidth split between reader and writer)."""
        return self.node.memory_bandwidth / 2.0


def perlmutter_gpu(nodes: int = 10) -> ClusterSpec:
    """The paper's computational setup: ``nodes`` Perlmutter GPU nodes
    with 4 MPI tasks per node (one per A100)."""
    return ClusterSpec(name="perlmutter-gpu", nodes=nodes)
