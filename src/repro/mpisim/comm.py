"""Simulated MPI communicator and Cartesian rank grids.

Provides just enough MPI semantics for the RT-TDDFT simulator: a
communicator over a cluster, Cartesian sub-grids matching QBox's 4-D
process grid (``nspb x nkpb x nstb x ngb``), and collective *timing*
(not data movement — objective functions only need the seconds).

:class:`CartGrid` mirrors how QBox maps the wavefunction dimensions onto
MPI tasks (Figure 3 of the paper): rank ``r`` owns coordinates
``(s, k, b, g)`` in row-major order over ``(nspb, nkpb, nstb, ngb)``, and
sub-communicators along one axis group the ranks that participate in that
axis' collectives (e.g. the ``ngb`` ranks of one FFT transpose).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from . import collectives
from .cluster import ClusterSpec

__all__ = ["SimCommunicator", "CartGrid"]


class SimCommunicator:
    """A group of ranks on a simulated cluster with collective cost
    queries.

    Parameters
    ----------
    cluster:
        The machine model.
    ranks:
        Global rank ids in this communicator (default: all).
    """

    def __init__(self, cluster: ClusterSpec, ranks: Sequence[int] | None = None):
        self.cluster = cluster
        if ranks is None:
            ranks = range(cluster.total_ranks)
        self.ranks = tuple(ranks)
        if not self.ranks:
            raise ValueError("communicator needs at least one rank")
        seen = set()
        for r in self.ranks:
            if not (0 <= r < cluster.total_ranks):
                raise ValueError(f"rank {r} outside the cluster allocation")
            if r in seen:
                raise ValueError(f"duplicate rank {r}")
            seen.add(r)

    @property
    def size(self) -> int:
        return len(self.ranks)

    def split(self, groups: Sequence[Sequence[int]]) -> list["SimCommunicator"]:
        """Partition into sub-communicators (indices into this comm)."""
        covered: set[int] = set()
        out = []
        for g in groups:
            local = [self.ranks[i] for i in g]
            overlap = covered.intersection(local)
            if overlap:
                raise ValueError(f"ranks in multiple groups: {sorted(overlap)}")
            covered.update(local)
            out.append(SimCommunicator(self.cluster, local))
        return out

    # -- collective timing ------------------------------------------------
    def allreduce_time(self, bytes_total: float) -> float:
        return collectives.allreduce_time(self.cluster, bytes_total, self.size)

    def alltoall_time(self, bytes_total: float) -> float:
        return collectives.alltoall_time(self.cluster, bytes_total, self.size)

    def broadcast_time(self, bytes_total: float) -> float:
        return collectives.broadcast_time(self.cluster, bytes_total, self.size)

    def transpose_padding_time(self, bytes_total: float) -> float:
        return collectives.transpose_padding_time(self.cluster, bytes_total, self.size)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimCommunicator(size={self.size})"


@dataclass(frozen=True)
class CartGrid:
    """QBox's 4-D MPI grid: ``nspb x nkpb x nstb x ngb`` (Figure 3).

    The grid must fit the communicator: ``prod(dims) <= comm.size``; ranks
    beyond the grid stay idle (the work-unbalance case the paper's search
    constraints avoid).
    """

    nspb: int
    nkpb: int
    nstb: int
    ngb: int = 1

    def __post_init__(self):
        for name, v in self.dims.items():
            if v < 1:
                raise ValueError(f"{name} must be >= 1, got {v}")

    @property
    def dims(self) -> dict[str, int]:
        return {"nspb": self.nspb, "nkpb": self.nkpb, "nstb": self.nstb, "ngb": self.ngb}

    @property
    def size(self) -> int:
        return self.nspb * self.nkpb * self.nstb * self.ngb

    def rank_of(self, s: int, k: int, b: int, g: int) -> int:
        """Row-major rank of grid coordinate ``(s, k, b, g)``."""
        for v, n, name in ((s, self.nspb, "s"), (k, self.nkpb, "k"), (b, self.nstb, "b"), (g, self.ngb, "g")):
            if not (0 <= v < n):
                raise ValueError(f"coordinate {name}={v} outside [0, {n})")
        return ((s * self.nkpb + k) * self.nstb + b) * self.ngb + g

    def coords_of(self, rank: int) -> tuple[int, int, int, int]:
        """Inverse of :meth:`rank_of`."""
        if not (0 <= rank < self.size):
            raise ValueError(f"rank {rank} outside grid of size {self.size}")
        g = rank % self.ngb
        rank //= self.ngb
        b = rank % self.nstb
        rank //= self.nstb
        k = rank % self.nkpb
        s = rank // self.nkpb
        return s, k, b, g

    def axis_group(self, axis: str, s: int = 0, k: int = 0, b: int = 0, g: int = 0) -> list[int]:
        """Ranks that vary only along ``axis`` from the given coordinate —
        the members of that axis' sub-communicator (e.g. the ``ngb`` ranks
        of one distributed FFT)."""
        if axis not in self.dims:
            raise ValueError(f"unknown axis {axis!r}")
        base = {"s": s, "k": k, "b": b, "g": g}
        n = self.dims[axis]
        key = {"nspb": "s", "nkpb": "k", "nstb": "b", "ngb": "g"}[axis]
        out = []
        for i in range(n):
            c = dict(base)
            c[key] = i
            out.append(self.rank_of(c["s"], c["k"], c["b"], c["g"]))
        return out

    def local_counts(self, nspin: int, nkpoints: int, nbands: int) -> tuple[int, int, int]:
        """Per-rank work: (spins_loc, kpoints_loc, bands_loc), ceil-divided.

        Ceil division models the load imbalance of non-divisible
        partitions — the reason the paper constrains ``nstb`` to divisors
        of the band count.
        """
        if min(nspin, nkpoints, nbands) < 1:
            raise ValueError("problem dimensions must be >= 1")
        return (
            math.ceil(nspin / self.nspb),
            math.ceil(nkpoints / self.nkpb),
            math.ceil(nbands / self.nstb),
        )

    def is_balanced(self, nspin: int, nkpoints: int, nbands: int) -> bool:
        """True when every grid dimension divides its problem dimension
        and no grid dimension exceeds it (no idle ranks)."""
        return (
            nspin % self.nspb == 0
            and nkpoints % self.nkpb == 0
            and nbands % self.nstb == 0
            and self.nspb <= nspin
            and self.nkpb <= nkpoints
            and self.nstb <= nbands
        )
