"""Simulated MPI/cluster substrate.

Machine models (Perlmutter-like GPU nodes), collective-communication cost
models (Hockney/LogGP style), and a simulated communicator with QBox's 4-D
Cartesian rank grid.
"""

from .cluster import ClusterSpec, InterconnectSpec, NodeSpec, perlmutter_gpu
from .collectives import (
    allreduce_time,
    alltoall_time,
    broadcast_time,
    point_to_point_time,
    transpose_padding_time,
)
from .comm import CartGrid, SimCommunicator

__all__ = [
    "NodeSpec",
    "InterconnectSpec",
    "ClusterSpec",
    "perlmutter_gpu",
    "point_to_point_time",
    "allreduce_time",
    "broadcast_time",
    "alltoall_time",
    "transpose_padding_time",
    "SimCommunicator",
    "CartGrid",
]
