"""Campaign telemetry: span tracing, metrics, event sinks, progress.

A pure observation layer over the tuning pipeline (see
``docs/observability.md``): a :class:`Telemetry` handle threads through
:class:`~repro.core.TuningMethodology`,
:class:`~repro.search.SearchCampaign`, the campaign executor (including
process-pool members, whose events are forwarded and merged
deterministically), and the search engines.  Disabled (the default,
``telemetry=None``) it costs nothing and writes nothing; enabled it
never changes search results — only observes them.

Quick start::

    from repro.telemetry import Telemetry, JsonlSink, ProgressReporter

    tel = Telemetry([JsonlSink("trace/campaign.trace.jsonl")],
                    progress=ProgressReporter())
    tm = TuningMethodology(space, routines, telemetry=tel, ...)
    result = tm.run()
    tel.close()

    from repro.telemetry import TraceReport
    print(TraceReport.from_file("trace/campaign.trace.jsonl").format())
"""

from .clock import MonotonicClock, NullClock, TickClock
from .core import (
    CAMPAIGN_SCOPE,
    NULL_TRACER,
    NullTracer,
    Span,
    Telemetry,
    Tracer,
    config_hash,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, render_prometheus
from .progress import EWMA, ProgressReporter
from .report import TraceReport, load_trace
from .sinks import JsonlSink, MemorySink, encode_event
from .stream import EventBus, JsonlTailer, SpanLatencySink, Subscription

__all__ = [
    "Telemetry",
    "Tracer",
    "Span",
    "NullTracer",
    "NULL_TRACER",
    "CAMPAIGN_SCOPE",
    "config_hash",
    "MonotonicClock",
    "NullClock",
    "TickClock",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "render_prometheus",
    "EWMA",
    "ProgressReporter",
    "TraceReport",
    "load_trace",
    "JsonlSink",
    "MemorySink",
    "encode_event",
    "EventBus",
    "JsonlTailer",
    "SpanLatencySink",
    "Subscription",
]
