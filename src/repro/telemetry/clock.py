"""Injectable clocks for the telemetry layer.

Trace timestamps come from a clock object so that tests (and the
bit-identical-replay guarantees) can swap the real monotonic clock for a
deterministic one.  The search pipeline itself never reads these clocks —
telemetry is a pure observation layer — so the choice of clock can never
perturb search results.

All clocks are small stateless-or-trivially-stateful picklable classes:
they must cross a ``ProcessPoolExecutor`` boundary together with the
member task they instrument.
"""

from __future__ import annotations

import time

__all__ = ["MonotonicClock", "NullClock", "TickClock"]


class MonotonicClock:
    """Real monotonic time (``time.perf_counter``) — the default."""

    def now(self) -> float:
        return time.perf_counter()


class NullClock:
    """Always returns 0.0.

    Used by the determinism tests: with every timestamp pinned to zero, a
    trace's bytes depend only on the (deterministic) event sequence and
    attributes, so sequential and parallel runs of the same campaign
    produce byte-identical member event streams.
    """

    def now(self) -> float:
        return 0.0


class TickClock:
    """Deterministic fake time: advances by ``step`` per call.

    Useful for unit-testing duration math (EWMA ETA, span lengths)
    without sleeping.  Not suitable for cross-run byte-identity (call
    counts may differ between a fresh and a resumed process); use
    :class:`NullClock` for that.
    """

    def __init__(self, step: float = 1.0, start: float = 0.0):
        self.step = float(step)
        self._t = float(start)

    def now(self) -> float:
        t = self._t
        self._t += self.step
        return t
