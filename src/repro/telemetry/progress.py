"""Live progress / ETA reporting for running campaigns.

The reporter consumes the same event stream the trace sinks see —
``search_start`` events announce a member's budget, ``eval`` events tick
it forward, ``span(name="search")`` closes it — and renders a throttled
one-line status to stderr:

``[stage-0] 2/3 searches · evals 87/200 (43%) · best 0.1234 · eta 12s``

Design constraints:

* **Cosmetic only** — the reporter keeps its *own* real clock (never the
  trace clock, which tests pin to zero) and is fed exactly once per
  event by the executor, so enabling it cannot perturb traces or search
  results.
* **Throttled** — at most one render per ``interval`` real seconds (plus
  one final render on ``close()``), so per-evaluation overhead stays
  negligible even for microsecond objectives.
* **EWMA ETA** — the remaining-evaluation estimate multiplies the
  exponentially weighted moving average of recent per-evaluation arrival
  gaps, which adapts to cost drift (BO's growing modeling overhead)
  faster than a global mean.  Pool members forward their events in one
  batch at member completion, so in ``--parallel`` campaigns progress
  advances at member granularity.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Mapping, TextIO

__all__ = ["EWMA", "ProgressReporter"]


class EWMA:
    """Exponentially weighted moving average; ``None`` until first update."""

    __slots__ = ("alpha", "value")

    def __init__(self, alpha: float = 0.3):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = float(alpha)
        self.value: float | None = None

    def update(self, x: float) -> float:
        if self.value is None:
            self.value = float(x)
        else:
            self.value = self.alpha * float(x) + (1.0 - self.alpha) * self.value
        return self.value


class _SearchState:
    __slots__ = ("budget", "done", "best", "finished")

    def __init__(self):
        self.budget: int | None = None
        self.done = 0
        self.best: float | None = None
        self.finished = False


class ProgressReporter:
    """Render campaign progress to a stream at a throttled interval.

    Parameters
    ----------
    stream:
        Output stream (default ``sys.stderr`` resolved at render time).
    interval:
        Minimum real seconds between renders.
    clock:
        Real-time source, injectable for tests (callable -> seconds).
    ewma_alpha:
        Smoothing factor of the per-evaluation rate estimate.
    render:
        ``False`` keeps the full progress model (done/budget/best/ETA,
        queryable via :meth:`snapshot`) but never writes to the stream —
        the headless mode the service event bus uses to compute
        ``job_progress`` payloads.
    """

    def __init__(
        self,
        stream: TextIO | None = None,
        *,
        interval: float = 0.5,
        clock=time.monotonic,
        ewma_alpha: float = 0.3,
        render: bool = True,
    ):
        if interval < 0:
            raise ValueError("interval must be >= 0")
        self._stream = stream
        self.interval = float(interval)
        self.clock = clock
        self.render = bool(render)
        self._rate = EWMA(ewma_alpha)
        self._searches: dict[str, _SearchState] = {}
        self._stage: str = ""
        self._last_render: float | None = None
        self._last_eval_t: float | None = None
        self._rendered = False

    # ------------------------------------------------------------------
    @property
    def stream(self) -> TextIO:
        return self._stream if self._stream is not None else sys.stderr

    def _state(self, scope: str) -> _SearchState:
        s = self._searches.get(scope)
        if s is None:
            s = self._searches[scope] = _SearchState()
        return s

    # -- sink interface -------------------------------------------------
    def emit(self, event: Mapping[str, Any]) -> None:
        kind = event.get("kind")
        scope = event.get("scope", "")
        if kind == "event" and event.get("name") == "search_start":
            attrs = event.get("attrs", {})
            state = self._state(scope)
            if state.done:
                # A search_start on a scope that already has evaluations
                # is a resume (kill/restart): the wall-clock gap across
                # the outage is not an evaluation cost, and neither are
                # the stale pre-kill gaps — reset the rate estimate.
                self._rate = EWMA(self._rate.alpha)
            state.budget = int(attrs.get("budget", 0)) or None
            state.finished = False
            self._stage = str(attrs.get("strategy", self._stage))
            # First-event guard: the gap from "now" to the first eval is
            # startup latency (engine init), not an inter-eval gap.
            self._last_eval_t = None
        elif kind == "eval":
            state = self._state(scope)
            advanced = int(event.get("seq", -1)) + 1 > state.done
            if advanced:
                state.done = int(event.get("seq", -1)) + 1
            best = event.get("best")
            if best is not None:
                state.best = float(best)
            if advanced:
                # Replayed (duplicate-seq) evals arrive in a burst on
                # resume; their ~0 gaps would drive the EWMA — and the
                # ETA — to zero, so only fresh evaluations update it.
                now = self.clock()
                if self._last_eval_t is not None:
                    self._rate.update(max(0.0, now - self._last_eval_t))
                self._last_eval_t = now
        elif kind == "span" and event.get("name") == "search":
            self._state(scope).finished = True
        else:
            return
        self._maybe_render()

    # -- ETA / rendering -------------------------------------------------
    def eta_seconds(self) -> float | None:
        """EWMA-based remaining-time estimate (``None`` before data)."""
        if self._rate.value is None:
            return None
        remaining = 0
        for s in self._searches.values():
            if s.budget is not None and not s.finished:
                remaining += max(0, s.budget - s.done)
        return remaining * self._rate.value

    def throughput(self) -> float | None:
        """Evaluations per second (EWMA), ``None`` before the first
        measured gap or when the gap is zero (sub-resolution clock)."""
        gap = self._rate.value
        if gap is None or gap <= 0.0:
            return None
        return 1.0 / gap

    def snapshot(self) -> dict[str, Any]:
        """Machine-readable progress (the ``job_progress`` payload)."""
        searches = self._searches
        done = sum(s.done for s in searches.values())
        budget = sum(s.budget or 0 for s in searches.values())
        bests = [s.best for s in searches.values() if s.best is not None]
        return {
            "searches_done": sum(1 for s in searches.values() if s.finished),
            "searches_total": len(searches),
            "done": done,
            "budget": budget or None,
            "best": min(bests) if bests else None,
            "eta_seconds": self.eta_seconds(),
            "throughput": self.throughput(),
            "stage": self._stage or None,
        }

    @staticmethod
    def _fmt_eta(seconds: float) -> str:
        if seconds >= 3600:
            return f"{seconds / 3600:.1f}h"
        if seconds >= 60:
            return f"{seconds / 60:.1f}m"
        return f"{seconds:.0f}s"

    def render_line(self) -> str:
        """The current status line (pure; used by tests)."""
        searches = self._searches
        n_done = sum(1 for s in searches.values() if s.finished)
        done = sum(s.done for s in searches.values())
        budget = sum(s.budget or 0 for s in searches.values())
        bests = [s.best for s in searches.values() if s.best is not None]
        parts = []
        if self._stage:
            parts.append(f"[{self._stage}]")
        parts.append(f"{n_done}/{len(searches)} searches")
        if budget:
            pct = 100.0 * min(done, budget) / budget
            parts.append(f"evals {done}/{budget} ({pct:.0f}%)")
        else:
            parts.append(f"evals {done}")
        if bests:
            parts.append(f"best {min(bests):.4g}")
        eta = self.eta_seconds()
        if eta is not None:
            parts.append(f"eta {self._fmt_eta(eta)}")
        return " · ".join(parts)

    def _maybe_render(self, *, force: bool = False) -> None:
        if not self.render:
            return
        now = self.clock()
        if (
            not force
            and self._last_render is not None
            and now - self._last_render < self.interval
        ):
            return
        self._last_render = now
        line = self.render_line()
        stream = self.stream
        if stream.isatty():
            stream.write("\r\x1b[2K" + line)
        else:
            stream.write(line + "\n")
        stream.flush()
        self._rendered = True

    def close(self) -> None:
        """Final render plus a terminating newline on TTYs."""
        if self._searches:
            self._maybe_render(force=True)
        if self._rendered and self.stream.isatty():
            self.stream.write("\n")
            self.stream.flush()
