"""Pluggable telemetry sinks.

:class:`MemorySink`
    In-memory event buffer — used by tests and, internally, to collect a
    campaign member's events so they can be forwarded from a pool worker
    to the parent process and merged deterministically.
:class:`JsonlSink`
    Append-only JSON Lines trace file: one campaign, one file.  The
    evaluation channel is crash-safe in the same sense as the evaluation
    checkpoints: every ``eval`` event is flushed on write (a crash can at
    worst tear the final line, which the loader skips), while span/event
    lines are buffered between evals to keep the per-span syscall cost
    off the hot path.  The sink is *resumable alongside checkpoints*:
    re-opening an existing trace skips evaluation events whose per-scope
    sequence number is already on disk, so a kill/resume cycle converges
    to the same evaluation stream as an uninterrupted run instead of
    duplicating replayed records (evals buffered-but-lost in a crash are
    re-emitted from the checkpoint database on resume).

Events are serialized with sorted keys and without NaN (non-finite
floats become ``null``), so a given event always produces the same
bytes — the substrate of the byte-identity guarantees.
"""

from __future__ import annotations

import json
import math
import os
from typing import Any, Mapping

from ..log import get_logger

__all__ = ["MemorySink", "JsonlSink", "encode_event", "FSYNC_POLICIES"]

logger = get_logger("telemetry")

TRACE_HEADER = "repro-trace"
TRACE_VERSION = 1

#: Durability knobs shared by every append-only JSONL writer in the
#: package (trace sinks here, the job registry WAL in
#: :mod:`repro.service.registry`):
#:
#: * ``"always"`` — fsync after every line.  A crash loses at most the
#:   line being written (the torn tail the loaders repair).
#: * ``"rotate"`` — fsync at file-boundary events (rotation, compaction)
#:   and on close; between them a crash may lose OS-buffered lines.
#: * ``"close"`` — fsync only on close: fastest, weakest.
FSYNC_POLICIES = ("always", "rotate", "close")


def _json_safe(value: Any) -> Any:
    """Make a value JSON-encodable deterministically.

    Non-finite floats (invalid JSON) become ``null``; numpy scalars and
    arrays are coerced to plain Python without importing numpy here.
    """
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {k: _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if type(value).__module__ == "numpy":
        item = getattr(value, "item", None)
        if item is not None and getattr(value, "ndim", 0) == 0:
            return _json_safe(item())
        tolist = getattr(value, "tolist", None)
        if tolist is not None:
            return _json_safe(tolist())
    return value


def encode_event(event: Mapping[str, Any]) -> str:
    """Deterministic single-line JSON encoding of one event."""
    return json.dumps(
        _json_safe(dict(event)), sort_keys=True, separators=(",", ":")
    )


class MemorySink:
    """Collect events in a list (tests, worker-side member buffers)."""

    def __init__(self):
        self.events: list[dict[str, Any]] = []

    def emit(self, event: Mapping[str, Any]) -> None:
        self.events.append(dict(event))

    def close(self) -> None:  # pragma: no cover - nothing to release
        pass


class JsonlSink:
    """Append-only JSONL trace file with resume dedup and size rotation.

    Parameters
    ----------
    path:
        Trace file (conventionally ``<dir>/campaign.trace.jsonl``).  When
        it already exists the sink *resumes* it: the header is not
        rewritten and evaluation events already present (per-scope
        ``seq`` high-water mark) are skipped on re-emission, mirroring
        how resumed searches replay — rather than re-run — checkpointed
        evaluations.
    max_bytes:
        Optional rotation threshold.  When the current file exceeds it,
        the file is rotated to ``<path>.1`` (shifting older rotations to
        ``.2``, ``.3``, ...) and a fresh file (with header) is started.
        The dedup high-water marks persist across rotations.
    max_files:
        Rotated files kept before the oldest is dropped.
    fsync:
        Durability policy, one of :data:`FSYNC_POLICIES`.  The default
        ``"close"`` keeps the historical behavior: every ``eval`` event
        is *flushed* on write (crash-safe up to OS buffering) but the
        file is fsynced only when the sink closes.  ``"rotate"`` adds an
        fsync at each rotation boundary; ``"always"`` fsyncs every
        emitted line (the policy the job registry uses for its WAL).
    """

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        max_bytes: int | None = None,
        max_files: int = 8,
        fsync: str = "close",
    ):
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be > 0")
        if fsync not in FSYNC_POLICIES:
            raise ValueError(f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}")
        self.path = os.fspath(path)
        self.max_bytes = max_bytes
        self.max_files = int(max_files)
        self.fsync = fsync
        self._eval_seen: dict[str, int] = {}
        self._file = None
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        if os.path.exists(self.path):
            # A crash mid-append leaves a torn final line; appending
            # after it would glue the next event onto the fragment and
            # turn a recoverable torn *tail* into a corrupt *interior*
            # line (same contract as the checkpoint loaders).
            from ..bo.history import repair_torn_tail

            repair_torn_tail(self.path)
        existing = self._scan_existing()
        self._file = open(self.path, "a")
        if not existing:
            self._write_line(
                encode_event(
                    {"kind": "header", "format": TRACE_HEADER,
                     "version": TRACE_VERSION}
                )
            )

    # ------------------------------------------------------------------
    def _segments(self) -> list[str]:
        """All on-disk segments, oldest first (rotated then current)."""
        rotated = []
        i = 1
        while os.path.exists(f"{self.path}.{i}"):
            rotated.append(f"{self.path}.{i}")
            i += 1
        return list(reversed(rotated)) + (
            [self.path] if os.path.exists(self.path) else []
        )

    def _scan_existing(self) -> bool:
        """Build per-scope eval high-water marks from existing segments."""
        segments = self._segments()
        found = False
        for seg in segments:
            with open(seg) as f:
                for line in f:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        event = json.loads(line)
                    except json.JSONDecodeError:
                        continue  # torn final line from a crash mid-append
                    found = True
                    if event.get("kind") == "eval":
                        scope = event.get("scope", "")
                        seq = int(event.get("seq", -1))
                        if seq > self._eval_seen.get(scope, -1):
                            self._eval_seen[scope] = seq
        if found:
            logger.info(
                "resuming trace %s (%d scopes already recorded)",
                self.path, len(self._eval_seen),
            )
        return found

    # ------------------------------------------------------------------
    def _write_line(self, line: str, *, flush: bool = True) -> None:
        assert self._file is not None
        self._file.write(line + "\n")
        if flush or self.fsync == "always":
            self._file.flush()
        if self.fsync == "always":
            os.fsync(self._file.fileno())

    def _rotate(self) -> None:
        assert self._file is not None
        if self.fsync in ("always", "rotate"):
            self._file.flush()
            os.fsync(self._file.fileno())
        self._file.close()
        oldest = f"{self.path}.{self.max_files}"
        if os.path.exists(oldest):
            os.unlink(oldest)
        for i in range(self.max_files - 1, 0, -1):
            src = f"{self.path}.{i}"
            if os.path.exists(src):
                os.replace(src, f"{self.path}.{i + 1}")
        os.replace(self.path, f"{self.path}.1")
        logger.info("rotated trace %s", self.path)
        self._file = open(self.path, "a")
        self._write_line(
            encode_event(
                {"kind": "header", "format": TRACE_HEADER,
                 "version": TRACE_VERSION}
            )
        )

    def emit(self, event: Mapping[str, Any]) -> None:
        is_eval = event.get("kind") == "eval"
        if is_eval:
            scope = event.get("scope", "")
            seq = int(event.get("seq", -1))
            if seq <= self._eval_seen.get(scope, -1):
                return  # already persisted by a previous (killed) run
            self._eval_seen[scope] = seq
        if (
            self.max_bytes is not None
            and self._file is not None
            and self._file.tell() > self.max_bytes
        ):
            self._rotate()
        # Flush (a syscall) on evaluation events — the resumable channel,
        # amortized against a real objective evaluation — and on the rare
        # lifecycle `event` lines (search_start, job markers) so live
        # tailers see a search open before its evaluations arrive.  A
        # crash can still lose buffered span lines, but evals lost with
        # them are re-emitted from the checkpoint on resume.
        flush = is_eval or event.get("kind") == "event"
        self._write_line(encode_event(event), flush=flush)

    def close(self) -> None:
        """Flush, fsync, and close the sink.  Idempotent: closing an
        already-closed sink — or one whose handle a failed rotation left
        closed — is a no-op rather than a ``ValueError`` on a closed
        file."""
        if self._file is None:
            return
        if not self._file.closed:
            self._file.flush()
            os.fsync(self._file.fileno())
            self._file.close()
        self._file = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
