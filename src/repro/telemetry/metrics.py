"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The registry is the in-memory side of campaign telemetry — the numbers
behind the paper's cost accounting (evaluations spent, faults absorbed,
cache hits saved) kept as live, mergeable aggregates instead of scattered
``meta`` dicts.

Design constraints:

* **Deterministic snapshots** — :meth:`MetricsRegistry.snapshot` sorts
  every key, so two runs performing the same work serialize identically
  (the trace byte-identity tests rely on this).
* **Mergeable** — pool workers keep their own registry and return a
  snapshot; the parent merges member snapshots in member order, which
  makes sequential and parallel campaigns aggregate identically.
* **Fixed buckets** — histograms use explicit upper bounds chosen at
  creation (no adaptive resizing), so bucket counts from different
  processes merge exactly.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from typing import Any, Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "render_prometheus",
]

#: Default histogram upper bounds (seconds-ish scale, log-spaced).
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0
)


def _label_key(labels: Mapping[str, Any]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """Last-written value (e.g. best-so-far per search, pool occupancy)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value: float | None = None

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram (cumulative-style bucket counts).

    ``buckets`` are the inclusive upper bounds of each bin; observations
    above the last bound land in the implicit overflow (``+Inf``) bin.
    """

    __slots__ = ("buckets", "counts", "overflow", "total", "count")

    def __init__(self, buckets: Iterable[float] = DEFAULT_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ValueError("buckets must be strictly increasing and non-empty")
        self.buckets = bounds
        self.counts = [0] * len(bounds)
        self.overflow = 0
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        i = bisect_left(self.buckets, value)
        if i < len(self.buckets):
            self.counts[i] += 1
        else:
            self.overflow += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Named, labelled metric instruments.

    >>> reg = MetricsRegistry()
    >>> reg.counter("evaluations", search="G1").inc()
    >>> reg.counter("evaluations", search="G1").value
    1.0
    """

    def __init__(self):
        self._counters: dict[tuple, Counter] = {}
        self._gauges: dict[tuple, Gauge] = {}
        self._histograms: dict[tuple, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: Any) -> Counter:
        key = (name, _label_key(labels))
        c = self._counters.get(key)
        if c is None:
            c = self._counters[key] = Counter()
        return c

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = (name, _label_key(labels))
        g = self._gauges.get(key)
        if g is None:
            g = self._gauges[key] = Gauge()
        return g

    def histogram(
        self,
        name: str,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        key = (name, _label_key(labels))
        h = self._histograms.get(key)
        if h is None:
            h = self._histograms[key] = Histogram(buckets)
        return h

    # ------------------------------------------------------------------
    @staticmethod
    def _fmt_key(key: tuple) -> str:
        name, labels = key
        if not labels:
            return name
        return name + "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"

    def snapshot(self) -> dict[str, Any]:
        """Deterministic JSON-compatible dump (keys sorted)."""
        return {
            "counters": {
                self._fmt_key(k): c.value
                for k, c in sorted(self._counters.items())
            },
            "gauges": {
                self._fmt_key(k): g.value
                for k, g in sorted(self._gauges.items())
            },
            "histograms": {
                self._fmt_key(k): {
                    "buckets": list(h.buckets),
                    "counts": list(h.counts),
                    "overflow": h.overflow,
                    "total": h.total,
                    "count": h.count,
                }
                for k, h in sorted(self._histograms.items())
            },
        }

    # ------------------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (sums/last-write/bins)."""
        for key, c in other._counters.items():
            k = self._counters.get(key)
            if k is None:
                k = self._counters[key] = Counter()
            k.value += c.value
        for key, g in other._gauges.items():
            if g.value is not None:
                mine = self._gauges.get(key)
                if mine is None:
                    mine = self._gauges[key] = Gauge()
                mine.value = g.value
        for key, h in other._histograms.items():
            mine = self._histograms.get(key)
            if mine is None:
                mine = self._histograms[key] = Histogram(h.buckets)
            if mine.buckets != h.buckets:
                raise ValueError(
                    f"cannot merge histograms with different buckets: {key}"
                )
            for i, c in enumerate(h.counts):
                mine.counts[i] += c
            mine.overflow += h.overflow
            mine.total += h.total
            mine.count += h.count

    def merge_snapshot(self, snap: Mapping[str, Any]) -> None:
        """Fold a :meth:`snapshot` dict (e.g. returned by a pool worker)."""
        for fmt_key, value in snap.get("counters", {}).items():
            name, labels = self._parse_key(fmt_key)
            self.counter(name, **labels).inc(value)
        for fmt_key, value in snap.get("gauges", {}).items():
            if value is not None:
                name, labels = self._parse_key(fmt_key)
                self.gauge(name, **labels).set(value)
        for fmt_key, h in snap.get("histograms", {}).items():
            name, labels = self._parse_key(fmt_key)
            mine = self.histogram(name, buckets=h["buckets"], **labels)
            if list(mine.buckets) != list(h["buckets"]):
                raise ValueError(
                    f"cannot merge histograms with different buckets: {fmt_key}"
                )
            for i, c in enumerate(h["counts"]):
                mine.counts[i] += int(c)
            mine.overflow += int(h["overflow"])
            mine.total += float(h["total"])
            mine.count += int(h["count"])

    @staticmethod
    def _parse_key(fmt_key: str) -> tuple[str, dict[str, str]]:
        if "{" not in fmt_key:
            return fmt_key, {}
        name, rest = fmt_key.split("{", 1)
        labels = {}
        for part in rest.rstrip("}").split(","):
            if part:
                k, _, v = part.partition("=")
                labels[k] = v
        return name, labels


# ----------------------------------------------------------------------
# Prometheus text exposition (format 0.0.4) from snapshot dicts.

_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str, prefix: str) -> str:
    name = _NAME_SANITIZE.sub("_", prefix + name)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _prom_label_value(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _prom_labels(labels: Mapping[str, str], extra: str = "") -> str:
    parts = [
        f'{_LABEL_SANITIZE.sub("_", str(k))}="{_prom_label_value(v)}"'
        for k, v in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _prom_number(value: float) -> str:
    value = float(value)
    if value != value:
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_prometheus(
    snapshot: Mapping[str, Any], *, prefix: str = "repro_"
) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` dict as Prometheus text.

    Works on any snapshot — including ones merged across workers with
    :meth:`MetricsRegistry.merge_snapshot` — so the service can expose
    one ``GET /metrics`` view of supervisor plus live-worker registries.
    Counters get the conventional ``_total`` suffix; histograms are
    converted from the registry's per-bin counts to Prometheus's
    cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count``.
    """
    by_name: dict[str, list[str]] = {}
    types: dict[str, str] = {}

    def _sample(name: str, kind: str, line: str) -> None:
        types[name] = kind
        by_name.setdefault(name, []).append(line)

    for fmt_key, value in snapshot.get("counters", {}).items():
        raw, labels = MetricsRegistry._parse_key(fmt_key)
        name = _prom_name(raw, prefix) + "_total"
        _sample(
            name, "counter",
            f"{name}{_prom_labels(labels)} {_prom_number(value)}",
        )
    for fmt_key, value in snapshot.get("gauges", {}).items():
        if value is None:
            continue
        raw, labels = MetricsRegistry._parse_key(fmt_key)
        name = _prom_name(raw, prefix)
        _sample(
            name, "gauge",
            f"{name}{_prom_labels(labels)} {_prom_number(value)}",
        )
    for fmt_key, hist in snapshot.get("histograms", {}).items():
        raw, labels = MetricsRegistry._parse_key(fmt_key)
        name = _prom_name(raw, prefix)
        types[name] = "histogram"
        lines = by_name.setdefault(name, [])
        cumulative = 0
        for bound, count in zip(hist["buckets"], hist["counts"]):
            cumulative += int(count)
            le = _prom_labels(labels, extra=f'le="{_prom_number(bound)}"')
            lines.append(f"{name}_bucket{le} {cumulative}")
        le = _prom_labels(labels, extra='le="+Inf"')
        lines.append(f"{name}_bucket{le} {int(hist['count'])}")
        lines.append(
            f"{name}_sum{_prom_labels(labels)} {_prom_number(hist['total'])}"
        )
        lines.append(f"{name}_count{_prom_labels(labels)} {int(hist['count'])}")

    out: list[str] = []
    for name in sorted(by_name):
        out.append(f"# TYPE {name} {types[name]}")
        out.extend(by_name[name])
    return "\n".join(out) + ("\n" if out else "")
