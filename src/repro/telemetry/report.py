"""Post-hoc trace analysis: ``repro report <trace.jsonl>``.

Turns a campaign's JSONL trace into the two artifacts the paper's
accounting revolves around:

* a **stage wall-time attribution table** — per-span-name *self* time
  (span duration minus direct children), rendered through the existing
  :class:`repro.profiling.TimingReport` so it reads exactly like the
  mini-app profiles that motivated the paper's "40-50% communication"
  observation;
* a **best-value-vs-evaluations progression** per search (Figure 6
  material), reconstructed from the ``eval`` event channel — which
  matches ``SearchResult``'s database history exactly, because each
  event is keyed by database index and carries the running best.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any

from ..profiling.timers import TimingReport
from .sinks import TRACE_HEADER

__all__ = ["load_trace", "TraceReport"]


def load_trace(path: str | os.PathLike) -> list[dict[str, Any]]:
    """Read one trace file (plus rotated siblings, oldest first).

    Tolerates a torn final line (crash mid-append), like the evaluation
    checkpoint loader.
    """
    path = os.fspath(path)
    segments = []
    i = 1
    while os.path.exists(f"{path}.{i}"):
        segments.append(f"{path}.{i}")
        i += 1
    segments = list(reversed(segments)) + [path]
    events: list[dict[str, Any]] = []
    for seg in segments:
        with open(seg) as f:
            lines = f.read().splitlines()
        for j, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                if j == len(lines) - 1:
                    continue  # torn final line
                raise
            if event.get("kind") == "header":
                if event.get("format") != TRACE_HEADER:
                    raise ValueError(
                        f"{seg}: not a repro trace (header {event.get('format')!r})"
                    )
                continue
            events.append(event)
    return events


@dataclass
class TraceReport:
    """Aggregated view over one campaign trace."""

    events: list[dict[str, Any]] = field(default_factory=list)

    @classmethod
    def from_file(cls, path: str | os.PathLike) -> "TraceReport":
        return cls(load_trace(path))

    # ------------------------------------------------------------------
    def spans(self) -> list[dict[str, Any]]:
        return [e for e in self.events if e.get("kind") == "span"]

    def eval_events(self, scope: str | None = None) -> list[dict[str, Any]]:
        evs = [e for e in self.events if e.get("kind") == "eval"]
        if scope is not None:
            evs = [e for e in evs if e.get("scope") == scope]
        evs.sort(key=lambda e: (str(e.get("scope")), int(e.get("seq", 0))))
        return evs

    def scopes(self) -> list[str]:
        """Member scopes with evaluation events, in first-seen order."""
        seen: dict[str, None] = {}
        for e in self.events:
            if e.get("kind") == "eval":
                seen.setdefault(str(e.get("scope")), None)
        return list(seen)

    # -- stage attribution ----------------------------------------------
    def timing_report(self) -> TimingReport:
        """Per-span-name *self*-time profile.

        Self time = span duration minus the summed durations of its
        direct children, so nested spans (``search`` containing
        ``bo_iteration`` containing ``gp_fit``) do not double-count and
        the share column sums to ~100% of traced wall-time.
        """
        spans = self.spans()
        child_time: dict[tuple[str, int], float] = {}
        for s in spans:
            parent = s.get("parent")
            if parent is not None:
                key = (str(s.get("scope")), int(parent))
                child_time[key] = child_time.get(key, 0.0) + self._dur(s)
        # Member search trees live in their own scopes, so the parent
        # link cannot express their nesting inside the campaign span:
        # charge member root spans against the campaign span's self time
        # (clamped at zero below when members overlapped in real time).
        camp = [
            s for s in spans
            if s.get("scope") == "campaign" and s.get("name") == "campaign"
        ]
        if len(camp) == 1:
            key = ("campaign", int(camp[0].get("id", -1)))
            child_time[key] = child_time.get(key, 0.0) + sum(
                self._dur(s)
                for s in spans
                if s.get("parent") is None and s.get("scope") != "campaign"
            )
        entries: dict[str, tuple[float, int]] = {}
        for s in spans:
            name = str(s.get("name"))
            key = (str(s.get("scope")), int(s.get("id", -1)))
            self_time = max(0.0, self._dur(s) - child_time.get(key, 0.0))
            total, count = entries.get(name, (0.0, 0))
            entries[name] = (total + self_time, count + 1)
        return TimingReport(entries)

    @staticmethod
    def _dur(span: dict[str, Any]) -> float:
        t0, t1 = span.get("t0"), span.get("t1")
        if t0 is None or t1 is None:
            return 0.0
        return max(0.0, float(t1) - float(t0))

    # -- progression -----------------------------------------------------
    def progression(self, scope: str) -> list[float]:
        """Best-so-far after each *successful* evaluation of one search.

        Equals ``SearchResult.database.best_so_far()`` for the same
        member: eval events are keyed by database index and carry the
        running best over OK records.
        """
        series = []
        for e in self.eval_events(scope):
            if e.get("status") == "ok" and e.get("best") is not None:
                series.append(float(e["best"]))
        return series

    def evaluation_counts(self, scope: str) -> dict[str, int]:
        counts: dict[str, int] = {}
        for e in self.eval_events(scope):
            status = str(e.get("status"))
            counts[status] = counts.get(status, 0) + 1
        return counts

    def merged_metrics(self) -> dict[str, Any]:
        """Union of all metrics snapshots (counters summed)."""
        counters: dict[str, float] = {}
        for e in self.events:
            if e.get("kind") == "metrics":
                for k, v in e.get("counters", {}).items():
                    counters[k] = counters.get(k, 0.0) + float(v)
        return counters

    def warm_start_summary(self) -> dict[str, int]:
        """Seeded warm-start records per member scope.

        Reconstructed from the ``warm_start`` events the executor emits
        when Phase-1 observations are injected as seed history; each
        seeded record replaced one fresh search evaluation.
        """
        out: dict[str, int] = {}
        for e in self.events:
            if e.get("kind") == "event" and e.get("name") == "warm_start":
                scope = str(e.get("scope"))
                seeded = int(e.get("attrs", {}).get("seeded", 0))
                out[scope] = max(out.get(scope, 0), seeded)
        return out

    # -- rendering -------------------------------------------------------
    def format_profile(self) -> str:
        return self.timing_report().format()

    def format_progression(self, width: int = 40) -> str:
        """Per-search best-vs-evaluations progression (Fig. 6 style)."""
        lines = []
        for scope in self.scopes():
            series = self.progression(scope)
            counts = self.evaluation_counts(scope)
            n = sum(counts.values())
            lines.append(
                f"{scope}: {n} evaluations"
                + (
                    ""
                    if n == counts.get("ok", 0)
                    else f" ({n - counts.get('ok', 0)} failed/timeout)"
                )
            )
            if not series:
                lines.append("  (no successful evaluations)")
                continue
            lo, hi = min(series), max(series)
            span = hi - lo
            for i in (0, len(series) // 4, len(series) // 2,
                      3 * len(series) // 4, len(series) - 1):
                v = series[i]
                filled = (
                    int(round((width - 1) * (v - lo) / span)) if span > 0 else 0
                )
                bar = "#" * (width - filled)
                lines.append(f"  after {i + 1:>4} evals  {v:>12.6g}  {bar}")
        return "\n".join(lines)

    def format(self) -> str:
        lines = [
            "stage wall-time attribution (self time per span kind)",
            "-" * 56,
            self.format_profile(),
            "",
            "best-value-vs-evaluations progression",
            "-" * 56,
            self.format_progression(),
        ]
        warm = self.warm_start_summary()
        if warm:
            total = sum(warm.values())
            lines += ["", "warm-start reuse", "-" * 56]
            lines += [
                f"  {scope:<40} {seeded} seeded"
                for scope, seeded in sorted(warm.items())
            ]
            lines.append(
                f"  total: {total} phase-1 observations reused "
                f"({total} search evaluations saved)"
            )
        counters = self.merged_metrics()
        if counters:
            lines += ["", "counters", "-" * 56]
            lines += [f"  {k:<40} {v:g}" for k, v in sorted(counters.items())]
        return "\n".join(lines)
