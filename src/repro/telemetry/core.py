"""Telemetry facade and span tracer.

One :class:`Telemetry` object carries everything the observation layer
needs — sinks, the injectable clock, the metrics registry, and the
optional live progress reporter — and is threaded through
``TuningMethodology -> SearchCampaign -> CampaignExecutor -> engines``.
Every instrumentation site is a pure observer: it never draws random
state, never changes control flow, and is skipped entirely (``tracer is
None`` fast path or :data:`NULL_TRACER` no-ops) when telemetry is
disabled, so search results are bit-identical with telemetry on or off.

Span taxonomy (see ``docs/observability.md``)::

    campaign                 one methodology run / one campaign stage
      sensitivity            phase-1 per-routine sensitivity analysis
      insights               step-2 statistical insight sample
      dag_partition          influence -> DAG -> search-plan partitioning
      search                 one campaign member search
        bo_iteration         one BO loop iteration
          gp_fit             surrogate (re)fit
          acquisition        acquisition maximization
          evaluation         one objective evaluation

Event channels per scope:

* ``span`` / ``event`` — emitted in deterministic order, numbered by a
  shared per-scope ``seq`` counter; describe *work this process actually
  performed* (a resumed run does not re-emit the killed run's spans).
* ``eval`` — one event per evaluation-database record, with ``seq`` equal
  to the record's database index.  Resumed searches re-emit them for
  replayed records, and :class:`~repro.telemetry.sinks.JsonlSink`
  deduplicates by ``(scope, seq)``, so the persisted evaluation stream of
  a kill/resume cycle is byte-identical to an uninterrupted run.
"""

from __future__ import annotations

import zlib
from typing import Any, Iterable, Mapping, Sequence

from ..log import get_logger
from .clock import MonotonicClock
from .metrics import MetricsRegistry
from .sinks import MemorySink

__all__ = [
    "Telemetry",
    "Tracer",
    "Span",
    "NullTracer",
    "NULL_TRACER",
    "config_hash",
    "CAMPAIGN_SCOPE",
]

logger = get_logger("telemetry")

#: Scope name for campaign-level (non-member) spans and events.
CAMPAIGN_SCOPE = "campaign"


def config_hash(config: Mapping[str, Any]) -> int:
    """Stable 32-bit hash of a configuration dict.

    Keys are sorted and values rendered with ``repr`` after coercing
    numpy scalars via ``.item()``, so logically equal configurations hash
    identically across processes and runs.
    """
    parts = []
    for k in sorted(config):
        v = config[k]
        item = getattr(v, "item", None)
        if item is not None and type(v).__module__ == "numpy":
            v = item()
        parts.append(f"{k}={v!r}")
    return zlib.crc32(";".join(parts).encode("utf-8"))


class Span:
    """One open span; ``attrs`` may be updated until the span closes."""

    __slots__ = ("name", "id", "parent", "t0", "attrs")

    def __init__(self, name: str, id: int, parent: int | None, t0: float,
                 attrs: dict[str, Any]):
        self.name = name
        self.id = id
        self.parent = parent
        self.t0 = t0
        self.attrs = attrs


class _SpanContext:
    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._end_span(self._span, error=exc_type is not None)


class Tracer:
    """Per-scope span/event emitter bound to one :class:`Telemetry`.

    Scopes partition the trace: ``"campaign"`` for pipeline-level work,
    one scope per campaign member (e.g. ``"stage-0/Group_1-0"``) for the
    searches.  Span ids, sequence numbers, and the open-span stack are
    kept per scope *on the Telemetry object*, so two tracers for the same
    scope (e.g. methodology- and executor-level campaign tracers) nest
    correctly.
    """

    __slots__ = ("telemetry", "scope")

    def __init__(self, telemetry: "Telemetry", scope: str):
        self.telemetry = telemetry
        self.scope = scope

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: Any) -> _SpanContext:
        tel = self.telemetry
        stack = tel._stack(self.scope)
        span = Span(
            name=name,
            id=tel._next_span_id(self.scope),
            parent=stack[-1].id if stack else None,
            t0=tel.clock.now(),
            attrs=attrs,
        )
        stack.append(span)
        return _SpanContext(self, span)

    def _end_span(self, span: Span, *, error: bool) -> None:
        tel = self.telemetry
        stack = tel._stack(self.scope)
        if stack and stack[-1] is span:
            stack.pop()
        event = {
            "kind": "span",
            "scope": self.scope,
            "seq": tel._next_seq(self.scope),
            "name": span.name,
            "id": span.id,
            "parent": span.parent,
            "t0": span.t0,
            "t1": tel.clock.now(),
            "attrs": dict(span.attrs),
        }
        if error:
            event["error"] = True
        tel.emit(event)

    # ------------------------------------------------------------------
    def event(self, name: str, **attrs: Any) -> None:
        tel = self.telemetry
        tel.emit(
            {
                "kind": "event",
                "scope": self.scope,
                "seq": tel._next_seq(self.scope),
                "name": name,
                "t": tel.clock.now(),
                "attrs": attrs,
            }
        )

    def eval_event(
        self,
        index: int,
        *,
        objective: float,
        cost: float,
        status: str,
        best: float | None,
        failure_kind: str | None = None,
        cfg_hash: int | None = None,
        **attrs: Any,
    ) -> None:
        """One evaluation record, keyed by its database index.

        Content is fully determined by the evaluation record itself, so a
        resumed run re-emits byte-identical events for replayed records.
        """
        tel = self.telemetry
        event = {
            "kind": "eval",
            "scope": self.scope,
            "seq": int(index),
            "objective": objective,
            "cost": cost,
            "status": status,
            "best": best,
        }
        if failure_kind is not None:
            event["failure_kind"] = failure_kind
        if cfg_hash is not None:
            event["config_hash"] = int(cfg_hash)
        if attrs:
            event["attrs"] = attrs
        tel.emit(event)

    def metrics_event(self, registry: MetricsRegistry) -> None:
        """Deterministic snapshot of a registry into the event stream."""
        tel = self.telemetry
        tel.emit(
            {
                "kind": "metrics",
                "scope": self.scope,
                "seq": tel._next_seq(self.scope),
                **registry.snapshot(),
            }
        )


class Telemetry:
    """Sinks + clock + metrics + (optional) live progress, as one handle.

    Parameters
    ----------
    sinks:
        Persistent sinks (trace files, memory buffers).  Every emitted or
        forwarded event reaches all of them.
    clock:
        Timestamp source for spans/events (default: real monotonic).
        Inject :class:`~repro.telemetry.clock.NullClock` for byte-
        identical traces.
    metrics:
        The campaign-level registry; member searches run with their own
        registry which the executor merges back in member order.
    progress:
        Optional live reporter (an object with ``emit(event)``) — kept
        *out* of ``sinks`` so the executor can feed it exactly once per
        event regardless of whether events were observed live (in-process
        member) or arrived as a forwarded batch (pool member).
    """

    enabled = True

    def __init__(
        self,
        sinks: Sequence[Any] = (),
        *,
        clock: Any = None,
        metrics: MetricsRegistry | None = None,
        progress: Any = None,
    ):
        self.sinks = list(sinks)
        self.clock = clock if clock is not None else MonotonicClock()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.progress = progress
        self._span_ids: dict[str, int] = {}
        self._seqs: dict[str, int] = {}
        self._stacks: dict[str, list[Span]] = {}

    # -- per-scope counters --------------------------------------------
    def _next_span_id(self, scope: str) -> int:
        n = self._span_ids.get(scope, 0)
        self._span_ids[scope] = n + 1
        return n

    def _next_seq(self, scope: str) -> int:
        n = self._seqs.get(scope, 0)
        self._seqs[scope] = n + 1
        return n

    def _stack(self, scope: str) -> list[Span]:
        s = self._stacks.get(scope)
        if s is None:
            s = self._stacks[scope] = []
        return s

    # ------------------------------------------------------------------
    def tracer(self, scope: str = CAMPAIGN_SCOPE) -> Tracer:
        return Tracer(self, scope)

    def emit(self, event: Mapping[str, Any], *, live: bool = True) -> None:
        for sink in self.sinks:
            sink.emit(event)
        if live and self.progress is not None:
            self.progress.emit(event)

    def forward(
        self, events: Iterable[Mapping[str, Any]], *, live: bool = True
    ) -> None:
        """Merge a member's buffered event stream into this telemetry.

        Used by the campaign executor: members (in-process or pool
        workers) buffer their events in a :class:`MemorySink`; the parent
        forwards each member's buffer *in member order*, which is what
        makes sequential and parallel campaigns produce identical traces.
        ``live=False`` skips the progress reporter (for events it already
        saw live).
        """
        for event in events:
            self.emit(event, live=live)

    def member(self, *, live: bool = True) -> tuple["Telemetry", MemorySink]:
        """A member-scoped telemetry buffering into a fresh MemorySink.

        The member telemetry shares this one's clock (deterministic
        clocks stay deterministic) but gets its own metrics registry so
        worker- and in-process members aggregate identically.  With
        ``live=True`` the child feeds the progress reporter as events
        happen (sequential mode: forward the buffer with ``live=False``
        afterwards); ``live=False`` keeps progress out of the child
        (pool-fallback mode: the batch forward feeds progress instead).
        """
        buffer = MemorySink()
        child = Telemetry(
            [buffer], clock=self.clock, metrics=MetricsRegistry(),
            progress=self.progress if live else None,
        )
        return child, buffer

    def inline_member(self) -> "Telemetry":
        """A member-scoped telemetry that shares this one's sinks *live*.

        The sequential executor path uses this instead of
        :meth:`member` + ``forward``: each event reaches the persistent
        sinks the moment it happens, so live tailers (the service event
        bus) see evaluations as they complete rather than in one burst
        at member end.  Traces stay byte-identical with the buffered
        path because a sequential member's events arrive in exactly the
        order ``forward`` would have replayed them — the child only
        carries its own metrics registry (merged back by the caller,
        like a pool member's) and its own per-scope counters.
        """
        return Telemetry(
            self.sinks, clock=self.clock, metrics=MetricsRegistry(),
            progress=self.progress,
        )

    def close(self) -> None:
        """Flush and close all sinks (and the progress line, if any)."""
        if self.progress is not None:
            close = getattr(self.progress, "close", None)
            if close is not None:
                close()
        for sink in self.sinks:
            sink.close()


class NullTracer:
    """No-op tracer: the zero-overhead-when-disabled path.

    ``span()`` returns a shared no-op context manager and the event
    methods return immediately; engines that receive ``tracer=None``
    should prefer an explicit ``is None`` check on their hot paths, but
    the null object keeps optional call sites branch-free.
    """

    __slots__ = ()

    class _NullSpanContext:
        __slots__ = ()

        @property
        def attrs(self) -> dict[str, Any]:
            # Fresh throwaway dict per access: writes are discarded, and
            # no state is shared across the singleton's uses.
            return {}

        def __enter__(self):
            return self

        def __exit__(self, *exc):
            return None

    _NULL_SPAN = _NullSpanContext()

    def span(self, name: str, **attrs: Any):
        return self._NULL_SPAN

    def event(self, name: str, **attrs: Any) -> None:
        return None

    def eval_event(self, index: int, **fields: Any) -> None:
        return None

    def metrics_event(self, registry: Any) -> None:
        return None


NULL_TRACER = NullTracer()
