"""Live-tailing primitives for the observability plane.

Three pieces, composed by :mod:`repro.service.events` into the service's
SSE stream (see ``docs/observability.md``):

:class:`JsonlTailer`
    Incremental reader over a rotating JSONL family (a
    :class:`~repro.telemetry.sinks.JsonlSink` trace or the registry
    WAL).  Polling yields each *complete* line exactly once, in write
    order, following the file across size rotations by inode.  Torn
    tails are first-class: a final line without a newline in the live
    file is held until the writer completes it; in a rotated-away
    segment it can never be completed, so it is dropped and counted.

:class:`EventBus`
    Thread-safe fan-out with monotonically increasing cursors.  A
    subscriber attaching ``after=N`` replays every retained event with
    cursor ``> N`` before going live — the mechanism behind the SSE
    ``Last-Event-ID`` resume guarantee (no gaps, no duplicates).

:class:`SpanLatencySink`
    A telemetry sink that folds span durations into
    ``span_seconds{span=...}`` histograms on a
    :class:`~repro.telemetry.metrics.MetricsRegistry` — how gp_fit /
    acquisition latencies reach ``GET /metrics`` without touching the
    engines.

Everything here is an observer: tailers open files read-only and never
write, the bus holds no locks while publishers run application code, and
none of it exists at all until something subscribes.
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque
from typing import Any, Callable, Iterator, Mapping

from ..log import get_logger

__all__ = ["JsonlTailer", "EventBus", "Subscription", "SpanLatencySink"]

logger = get_logger("telemetry")

#: Span names whose durations feed ``span_seconds`` histograms by default
#: (the modeling hot path plus the objective itself).
DEFAULT_LATENCY_SPANS = ("gp_fit", "acquisition", "evaluation")


class _Segment:
    """One open file of a rotating family, ordered oldest-first."""

    __slots__ = ("fd", "ino", "is_current")

    def __init__(self, fd: int, ino: int, is_current: bool):
        self.fd = fd
        self.ino = ino
        self.is_current = is_current


class JsonlTailer:
    """Follow a rotating JSONL file family, yielding complete lines once.

    Parameters
    ----------
    path:
        The *current* file of the family; rotated segments live at
        ``<path>.1`` (newest rotation) .. ``<path>.N`` (oldest), the
        convention of both :class:`~repro.telemetry.sinks.JsonlSink`
        and ``logrotate``.
    skip_header:
        Drop lines whose ``kind``/``event`` field is ``"header"``
        (the self-describing first line of traces and the WAL).

    The first :meth:`poll` reads every existing segment from the
    beginning (oldest rotation first), so a tailer attached to a
    finished trace replays it in full.  Subsequent polls yield only new
    complete lines.  Guarantees:

    * **No tearing** — only ``\\n``-terminated lines are parsed; a
      partial tail of the live file is re-checked on the next poll.
    * **No duplicates** — progress is tracked as ``(inode, offset)``;
      a rotation (``os.replace`` of the current file) is detected by
      inode change and the old segment is finished from the recorded
      offset before newer segments are read.
    * **No silent loss** — a torn final line of a *rotated* segment
      (complete segments end with a newline; a torn one means the
      writer died mid-append before rotating its successor) increments
      :attr:`torn_lines`; a rotation burst that dropped the tailer's
      segment from retention — or a wholesale file replacement, e.g.
      registry WAL compaction — increments :attr:`lost_segments` and
      resumes from the oldest retained segment (every retained segment
      is strictly newer than the lost one, so nothing is duplicated;
      consumers can additionally dedup by their own sequence numbers).
    """

    #: Bytes of context kept before the saved offset to re-identify the
    #: tracked segment across polls (inode numbers get recycled).
    _SIG_LEN = 64

    def __init__(self, path: str | os.PathLike, *, skip_header: bool = True):
        self.path = os.fspath(path)
        self.skip_header = skip_header
        self._ino: int | None = None
        self._pos = 0
        self._sig = b""
        self._primed = False
        self.torn_lines = 0
        self.lost_segments = 0

    # ------------------------------------------------------------------
    def _collect_segments(self) -> list[_Segment]:
        """Open every on-disk segment, oldest first, dedup'd by inode.

        Holding fds (not paths) makes the subsequent reads immune to the
        writer renaming files mid-poll.  The index scan tolerates a few
        consecutive missing names: a rotation's rename chain in flight
        (``.i`` -> ``.i+1``) leaves a transient hole in the sequence,
        and stopping at it would hide every older segment.
        """
        named: list[tuple[str, bool]] = []
        i, misses = 1, 0
        while misses < 4:
            name = f"{self.path}.{i}"
            if os.path.exists(name):
                named.append((name, False))
                misses = 0
            else:
                misses += 1
            i += 1
        named.reverse()  # .N (oldest) .. .1 (newest rotation)
        named.append((self.path, True))
        segments: list[_Segment] = []
        seen: set[int] = set()
        for name, is_current in named:
            try:
                fd = os.open(name, os.O_RDONLY)
            except FileNotFoundError:
                continue  # renamed away between exists() and open()
            ino = os.fstat(fd).st_ino
            if ino in seen:
                os.close(fd)
                continue
            seen.add(ino)
            segments.append(_Segment(fd, ino, is_current))
        return segments

    def _open_family(self) -> list[_Segment]:
        """A rotation-consistent snapshot of the family.

        A rotation that completes *during* the name scan can hide the
        just-rotated current file (``path`` -> ``.1`` lands after the
        ``.1`` name was already checked), which would be indistinguishable
        from retention loss.  The current file's inode changing across
        the scan detects exactly that; retry until it is stable.  The
        loop is bounded: if the writer out-rotates every attempt, accept
        the last scan — the byte-signature check still prevents a
        misread, at worst flagging a spurious ``lost_segments``.
        """
        for _ in range(8):
            try:
                before = os.stat(self.path).st_ino
            except FileNotFoundError:
                before = None
            segments = self._collect_segments()
            after = next((s.ino for s in segments if s.is_current), None)
            if after == before:
                return segments
            for seg in segments:
                os.close(seg.fd)
        return self._collect_segments()

    def _same_segment(self, seg: _Segment) -> bool:
        """Is this really the file we read to ``_pos``?  Inode numbers
        get recycled, so verify the bytes just before our offset still
        match what we read there last poll."""
        if not self._sig:
            return True
        if os.fstat(seg.fd).st_size < self._pos:
            return False
        data = os.pread(seg.fd, len(self._sig), self._pos - len(self._sig))
        return data == self._sig

    def _read_segment(
        self, seg: _Segment, pos: int, out: list[dict[str, Any]]
    ) -> int:
        """Read complete lines from ``pos``; returns the new offset.

        For non-current (finished) segments the trailing partial line —
        if any — is a torn tail that can never be completed: drop and
        count it.  For the current segment it is left for the next poll.
        """
        size = os.fstat(seg.fd).st_size
        if size <= pos:
            return pos
        data = os.pread(seg.fd, size - pos, pos)
        end = data.rfind(b"\n") + 1
        if end == 0:
            if not seg.is_current and data:
                self.torn_lines += 1
                return pos + len(data)
            return pos
        for raw in data[:end].split(b"\n"):
            if not raw.strip():
                continue
            try:
                event = json.loads(raw)
            except (json.JSONDecodeError, UnicodeDecodeError):
                self.torn_lines += 1
                continue
            if self.skip_header and (
                event.get("kind") == "header" or event.get("event") == "header"
            ):
                continue
            out.append(event)
        if not seg.is_current and end < len(data):
            self.torn_lines += 1
            return pos + len(data)
        return pos + end

    def poll(self) -> list[dict[str, Any]]:
        """New complete events since the last poll (possibly empty)."""
        events: list[dict[str, Any]] = []
        segments = self._open_family()
        try:
            if not segments:
                return events
            if not self._primed:
                start = 0
            else:
                start = None
                for i, seg in enumerate(segments):
                    if seg.ino == self._ino:
                        start = i
                        break
                if start is not None and not self._same_segment(
                    segments[start]
                ):
                    # Same inode number, different content: the inode was
                    # recycled for a new file (retention unlinked our
                    # segment, then the writer created one), or the file
                    # was truncated — our offset is meaningless.
                    start = None
                if start is None:
                    # Our segment left retention (rotation burst) or the
                    # file was atomically replaced (WAL compaction).  The
                    # tracked segment was the newest we had read, so every
                    # retained segment is strictly newer: reading them all
                    # from the top duplicates nothing, and the flag tells
                    # consumers the family may have a hole before them.
                    self.lost_segments += 1
                    self._pos = 0
                    start = 0
            for i in range(start, len(segments)):
                seg = segments[i]
                pos = self._pos if (i == start and self._primed) else 0
                self._pos = self._read_segment(seg, pos, events)
                self._ino = seg.ino
            sig_len = min(self._SIG_LEN, self._pos)
            self._sig = os.pread(seg.fd, sig_len, self._pos - sig_len)
            self._primed = True
            return events
        finally:
            for seg in segments:
                os.close(seg.fd)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self.poll())


class Subscription:
    """One consumer's view of an :class:`EventBus`.

    Iteration and :meth:`get` return ``(cursor, event)`` pairs in
    strictly increasing cursor order.  Closing (either side) wakes any
    blocked :meth:`get`.
    """

    def __init__(self, bus: "EventBus", predicate=None):
        self._bus = bus
        self._predicate = predicate
        self._queue: deque[tuple[int, dict[str, Any]]] = deque()
        self._cond = threading.Condition()
        self.closed = False

    # -- bus side --------------------------------------------------------
    def _offer(self, cursor: int, event: Mapping[str, Any]) -> None:
        if self._predicate is not None and not self._predicate(event):
            return
        with self._cond:
            if self.closed:
                return
            self._queue.append((cursor, dict(event)))
            self._cond.notify()

    def _close(self) -> None:
        with self._cond:
            self.closed = True
            self._cond.notify_all()

    # -- consumer side ---------------------------------------------------
    def get(self, timeout: float | None = None):
        """Next ``(cursor, event)``, or ``None`` on timeout / closed-empty."""
        with self._cond:
            if not self._queue:
                self._cond.wait_for(
                    lambda: self._queue or self.closed, timeout=timeout
                )
            if self._queue:
                return self._queue.popleft()
            return None

    def close(self) -> None:
        """Detach from the bus (idempotent)."""
        self._bus._unsubscribe(self)
        self._close()

    def __iter__(self):
        while True:
            item = self.get()
            if item is None:
                return
            yield item

    def __enter__(self) -> "Subscription":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class EventBus:
    """Monotonic-cursor pub/sub with bounded replay history.

    Cursors start at 1 and increase by 1 per published event; they are
    service-incarnation-local (a restarted bus renumbers from 1).
    ``subscribe(after=N)`` replays retained events with cursor ``> N``
    first — the contract backing SSE ``Last-Event-ID`` — then receives
    live events with no gap and no duplicate in between, because both
    the replay and the hand-off to live delivery happen under the bus
    lock.

    ``history`` bounds replay memory; a subscriber whose ``after`` has
    already left the window receives everything still retained (the gap
    is detectable client-side from the cursor jump).
    """

    def __init__(self, *, history: int = 4096):
        if history < 0:
            raise ValueError("history must be >= 0")
        self._lock = threading.Lock()
        self._history: deque[tuple[int, dict[str, Any]]] = deque(
            maxlen=history or None
        )
        self._cursor = 0
        self._subs: list[Subscription] = []
        self.closed = False

    @property
    def cursor(self) -> int:
        """Cursor of the most recently published event (0 before any)."""
        with self._lock:
            return self._cursor

    @property
    def subscriber_count(self) -> int:
        with self._lock:
            return len(self._subs)

    def publish(self, event: Mapping[str, Any]) -> int:
        """Assign the next cursor to ``event`` and fan it out."""
        event = dict(event)
        with self._lock:
            if self.closed:
                raise RuntimeError("publish on a closed EventBus")
            self._cursor += 1
            cursor = self._cursor
            self._history.append((cursor, event))
            subs = list(self._subs)
        for sub in subs:
            sub._offer(cursor, event)
        return cursor

    def subscribe(
        self,
        *,
        after: int = 0,
        predicate: Callable[[Mapping[str, Any]], bool] | None = None,
    ) -> Subscription:
        """Attach a consumer, replaying retained events with cursor > after."""
        sub = Subscription(self, predicate)
        with self._lock:
            for cursor, event in self._history:
                if cursor > after:
                    sub._offer(cursor, event)
            if self.closed:
                sub._close()
            else:
                self._subs.append(sub)
        return sub

    def _unsubscribe(self, sub: Subscription) -> None:
        with self._lock:
            try:
                self._subs.remove(sub)
            except ValueError:
                pass

    def close(self) -> None:
        """Stop accepting events and wake every subscriber (idempotent)."""
        with self._lock:
            if self.closed:
                return
            self.closed = True
            subs = list(self._subs)
            self._subs.clear()
        for sub in subs:
            sub._close()


class SpanLatencySink:
    """Telemetry sink: span durations -> ``span_seconds`` histograms.

    Attach alongside a trace sink to surface gp_fit / acquisition /
    evaluation latencies on a :class:`MetricsRegistry` (and from there
    on ``GET /metrics``) without new instrumentation sites.
    """

    def __init__(self, registry, names=DEFAULT_LATENCY_SPANS):
        self.registry = registry
        self.names = frozenset(names) if names is not None else None

    def emit(self, event: Mapping[str, Any]) -> None:
        if event.get("kind") != "span":
            return
        name = event.get("name")
        if self.names is not None and name not in self.names:
            return
        t0, t1 = event.get("t0"), event.get("t1")
        if t0 is None or t1 is None:
            return
        self.registry.histogram("span_seconds", span=name).observe(
            max(0.0, float(t1) - float(t0))
        )

    def close(self) -> None:  # pragma: no cover - nothing to release
        pass
