"""Multi-objective scalarization hook for the objective adapter chain.

The paper's ledger optimizes a single simulated runtime, but real tuning
campaigns routinely trade runtime against energy or cloud cost (the
"cost-effective" in the title cuts both ways).  This module keeps the
engines single-objective — every sampler still minimizes one scalar —
while letting a :class:`SearchSpec` declare a weighted combination:

``scalar = objective_weight * runtime + sum(w_k * meta[k])``

where the secondary metrics ride in the objective's meta dict (the
``(value, meta)`` return convention every engine already understands).
:class:`ScalarizedObjective` is the *innermost* wrapper in the
executor's adapter chain, so fault injection, the watchdog, retries, and
memoization all operate on the scalarized objective — a cache hit
returns the scalarized value, and determinism invariants are untouched
because scalarization is a pure function of the objective's output.

The raw runtime is preserved in ``meta["raw_objective"]`` so reports and
ledgers can still show the un-scalarized value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["Scalarization", "ScalarizedObjective"]


@dataclass(frozen=True)
class Scalarization:
    """Weighted-sum scalarization spec.

    Attributes
    ----------
    weights:
        Mapping of secondary-metric name (a key the objective reports in
        its meta dict, e.g. ``"energy"`` or ``"cost"``) to its weight.
    objective_weight:
        Weight on the primary returned value (the simulated runtime).
    on_missing:
        ``"error"`` (default) raises ``KeyError`` when the objective's
        meta lacks a weighted metric — silent zeros would corrupt a
        campaign undetectably; ``"zero"`` treats missing metrics as 0.0
        for objectives that only sometimes report them.
    """

    weights: dict[str, float] = field(default_factory=dict)
    objective_weight: float = 1.0
    on_missing: str = "error"

    def __post_init__(self):
        if self.on_missing not in ("error", "zero"):
            raise ValueError("on_missing must be 'error' or 'zero'")
        for name, w in self.weights.items():
            float(w)  # fail fast on non-numeric weights
            if not name:
                raise ValueError("metric names must be non-empty")

    # -- serialization (CLI / campaign manifests) ----------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "weights": {k: float(v) for k, v in self.weights.items()},
            "objective_weight": float(self.objective_weight),
            "on_missing": self.on_missing,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "Scalarization":
        return cls(
            weights=dict(d.get("weights", {})),
            objective_weight=float(d.get("objective_weight", 1.0)),
            on_missing=d.get("on_missing", "error"),
        )

    @classmethod
    def parse(cls, text: str) -> "Scalarization":
        """Parse a CLI-style spec: ``"energy=0.2,cost=0.1"``.

        A bare ``runtime=<w>`` term sets the primary weight; every other
        ``name=<w>`` term weights that meta metric.
        """
        weights: dict[str, float] = {}
        objective_weight = 1.0
        for term in text.split(","):
            term = term.strip()
            if not term:
                continue
            name, sep, w = term.partition("=")
            if not sep:
                raise ValueError(
                    f"bad scalarization term {term!r}; expected name=weight"
                )
            if name.strip() == "runtime":
                objective_weight = float(w)
            else:
                weights[name.strip()] = float(w)
        return cls(weights=weights, objective_weight=objective_weight)

    def scalarize(self, value: float, meta: Mapping[str, Any]) -> float:
        total = self.objective_weight * float(value)
        for name, w in self.weights.items():
            if name in meta:
                total += float(w) * float(meta[name])
            elif self.on_missing == "error":
                raise KeyError(
                    f"scalarization metric {name!r} missing from objective "
                    f"meta (have {sorted(meta)}); set on_missing='zero' to "
                    "tolerate"
                )
        return total


class ScalarizedObjective:
    """Objective adapter applying a :class:`Scalarization` to each call.

    Preserves the wrapped objective's meta (cache layers and failure
    classification see it unchanged) and adds ``meta["raw_objective"]``
    with the un-scalarized primary value.  Picklable whenever the inner
    objective is, so pooled campaign members carry it across the process
    boundary like any other adapter.
    """

    def __init__(self, objective, scalarization: Scalarization):
        self.objective = objective
        self.scalarization = scalarization

    def __call__(self, config: Mapping[str, Any]):
        out = self.objective(config)
        if isinstance(out, tuple):
            value, meta = float(out[0]), dict(out[1])
        else:
            value, meta = float(out), {}
        scalar = self.scalarization.scalarize(value, meta)
        meta["raw_objective"] = value
        return scalar, meta
