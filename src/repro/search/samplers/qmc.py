"""Quasi-random (QMC) sampler: scrambled low-discrepancy sequences.

Quasi-random search keeps random search's embarrassing parallelism and
its tiny Table-III "Time" column while filling the space far more evenly
— the discrepancy of the first :math:`n` points decays like
:math:`O(\\log^d n / n)` instead of the Monte-Carlo
:math:`O(1/\\sqrt{n})`.  The proposal for database record :math:`i` is
simply point :math:`i` of a scrambled sequence, which makes every
determinism invariant trivial: the sequence index *is* the database
length, so kill-and-resume continues at exactly the next point and
parallel campaigns replay identically.

Scrambling is seeded from the member's run-stable stream (via
:meth:`~repro.search.samplers.base.BaseSampler.prepare`, whose seed
depends only on the member seed — never on progress):

* the primary path scrambles **Sobol'** points with
  :class:`scipy.stats.qmc.Sobol` (Owen-style linear matrix scramble +
  digital shift, seeded);
* when SciPy's ``qmc`` module is unavailable the sampler falls back to
  an internal **Halton** sequence scrambled with seeded per-dimension
  digit permutations — pure numpy, same interface, same invariants.

Proposals travel through ``space.decode``, so conditional masking and
discrete snapping apply; configurations that land on an infeasible
point are skipped by the driver's validity filter and replaced by its
uniform feasible fallback for that single index.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from .base import BaseSampler, SamplerCapabilities, register_sampler

try:  # scipy >= 1.7; gated so the sampler degrades rather than imports-errors
    from scipy.stats import qmc as _scipy_qmc
except ImportError:  # pragma: no cover - environment-dependent
    _scipy_qmc = None

__all__ = ["QMCSampler"]

_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137,
    139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
)


class _ScrambledHalton:
    """Seeded-permutation scrambled Halton fallback (pure numpy).

    Dimension ``j`` uses the ``j``-th prime base ``b`` and a fixed
    random permutation of the digits ``{0, .., b-1}`` drawn once from
    the scramble seed; point ``i`` is the permuted radical inverse of
    ``i + 1``.  The permutations fix ``pi(0) = 0`` so trailing zero
    digits stay zero and the radical inverse remains convergent — the
    classic Braaten–Weller digit scrambling.
    """

    def __init__(self, dim: int, rng: np.random.Generator):
        if dim > len(_PRIMES):
            raise ValueError(
                f"Halton fallback supports up to {len(_PRIMES)} dimensions"
            )
        self.bases = _PRIMES[:dim]
        self.perms = []
        for b in self.bases:
            perm = np.concatenate(([0], 1 + rng.permutation(b - 1)))
            self.perms.append(perm)

    def point(self, index: int) -> np.ndarray:
        out = np.empty(len(self.bases))
        for j, (b, perm) in enumerate(zip(self.bases, self.perms)):
            n, denom, value = index + 1, 1.0, 0.0
            while n > 0:
                n, digit = divmod(n, b)
                denom *= b
                value += perm[digit] / denom
            out[j] = value
        return out


@register_sampler
class QMCSampler(BaseSampler):
    """Scrambled low-discrepancy sampler (Sobol', Halton fallback).

    Parameters
    ----------
    engine:
        ``"auto"`` (Sobol' when SciPy provides it, else Halton),
        ``"sobol"`` (require SciPy), or ``"halton"`` (force the internal
        fallback; useful for differential testing).
    """

    name = "qmc"
    aliases = ("sobol",)
    capabilities = SamplerCapabilities(
        floats=True,
        integers=True,
        categorical=True,
        multivariate=False,
        conditional=True,
        warm_start=False,  # the sequence ignores observed objectives
    )

    def __init__(self, engine: str = "auto"):
        if engine not in ("auto", "sobol", "halton"):
            raise ValueError("engine must be 'auto', 'sobol', or 'halton'")
        if engine == "sobol" and _scipy_qmc is None:
            raise ValueError("engine='sobol' requires scipy.stats.qmc")
        self.engine = engine
        self._sobol_seed: int | None = None
        self._halton: _ScrambledHalton | None = None
        self._dim: int | None = None

    # ------------------------------------------------------------------
    def prepare(self, space, seed_seq: np.random.SeedSequence) -> None:
        """Fix the scramble from the run-stable stream.

        Called once per run *and* once per resume with the same seed
        material, so the scrambled sequence — and therefore every
        proposal — is identical across a kill-and-resume boundary.
        """
        rng = np.random.default_rng(seed_seq)
        self._dim = space.dimension
        use_sobol = self.engine != "halton" and _scipy_qmc is not None
        if use_sobol:
            self._sobol_seed = int(rng.integers(0, 2**63))
            self._halton = None
        else:
            self._sobol_seed = None
            self._halton = _ScrambledHalton(space.dimension, rng)

    def _point(self, index: int) -> np.ndarray:
        if self._sobol_seed is not None:
            import warnings

            sob = _scipy_qmc.Sobol(
                d=self._dim, scramble=True, seed=self._sobol_seed
            )
            if index:
                sob.fast_forward(index)
            with warnings.catch_warnings():
                # One point at a time is the whole design here; silence
                # scipy's power-of-two balance advisory.
                warnings.simplefilter("ignore", UserWarning)
                return sob.random(1)[0]
        assert self._halton is not None
        return self._halton.point(index)

    def suggest(
        self, history: Sequence, space, rng: np.random.Generator
    ) -> dict[str, Any]:
        if self._dim != space.dimension:
            # Driver always calls prepare(); direct users get a lazy,
            # rng-seeded scramble (still deterministic per rng stream).
            self.prepare(space, np.random.SeedSequence(int(rng.integers(0, 2**63))))
        return space.decode(self._point(len(history)))
