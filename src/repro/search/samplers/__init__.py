"""Pluggable sampler architecture.

Every search engine — the paper's GP-BO, the Table-III baselines, and
the newer TPE / CMA-ES-lite / QMC samplers — is published through one
:class:`BaseSampler` interface with a declared capability matrix, and
the campaign executor dispatches ``SearchSpec.engine`` names purely
through this registry.  See ``docs/samplers.md`` for the add-a-sampler
quick start and ``tests/samplers/`` for the conformance gauntlet every
registered sampler must pass.
"""

from .adapters import (
    AnnealSamplerAdapter,
    BatchBOSamplerAdapter,
    GPBOSamplerAdapter,
    GridSamplerAdapter,
    HillClimbSamplerAdapter,
    RandomSamplerAdapter,
)
from .base import (
    BaseSampler,
    SamplerCapabilities,
    canonical_engine_name,
    register_sampler,
    registered_samplers,
    sampler_by_name,
    space_features,
    unsupported_features,
)
from .cmaes import CmaEsLiteSampler
from .driver import SamplerSearch
from .qmc import QMCSampler
from .tpe import TPESampler

__all__ = [
    "BaseSampler",
    "SamplerCapabilities",
    "SamplerSearch",
    "register_sampler",
    "registered_samplers",
    "sampler_by_name",
    "canonical_engine_name",
    "space_features",
    "unsupported_features",
    "TPESampler",
    "CmaEsLiteSampler",
    "QMCSampler",
    "GPBOSamplerAdapter",
    "BatchBOSamplerAdapter",
    "RandomSamplerAdapter",
    "GridSamplerAdapter",
    "HillClimbSamplerAdapter",
    "AnnealSamplerAdapter",
]
