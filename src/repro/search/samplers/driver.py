"""The generic search loop that drives suggest-based samplers.

:class:`SamplerSearch` gives every :meth:`BaseSampler.suggest`
implementation the full robustness and determinism contract the legacy
engines earn individually:

* **Per-iteration seed streams** — iteration *i* (the proposal for
  database record *i*) draws from an RNG derived as
  ``SeedSequence(entropy, spawn_key + (i + 1,))``, the same stream-keying
  discipline as :class:`~repro.bo.optimizer.BayesianOptimizer`.  Because
  the stream index is the *database length* rather than any process
  counter, a killed-and-resumed search consumes exactly the streams an
  uninterrupted run would — kill-and-resume is bit-identical for any
  sampler whose proposal is a function of ``(history, rng)``.
* **Resume replay** — records already in the (checkpointed) database are
  replayed, not re-run: eval events are re-emitted for trace byte
  equality and the circuit-breaker state is restored from its sidecar or
  reconstructed from checkpointed failure kinds.
* **Capability fallback** — when the space needs features the sampler
  does not declare (a categorical axis for CMA-ES-lite, say), the run
  degrades *explicitly*: a ``UserWarning`` plus log line, uniform
  feasible sampling takes over proposals, and the result carries
  ``meta["capability_fallback"]`` naming the unsupported features.  A
  sampler never crashes on — or silently mis-encodes — a space it cannot
  handle.
* **Shared validity filter** — every proposal passes
  :meth:`BaseSampler.candidate_is_valid` (domains, constraints,
  conditional masking, breaker quarantine) before it is evaluated.
"""

from __future__ import annotations

import warnings
from typing import Any, Mapping

import numpy as np

from ...bo.history import EvaluationDatabase
from ...faults.breaker import CircuitBreaker, persist_breaker, restore_breaker
from ...faults.taxonomy import failure_kind_of
from ...log import get_logger
from ..evaluate import evaluate_config, schedule_makespan
from ..result import SearchResult
from ..tracing import emit_eval
from .base import BaseSampler, unsupported_features

__all__ = ["SamplerSearch"]

logger = get_logger("search")

#: Suggestion retries per iteration before falling back to uniform
#: feasible sampling (mirrors the legacy engines' redraw budget).
_SUGGEST_RETRIES = 64


class SamplerSearch:
    """Run one member search by repeatedly asking a sampler to suggest.

    Parameters
    ----------
    space, objective, max_evaluations, parallelism, evaluation_timeout,
    quarantine_threshold / quarantine_resolution, database, tracer:
        As in :class:`~repro.search.random_search.RandomSearch`.
    sampler:
        The :class:`~repro.search.samplers.base.BaseSampler` providing
        proposals.
    random_state:
        Seed material: a :class:`numpy.random.SeedSequence` is used
        as-is (the campaign executor path); a Generator contributes one
        entropy draw; anything else seeds a fresh SeedSequence.
    """

    def __init__(
        self,
        space,
        objective,
        sampler: BaseSampler,
        *,
        max_evaluations: int | None = None,
        parallelism: int | None = None,
        evaluation_timeout: float | None = None,
        quarantine_threshold: int | None = None,
        quarantine_resolution: int = 4,
        database: EvaluationDatabase | None = None,
        tracer=None,
        random_state=None,
    ):
        self.space = space
        self.objective = objective
        self.sampler = sampler
        self.max_evaluations = (
            int(max_evaluations)
            if max_evaluations is not None
            else 10 * space.dimension
        )
        if self.max_evaluations < 1:
            raise ValueError("max_evaluations must be >= 1")
        if parallelism is not None and parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        self.parallelism = parallelism
        self.evaluation_timeout = evaluation_timeout
        self.breaker = (
            CircuitBreaker(
                space,
                threshold=quarantine_threshold,
                resolution=quarantine_resolution,
            )
            if quarantine_threshold is not None
            else None
        )
        self.quarantine_skips = 0
        self.invalid_proposals = 0
        self.database = database if database is not None else EvaluationDatabase()
        self.tracer = tracer
        # Seed handling mirrors BayesianOptimizer: a SeedSequence passes
        # through untouched, a Generator (legacy API) contributes one
        # entropy draw, anything else seeds a fresh sequence.
        if isinstance(random_state, np.random.SeedSequence):
            self._seed_seq = random_state
        elif isinstance(random_state, np.random.Generator):
            self._seed_seq = np.random.SeedSequence(
                int(random_state.integers(0, 2**63))
            )
        else:
            self._seed_seq = np.random.SeedSequence(random_state)
        self._fallback_features = unsupported_features(
            sampler.capabilities, space
        )

    # ------------------------------------------------------------------
    def _stream(self, index: int) -> np.random.SeedSequence:
        """Child SeedSequence for stream ``index`` (stable, stateless).

        Built by extending the spawn key instead of calling ``spawn()``
        so reconstruction is independent of how many children were
        spawned before — the property resume correctness rests on.
        """
        key = tuple(self._seed_seq.spawn_key) + (int(index),)
        return np.random.SeedSequence(self._seed_seq.entropy, spawn_key=key)

    def _iter_rng(self, index: int) -> np.random.Generator:
        """The RNG for the proposal of database record ``index``.

        Stream 0 is reserved for :meth:`BaseSampler.prepare`; iteration
        ``i`` uses stream ``i + 1``.  Keyed on the record index, so a
        resumed search continues exactly where the crashed one left off.
        """
        return np.random.default_rng(self._stream(index + 1))

    def _complete(self, config: Mapping[str, Any]) -> dict[str, Any]:
        complete = getattr(self.space, "complete", None)
        return complete(config) if complete is not None else dict(config)

    # ------------------------------------------------------------------
    def _suggest(self, index: int) -> dict[str, Any] | None:
        """One validated proposal for record ``index`` (or ``None``).

        The sampler gets :data:`_SUGGEST_RETRIES` attempts on the
        iteration's own RNG stream; proposals failing the shared validity
        filter are discarded and re-asked.  After the budget — or
        immediately, under capability fallback — uniform feasible
        sampling takes over, with the breaker's own redraw loop on top.
        ``None`` once the reachable space appears fully quarantined.
        """
        rng = self._iter_rng(index)
        history = self.database.records
        if not self._fallback_features:
            for _ in range(_SUGGEST_RETRIES):
                cfg = self.sampler.suggest(history, self.space, rng)
                if self.sampler.candidate_is_valid(self.space, cfg, self.breaker):
                    return cfg
                if self.breaker is not None and self.space.is_valid(cfg):
                    self.quarantine_skips += 1
                else:
                    self.invalid_proposals += 1
        # Uniform feasible fallback: space.sample() is valid by
        # construction, so only the breaker can still veto.
        cfg = self.space.sample(rng)
        if self.breaker is None or self.breaker.allows(cfg):
            return cfg
        self.quarantine_skips += 1
        for _ in range(_SUGGEST_RETRIES):
            cfg = self.space.sample(rng)
            if self.breaker.allows(cfg):
                return cfg
            self.quarantine_skips += 1
        return None

    def run(self) -> SearchResult:
        """Evaluate up to ``max_evaluations`` sampler-proposed configs."""
        if self._fallback_features:
            msg = (
                f"sampler {self.sampler.name!r} does not support "
                f"{', '.join(self._fallback_features)} required by space "
                f"{self.space.name!r}; falling back to uniform feasible "
                "sampling"
            )
            warnings.warn(msg, UserWarning, stacklevel=2)
            logger.warning(msg)
        self.sampler.prepare(self.space, self._stream(0))
        best_seen: float | None = None
        if self.tracer is not None:
            # Re-emit eval events for replayed records (resume support):
            # the sink dedups by database index, so the persisted stream
            # matches an uninterrupted run byte-for-byte.
            for i, rec in enumerate(self.database):
                best_seen = emit_eval(self.tracer, i, rec, best_seen)
        if self.breaker is not None:
            # Resume support: restore the persisted sidecar when one
            # exists; otherwise replay checkpointed failure kinds.
            if not restore_breaker(self.breaker, self.database.path):
                for rec in self.database:
                    if not rec.ok:
                        self.breaker.record(rec.config, failure_kind_of(rec))
        while len(self.database) < self.max_evaluations:
            index = len(self.database)
            cfg = self._suggest(index)
            if cfg is None:
                break
            full = self._complete(cfg)
            if self.tracer is None:
                rec = evaluate_config(
                    self.objective, full,
                    evaluation_timeout=self.evaluation_timeout,
                )
            else:
                with self.tracer.span("evaluation") as sp:
                    rec = evaluate_config(
                        self.objective, full,
                        evaluation_timeout=self.evaluation_timeout,
                    )
                    sp.attrs.update(status=rec.status, cost=rec.cost)
            if self.breaker is not None and not rec.ok:
                before = self.breaker.total_counted
                self.breaker.record(rec.config, failure_kind_of(rec))
                if self.breaker.total_counted != before:
                    persist_breaker(self.breaker, self.database.path)
            self.database.append(rec)
            if self.tracer is not None:
                best_seen = emit_eval(
                    self.tracer, len(self.database) - 1, rec, best_seen
                )
        costs = np.array([r.cost for r in self.database], dtype=float)
        slots = (
            self.parallelism if self.parallelism is not None
            else max(1, costs.size)
        )
        best = self.database.best()
        meta: dict[str, Any] = {"sampler": self.sampler.name}
        if self._fallback_features:
            meta["capability_fallback"] = {
                "sampler": self.sampler.name,
                "unsupported": list(self._fallback_features),
                "fallback": "uniform",
            }
        if self.breaker is not None and self.breaker.n_tripped:
            meta["quarantined"] = self.breaker.summary()
        if self.quarantine_skips:
            meta["quarantine_skipped"] = self.quarantine_skips
        if self.invalid_proposals:
            meta["invalid_proposals"] = self.invalid_proposals
        return SearchResult(
            name=self.space.name,
            engine=self.sampler.name,
            best_config=dict(best.config),
            best_objective=best.objective,
            search_time=schedule_makespan(costs, slots),
            n_evaluations=len(self.database),
            database=self.database,
            meta=meta,
        )
