"""CMA-ES-lite: diagonal-covariance evolution strategy sampler.

A deliberately small cousin of CMA-ES (Hansen & Ostermeier, 2001): the
search distribution is a diagonal Gaussian in the unit cube whose mean
and per-axis scale are *recomputed from the evaluation history on every
call* — the log-weighted recombination of the best half of the
successful records, exactly like the :math:`\\mu`-weighted mean update of
the real algorithm, with the per-axis weighted standard deviation
standing in for the full covariance adaptation.  Dropping the evolution
paths and off-diagonal terms costs some adaptation speed but buys two
properties this codebase cares about more:

* **resume determinism for free** — there is no mutable strategy state
  to checkpoint; the distribution is a pure function of the replayed
  database, so kill-and-resume is bit-identical by construction;
* **O(d) cost per proposal** — no covariance factorization.

The distribution lives on the *ordered* axes of the unit-cube encoding,
so only float and integer/ordinal parameters are supported natively.
On categorical or conditional spaces the driver degrades explicitly
(``UserWarning`` + uniform feasible fallback + ``capability_fallback``
in the result meta) — declared via the capability matrix rather than
silently mis-encoding category indices as if they were ordered.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from .base import BaseSampler, SamplerCapabilities, register_sampler

__all__ = ["CmaEsLiteSampler"]


@register_sampler
class CmaEsLiteSampler(BaseSampler):
    """Diagonal-Gaussian evolution strategy over the unit cube.

    Parameters
    ----------
    n_startup:
        Uniform evaluations before the Gaussian model turns on.
    mu_fraction:
        Fraction of successful records forming the recombination
        parents (best ``max(2, floor(mu_fraction * n_ok))``).
    sigma_floor:
        Minimum per-axis standard deviation in unit-cube units; keeps
        the distribution from collapsing onto a point and stalling.
    sigma_boost:
        Multiplier on the empirical parent spread (CMA's step-size is
        wider than the parent cloud; 1.0 would only ever contract).
    """

    name = "cma-es-lite"
    aliases = ("cmaes-lite",)
    capabilities = SamplerCapabilities(
        floats=True,
        integers=True,
        categorical=False,
        multivariate=True,
        conditional=False,
        warm_start=True,
    )

    def __init__(
        self,
        n_startup: int = 8,
        mu_fraction: float = 0.5,
        sigma_floor: float = 0.02,
        sigma_boost: float = 1.3,
    ):
        if n_startup < 2:
            raise ValueError("n_startup must be >= 2")
        if not 0.0 < mu_fraction <= 1.0:
            raise ValueError("mu_fraction must be in (0, 1]")
        self.n_startup = int(n_startup)
        self.mu_fraction = float(mu_fraction)
        self.sigma_floor = float(sigma_floor)
        self.sigma_boost = float(sigma_boost)

    def suggest(
        self, history: Sequence, space, rng: np.random.Generator
    ) -> dict[str, Any]:
        ok = [r for r in history if r.ok]
        if len(ok) < self.n_startup:
            return space.sample(rng)
        order = np.argsort([r.objective for r in ok], kind="stable")
        mu = max(2, int(self.mu_fraction * len(ok)))
        parents = space.encode_batch(
            [ok[i].config for i in order[:mu]]
        )
        # Log-decreasing recombination weights, as in standard CMA-ES.
        w = np.log(mu + 0.5) - np.log(np.arange(1, mu + 1))
        w /= np.sum(w)
        mean = w @ parents
        var = w @ (parents - mean) ** 2
        sigma = np.maximum(
            self.sigma_boost * np.sqrt(var), self.sigma_floor
        )
        x = np.clip(mean + sigma * rng.standard_normal(mean.shape), 0.0, 1.0)
        return space.decode(x)
