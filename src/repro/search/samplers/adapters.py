"""Adapters publishing the legacy engines through the sampler registry.

The GP-BO, batch-BO, random, grid, and local-search engines predate the
:class:`~repro.search.samplers.base.BaseSampler` interface and run their
own loops (surrogate refits, acquisition schedules, strided grid
enumeration) rather than a suggest-per-iteration protocol.  Each adapter
here overrides :meth:`run_search` to construct its engine **exactly** as
the campaign executor's dispatch historically did — same constructor
arguments, same seed handling, same result assembly — which is what
keeps every existing GP-BO fingerprint and simulated Table-III
cost-ledger number byte-for-byte unchanged across the refactor.

Their :meth:`suggest` implementations are real but deliberately modest:
they provide the sampler's *one-more-candidate* behavior for interactive
use and the conformance harness's interface checks (the grid adapter
enumerates its strided grid by history index; the others draw a uniform
feasible configuration, matching their engines' initial designs).  The
authoritative execution path is ``run_search``.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from ...bo.optimizer import BayesianOptimizer
from ..result import SearchResult
from .base import BaseSampler, SamplerCapabilities, register_sampler

__all__ = [
    "GPBOSamplerAdapter",
    "BatchBOSamplerAdapter",
    "RandomSamplerAdapter",
    "GridSamplerAdapter",
    "HillClimbSamplerAdapter",
    "AnnealSamplerAdapter",
]


def _bo_result(spec, r, engine: str) -> SearchResult:
    return SearchResult(
        name=spec.space.name,
        engine=engine,
        best_config=r.best_config,
        best_objective=r.best_objective,
        search_time=r.search_time,
        n_evaluations=r.n_evaluations,
        database=r.database,
        tuned_names=tuple(spec.space.names),
        meta=dict(r.meta),
    )


def _common_kwargs(spec, database, tracer) -> dict[str, Any]:
    out: dict[str, Any] = {}
    if database is not None:
        out["database"] = database
    if tracer is not None:
        out["tracer"] = tracer
    if spec.quarantine_threshold is not None:
        out["quarantine_threshold"] = spec.quarantine_threshold
        out["quarantine_resolution"] = spec.quarantine_resolution
    return out


@register_sampler
class GPBOSamplerAdapter(BaseSampler):
    """The GP-based Bayesian optimizer (the paper's engine)."""

    name = "gp-bo"
    aliases = ("bo",)
    capabilities = SamplerCapabilities(
        floats=True,
        integers=True,
        categorical=True,
        multivariate=True,
        conditional=True,
        warm_start=True,
    )

    def suggest(
        self, history: Sequence, space, rng: np.random.Generator
    ) -> dict[str, Any]:
        return space.sample(rng)

    @classmethod
    def run_search(cls, spec, seed, objective, database, tracer=None):
        pool = getattr(spec, "candidate_pool", None)
        opt = BayesianOptimizer(
            spec.space,
            objective,
            max_evaluations=spec.budget(),
            random_state=seed,
            **_common_kwargs(spec, database, tracer),
            **({"candidate_pool": pool} if pool is not None else {}),
            **spec.engine_options,
        )
        return _bo_result(spec, opt.run(), "bo")


@register_sampler
class BatchBOSamplerAdapter(GPBOSamplerAdapter):
    """Batched-acquisition BO (q proposals per surrogate refit)."""

    name = "batch-bo"
    aliases = ()

    @classmethod
    def run_search(cls, spec, seed, objective, database, tracer=None):
        from ...bo.batch import BatchBayesianOptimizer

        pool = getattr(spec, "candidate_pool", None)
        opt = BatchBayesianOptimizer(
            spec.space,
            objective,
            max_evaluations=spec.budget(),
            random_state=seed,
            **_common_kwargs(spec, database, tracer),
            **({"candidate_pool": pool} if pool is not None else {}),
            **spec.engine_options,
        )
        return _bo_result(spec, opt.run(), "batch-bo")


@register_sampler
class RandomSamplerAdapter(BaseSampler):
    """Uniform constrained random search (Table III baseline)."""

    name = "random"
    capabilities = SamplerCapabilities(
        floats=True,
        integers=True,
        categorical=True,
        multivariate=False,
        conditional=True,
        warm_start=False,
    )

    def suggest(
        self, history: Sequence, space, rng: np.random.Generator
    ) -> dict[str, Any]:
        return space.sample(rng)

    @classmethod
    def run_search(cls, spec, seed, objective, database, tracer=None):
        from ..random_search import RandomSearch

        rs = RandomSearch(
            spec.space,
            objective,
            max_evaluations=spec.budget(),
            random_state=np.random.default_rng(seed),
            **_common_kwargs(spec, database, tracer),
            **spec.engine_options,
        )
        result = rs.run()
        result.tuned_names = tuple(spec.space.names)
        return result


@register_sampler
class GridSamplerAdapter(BaseSampler):
    """Strided grid enumeration (Table III baseline; deterministic)."""

    name = "grid"
    capabilities = SamplerCapabilities(
        floats=True,
        integers=True,
        categorical=True,
        multivariate=False,
        conditional=True,
        warm_start=False,
    )

    def __init__(
        self, points_per_axis: int = 4, max_points_per_discrete_axis: int = 32
    ):
        self.points_per_axis = points_per_axis
        self.max_points_per_discrete_axis = max_points_per_discrete_axis

    def suggest(
        self, history: Sequence, space, rng: np.random.Generator
    ) -> dict[str, Any]:
        """The ``len(history)``-th feasible point of the strided grid."""
        from ..grid_search import GridSearch

        gs = GridSearch(
            space,
            objective=None,
            points_per_axis=self.points_per_axis,
            max_points_per_discrete_axis=self.max_points_per_discrete_axis,
        )
        want = len(history)
        seen = 0
        for cfg in gs._iter_grid():
            if not self.candidate_is_valid(space, cfg):
                continue
            if seen == want:
                return cfg
            seen += 1
        return space.sample(rng)  # grid exhausted: uniform tail

    @classmethod
    def run_search(cls, spec, seed, objective, database, tracer=None):
        from ..grid_search import GridSearch

        gs = GridSearch(
            spec.space,
            objective,
            max_evaluations=spec.budget(),
            **({"database": database} if database is not None else {}),
            **({"tracer": tracer} if tracer is not None else {}),
            **spec.engine_options,
        )
        result = gs.run()
        result.tuned_names = tuple(spec.space.names)
        return result


@register_sampler
class HillClimbSamplerAdapter(BaseSampler):
    """Greedy neighborhood descent (local-search baseline)."""

    name = "hillclimb"
    capabilities = SamplerCapabilities(
        floats=True,
        integers=True,
        categorical=True,
        multivariate=False,
        conditional=True,
        warm_start=False,
    )

    _ENGINE_ATTR = "HillClimbing"

    def suggest(
        self, history: Sequence, space, rng: np.random.Generator
    ) -> dict[str, Any]:
        ok = [r for r in history if r.ok]
        if not ok:
            return space.sample(rng)
        best = min(ok, key=lambda r: r.objective)
        moves = space.neighbors(best.config)
        if not moves:
            return space.sample(rng)
        return dict(moves[int(rng.integers(0, len(moves)))])

    @classmethod
    def run_search(cls, spec, seed, objective, database, tracer=None):
        from .. import local_search

        engine = getattr(local_search, cls._ENGINE_ATTR)
        ls = engine(
            spec.space,
            objective,
            max_evaluations=spec.budget(),
            random_state=np.random.default_rng(seed),
            **spec.engine_options,
        )
        return ls.run()


@register_sampler
class AnnealSamplerAdapter(HillClimbSamplerAdapter):
    """Simulated annealing (local-search baseline)."""

    name = "anneal"
    _ENGINE_ATTR = "SimulatedAnnealing"
