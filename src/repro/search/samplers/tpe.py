"""Tree-structured Parzen Estimator sampler (Bergstra et al., 2011).

The classic density-ratio alternative to GP-BO: split the history at the
:math:`\\gamma` quantile into *good* and *bad* sets, model each with a
per-dimension Parzen (kernel-density) mixture over the unit-cube
encoding, and propose the candidate maximizing the ratio
:math:`l(x)/g(x)` — equivalently :math:`\\sum_d \\log l_d - \\log g_d`
under the independent-axes factorization.  Axes are treated
independently (``multivariate=False`` in the capability matrix), which is
exactly what makes TPE cheap on the mixed discrete/categorical HPC
spaces where a joint GP pays dearly for its covariance.

The sampler is **stateless-from-history**: the good/bad split and the
Parzen bandwidths are recomputed from the evaluation records on every
call, so a killed-and-resumed search rebuilds the identical model from
the replayed database and kill-and-resume bit-identity comes for free.
Conditional spaces are safe by construction — proposals travel through
``space.decode``, whose masking pins inactive children.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from .base import BaseSampler, SamplerCapabilities, register_sampler

__all__ = ["TPESampler"]


@register_sampler
class TPESampler(BaseSampler):
    """Parzen-estimator sampler over good/bad history splits.

    Parameters
    ----------
    n_startup:
        Evaluations drawn uniformly before the Parzen model turns on
        (the model needs both a good and a bad set to be meaningful).
    gamma:
        Good-set quantile: the best ``ceil(gamma * n_ok)`` records form
        the *good* density ``l``; the rest form ``g``.
    n_candidates:
        Candidates drawn from ``l`` and ranked by the density ratio per
        proposal.
    bandwidth_floor:
        Minimum per-dimension kernel bandwidth in unit-cube units; keeps
        a collapsed good set (identical values on an axis) from producing
        a degenerate spike.
    """

    name = "tpe"
    capabilities = SamplerCapabilities(
        floats=True,
        integers=True,
        categorical=True,
        multivariate=False,
        conditional=True,
        warm_start=True,
    )

    def __init__(
        self,
        n_startup: int = 10,
        gamma: float = 0.25,
        n_candidates: int = 24,
        bandwidth_floor: float = 0.05,
    ):
        if n_startup < 2:
            raise ValueError("n_startup must be >= 2")
        if not 0.0 < gamma < 1.0:
            raise ValueError("gamma must be in (0, 1)")
        if n_candidates < 1:
            raise ValueError("n_candidates must be >= 1")
        self.n_startup = int(n_startup)
        self.gamma = float(gamma)
        self.n_candidates = int(n_candidates)
        self.bandwidth_floor = float(bandwidth_floor)

    # ------------------------------------------------------------------
    @staticmethod
    def _log_parzen(cand: np.ndarray, pts: np.ndarray, bw: np.ndarray) -> np.ndarray:
        """Per-axis log Parzen density, summed over dimensions.

        ``cand``: (m, d) candidates; ``pts``: (k, d) mixture centers;
        ``bw``: (d,) bandwidths.  Returns (m,) log densities under the
        independent-axes normal-mixture model (normalization constants
        shared by ``l`` and ``g`` cancel in the ratio but are kept so the
        scores are genuine log densities).
        """
        # (m, k, d) squared standardized distances
        z = (cand[:, None, :] - pts[None, :, :]) / bw[None, None, :]
        # log mean over mixture components, per axis, then sum axes
        log_k = -0.5 * z**2 - np.log(bw[None, None, :] * np.sqrt(2.0 * np.pi))
        m = np.max(log_k, axis=1, keepdims=True)
        log_mix = m[:, 0, :] + np.log(np.mean(np.exp(log_k - m), axis=1))
        return np.sum(log_mix, axis=1)

    def suggest(
        self, history: Sequence, space, rng: np.random.Generator
    ) -> dict[str, Any]:
        ok = [r for r in history if r.ok]
        n_good = int(np.ceil(self.gamma * len(ok)))
        if len(ok) < self.n_startup or n_good < 1 or len(ok) - n_good < 1:
            return space.sample(rng)
        order = np.argsort([r.objective for r in ok], kind="stable")
        X = space.encode_batch([ok[i].config for i in order])
        good, bad = X[:n_good], X[n_good:]
        bw_good = np.maximum(np.std(good, axis=0), self.bandwidth_floor)
        bw_bad = np.maximum(np.std(bad, axis=0), self.bandwidth_floor)
        # Draw candidates from l: a good center plus per-axis kernel noise.
        centers = good[rng.integers(0, len(good), size=self.n_candidates)]
        cand = np.clip(
            centers
            + rng.standard_normal((self.n_candidates, good.shape[1])) * bw_good,
            0.0,
            1.0,
        )
        score = self._log_parzen(cand, good, bw_good) - self._log_parzen(
            cand, bad, bw_bad
        )
        return space.decode(cand[int(np.argmax(score))])
