"""The pluggable sampler interface: capabilities, registry, base class.

Every search engine in :mod:`repro` is published through this module as a
:class:`BaseSampler` subclass with a declared :class:`SamplerCapabilities`
matrix (the Optuna feature-matrix idea: which parameter types, whether
proposals are multivariate, whether conditional spaces and warm-start
history are supported).  The campaign executor dispatches engines purely
through :func:`sampler_by_name`, so adding a sampler is: subclass,
``@register_sampler``, pass the conformance gauntlet in
``tests/samplers/``.

Two kinds of sampler live behind the one interface:

* **suggest-based samplers** (TPE, CMA-ES-lite, QMC, …) implement
  :meth:`BaseSampler.suggest` and inherit the default
  :meth:`BaseSampler.run_search`, which drives them through the generic
  :class:`~repro.search.samplers.driver.SamplerSearch` loop — resume
  replay, breaker quarantine, telemetry, and per-iteration seed streams
  included;
* **engine adapters** (GP-BO, batch BO, random, grid, local search)
  override :meth:`run_search` to construct their legacy engine exactly as
  the executor always has, byte-for-byte — the refactor that re-homed
  them here changed no fingerprint and no Table-III ledger number.

The candidate-validity check that grid and random search used to
duplicate lives here too (:meth:`BaseSampler.candidate_is_valid`): one
definition of "this configuration may be evaluated" shared by every
engine — in-domain, constraint-satisfying (conditional masking included
via ``space.is_valid``), and not quarantined by the circuit breaker.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping, Sequence

import numpy as np

from ...space import Categorical, ConditionalSpace, Constant, Integer, Ordinal, Real

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...bo.history import Evaluation, EvaluationDatabase
    from ...space import SearchSpace
    from ..result import SearchResult
    from ..runner import SearchSpec

__all__ = [
    "SamplerCapabilities",
    "BaseSampler",
    "register_sampler",
    "sampler_by_name",
    "registered_samplers",
    "canonical_engine_name",
    "space_features",
    "unsupported_features",
]


@dataclass(frozen=True)
class SamplerCapabilities:
    """Feature matrix declared by every sampler.

    Attributes
    ----------
    floats / integers / categorical:
        Parameter types the sampler can propose natively.  ``integers``
        covers :class:`~repro.space.Integer` and
        :class:`~repro.space.Ordinal` (both are ordered numeric grids).
    multivariate:
        Proposals model cross-parameter structure (a joint surrogate or
        covariance) rather than treating axes independently.
    conditional:
        :class:`~repro.space.ConditionalSpace` masking is honored — the
        sampler never proposes a value for an inactive parameter.
    warm_start:
        Seeded history (phase-1 observations, resumed checkpoints) is
        consumed by the proposal rule rather than ignored.
    """

    floats: bool = True
    integers: bool = True
    categorical: bool = True
    multivariate: bool = False
    conditional: bool = True
    warm_start: bool = True


def space_features(space: "SearchSpace") -> dict[str, bool]:
    """Which capability axes ``space`` actually exercises."""
    feats = {
        "floats": False, "integers": False, "categorical": False,
        "conditional": isinstance(space, ConditionalSpace) and bool(space.conditions),
    }
    for p in space.parameters:
        if isinstance(p, Real):
            feats["floats"] = True
        elif isinstance(p, (Integer, Ordinal)):
            feats["integers"] = True
        elif isinstance(p, Categorical):
            feats["categorical"] = True
        elif isinstance(p, Constant):
            continue  # contributes no search dimension to support
    return feats


def unsupported_features(
    capabilities: SamplerCapabilities, space: "SearchSpace"
) -> list[str]:
    """Features ``space`` needs that ``capabilities`` does not declare."""
    feats = space_features(space)
    return sorted(
        name for name, needed in feats.items()
        if needed and not getattr(capabilities, name)
    )


class BaseSampler(ABC):
    """Interface every search engine is published through.

    Class attributes
    ----------------
    name:
        Canonical registry name (the CLI's ``--sampler`` value and
        ``SearchSpec.engine`` string).
    aliases:
        Alternative engine names resolving to this sampler (e.g. the
        historical ``"bo"`` for ``"gp-bo"``).
    capabilities:
        Declared :class:`SamplerCapabilities` feature matrix.
    """

    name: str = ""
    aliases: Sequence[str] = ()
    capabilities: SamplerCapabilities = SamplerCapabilities()

    #: ``SearchSpec.engine_options`` keys consumed by the generic driver
    #: rather than the sampler constructor.
    _DRIVER_OPTIONS = (
        "parallelism",
        "evaluation_timeout",
        "fallback",
    )

    # ------------------------------------------------------------------
    # The suggest API
    # ------------------------------------------------------------------
    def prepare(
        self, space: "SearchSpace", seed_seq: np.random.SeedSequence
    ) -> None:
        """One-time hook before a search run (and after a resume).

        ``seed_seq`` is a run-stable stream: it depends only on the
        member's seed, never on how far the search progressed, so state
        derived here (e.g. QMC scrambling) is identical across a
        kill-and-resume boundary.  Default: no-op.
        """

    @abstractmethod
    def suggest(
        self,
        history: Sequence["Evaluation"],
        space: "SearchSpace",
        rng: np.random.Generator,
    ) -> dict[str, Any]:
        """Propose the next configuration.

        ``history`` is the full evaluation record so far (failures
        included, in database order), ``rng`` a per-iteration generator
        derived from the evaluation index — a sampler that computes its
        proposal from ``(history, rng)`` alone is automatically
        bit-identical across kill-and-resume and parallel/sequential
        execution.  The returned configuration need not be feasible; the
        driver filters through :meth:`candidate_is_valid` and retries.
        """

    # ------------------------------------------------------------------
    # Shared candidate-validity filter (the deduplicated check)
    # ------------------------------------------------------------------
    @staticmethod
    def candidate_is_valid(
        space: "SearchSpace", config: Mapping[str, Any], breaker=None
    ) -> bool:
        """One shared definition of "this candidate may be evaluated".

        ``space.is_valid`` covers domains, constraints, and conditional
        masking; the optional circuit ``breaker`` vetoes quarantined
        cells.  Grid search, random search, and the generic driver all
        route through here instead of re-implementing the filter.
        """
        if not space.is_valid(config):
            return False
        return breaker is None or breaker.allows(config)

    # ------------------------------------------------------------------
    # Execution: default = the generic driver; adapters override
    # ------------------------------------------------------------------
    @classmethod
    def run_search(
        cls,
        spec: "SearchSpec",
        seed: np.random.SeedSequence,
        objective,
        database: "EvaluationDatabase | None",
        tracer=None,
    ) -> "SearchResult":
        """Execute one member search with this sampler.

        The default implementation splits ``spec.engine_options`` into
        driver options (:attr:`_DRIVER_OPTIONS`) and sampler constructor
        keywords, then drives :meth:`suggest` through
        :class:`~repro.search.samplers.driver.SamplerSearch`.
        """
        from .driver import SamplerSearch  # deferred: driver imports base

        opts = dict(spec.engine_options)
        driver_kwargs = {
            k: opts.pop(k) for k in cls._DRIVER_OPTIONS if k in opts
        }
        sampler = cls(**opts)
        search = SamplerSearch(
            spec.space,
            objective,
            sampler,
            max_evaluations=spec.budget(),
            random_state=seed,
            quarantine_threshold=spec.quarantine_threshold,
            quarantine_resolution=spec.quarantine_resolution,
            **({"database": database} if database is not None else {}),
            **({"tracer": tracer} if tracer is not None else {}),
            **driver_kwargs,
        )
        result = search.run()
        result.tuned_names = tuple(spec.space.names)
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, type[BaseSampler]] = {}
_ALIASES: dict[str, str] = {}


def register_sampler(cls: type[BaseSampler]) -> type[BaseSampler]:
    """Class decorator: publish a sampler under its name (and aliases)."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} needs a non-empty name")
    for key in (cls.name, *cls.aliases):
        existing = _ALIASES.get(key, key)
        if key in _REGISTRY or (existing in _REGISTRY and existing != cls.name):
            raise ValueError(f"sampler name {key!r} already registered")
    _REGISTRY[cls.name] = cls
    for alias in cls.aliases:
        _ALIASES[alias] = cls.name
    return cls


def canonical_engine_name(name: str) -> str:
    """Resolve an engine name or alias to its canonical registry name."""
    return _ALIASES.get(name, name)


def sampler_by_name(name: str) -> type[BaseSampler]:
    """Look up a sampler class by name or alias.

    Raises ``ValueError`` (matching the executor's historical contract)
    for unknown names.
    """
    cls = _REGISTRY.get(canonical_engine_name(name))
    if cls is None:
        raise ValueError(f"unknown engine {name!r}")
    return cls


def registered_samplers() -> dict[str, type[BaseSampler]]:
    """All registered samplers by canonical name (insertion order)."""
    return dict(_REGISTRY)
