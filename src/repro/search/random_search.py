"""Constrained random search baseline.

The paper's Table III baseline: embarrassingly parallel (all evaluations
can run concurrently), so its reported search time is
``sum(costs) / parallelism`` — the property that makes random search's
"Time" column tiny next to inherently sequential BO despite evaluating the
same number of configurations.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from ..bo.history import Evaluation, EvaluationDatabase, EvaluationStatus
from ..bo.optimizer import Objective
from ..space import SearchSpace
from .result import SearchResult

__all__ = ["RandomSearch"]


class RandomSearch:
    """Uniform random sampling over a constrained space.

    Parameters
    ----------
    space, objective:
        As in :class:`repro.bo.BayesianOptimizer`.
    max_evaluations:
        Number of configurations to evaluate (defaults to the paper's
        ``10 x num_parameters``).
    parallelism:
        Width of the simulated evaluation pool; search time is the length
        of the critical path under greedy list scheduling (equal to
        ``sum/parallelism`` when costs are uniform).  ``None`` means fully
        parallel (one slot per evaluation).
    """

    def __init__(
        self,
        space: SearchSpace,
        objective: Objective,
        *,
        max_evaluations: int | None = None,
        parallelism: int | None = None,
        evaluation_timeout: float | None = None,
        database: EvaluationDatabase | None = None,
        random_state: int | np.random.Generator | None = None,
    ):
        self.space = space
        self.objective = objective
        self.max_evaluations = (
            int(max_evaluations) if max_evaluations is not None else 10 * space.dimension
        )
        if self.max_evaluations < 1:
            raise ValueError("max_evaluations must be >= 1")
        if parallelism is not None and parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        self.parallelism = parallelism
        self.evaluation_timeout = evaluation_timeout
        self.database = database if database is not None else EvaluationDatabase()
        self.rng = (
            random_state
            if isinstance(random_state, np.random.Generator)
            else np.random.default_rng(random_state)
        )

    def _complete(self, config: Mapping[str, Any]) -> dict[str, Any]:
        complete = getattr(self.space, "complete", None)
        return complete(config) if complete is not None else dict(config)

    def _evaluate(self, config: Mapping[str, Any]) -> Evaluation:
        full = self._complete(config)
        try:
            out = self.objective(full)
        except Exception as exc:
            return Evaluation(
                config=full,
                objective=float("nan"),
                cost=0.0,
                status=EvaluationStatus.FAILED,
                meta={"error": repr(exc)},
            )
        if isinstance(out, tuple):
            value, meta = float(out[0]), dict(out[1])
        else:
            value, meta = float(out), {}
        if not np.isfinite(value):
            return Evaluation(
                config=full, objective=float("nan"), cost=0.0,
                status=EvaluationStatus.FAILED, meta=meta,
            )
        if self.evaluation_timeout is not None and value > self.evaluation_timeout:
            return Evaluation(
                config=full,
                objective=float("nan"),
                cost=self.evaluation_timeout,
                status=EvaluationStatus.TIMEOUT,
                meta=meta,
            )
        return Evaluation(config=full, objective=value, cost=max(value, 0.0), meta=meta)

    @staticmethod
    def _schedule_makespan(costs: np.ndarray, slots: int) -> float:
        """Greedy list-scheduling makespan of ``costs`` over ``slots``."""
        if costs.size == 0:
            return 0.0
        finish = np.zeros(slots)
        for c in costs:
            i = int(np.argmin(finish))
            finish[i] += c
        return float(np.max(finish))

    def run(self) -> SearchResult:
        """Evaluate ``max_evaluations`` random feasible configurations."""
        n_have = len(self.database)
        for _ in range(max(0, self.max_evaluations - n_have)):
            cfg = self.space.sample(self.rng)
            self.database.append(self._evaluate(cfg))
        costs = np.array([r.cost for r in self.database], dtype=float)
        slots = self.parallelism if self.parallelism is not None else max(1, costs.size)
        best = self.database.best()
        return SearchResult(
            name=self.space.name,
            engine="random",
            best_config=dict(best.config),
            best_objective=best.objective,
            search_time=self._schedule_makespan(costs, slots),
            n_evaluations=len(self.database),
            database=self.database,
        )
