"""Constrained random search baseline.

The paper's Table III baseline: embarrassingly parallel (all evaluations
can run concurrently), so its reported search time is
``sum(costs) / parallelism`` — the property that makes random search's
"Time" column tiny next to inherently sequential BO despite evaluating the
same number of configurations.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from ..bo.history import Evaluation, EvaluationDatabase
from ..bo.optimizer import Objective
from ..faults.breaker import CircuitBreaker, persist_breaker, restore_breaker
from ..faults.taxonomy import failure_kind_of
from ..space import SearchSpace
from .evaluate import evaluate_config, schedule_makespan
from .result import SearchResult
from .samplers.base import BaseSampler
from .tracing import emit_eval

__all__ = ["RandomSearch"]


class RandomSearch:
    """Uniform random sampling over a constrained space.

    Parameters
    ----------
    space, objective:
        As in :class:`repro.bo.BayesianOptimizer`.
    max_evaluations:
        Number of configurations to evaluate (defaults to the paper's
        ``10 x num_parameters``).
    parallelism:
        Width of the simulated evaluation pool; search time is the length
        of the critical path under greedy list scheduling (equal to
        ``sum/parallelism`` when costs are uniform).  ``None`` means fully
        parallel (one slot per evaluation).
    evaluation_timeout:
        *Simulated* kill switch: evaluations whose returned value exceeds
        this budget are recorded TIMEOUT (``meta["timeout_kind"] =
        "simulated"``).  A genuinely hanging objective is the watchdog's
        job (wrap it in :class:`repro.faults.WatchdogObjective`, as the
        campaign executor does for ``SearchSpec.wall_timeout``); the
        watchdog's :class:`~repro.faults.EvaluationTimeoutError` is
        recorded here as a ``"wallclock"`` TIMEOUT.  See
        :mod:`repro.search.result` for the full semantics.
    quarantine_threshold / quarantine_resolution:
        Circuit breaker over space cells (see
        :class:`repro.faults.CircuitBreaker`); after the threshold of
        PERMANENT/NUMERIC failures in one cell, samples landing there
        are discarded and redrawn.  ``None`` disables.
    tracer:
        Optional :class:`repro.telemetry.Tracer` (pure observer —
        ``evaluation`` spans plus one ``eval`` event per database record,
        replayed records included).  ``None`` (default) disables.
    """

    def __init__(
        self,
        space: SearchSpace,
        objective: Objective,
        *,
        max_evaluations: int | None = None,
        parallelism: int | None = None,
        evaluation_timeout: float | None = None,
        quarantine_threshold: int | None = None,
        quarantine_resolution: int = 4,
        database: EvaluationDatabase | None = None,
        tracer=None,
        random_state: int | np.random.Generator | None = None,
    ):
        self.space = space
        self.objective = objective
        self.max_evaluations = (
            int(max_evaluations) if max_evaluations is not None else 10 * space.dimension
        )
        if self.max_evaluations < 1:
            raise ValueError("max_evaluations must be >= 1")
        if parallelism is not None and parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        self.parallelism = parallelism
        self.evaluation_timeout = evaluation_timeout
        self.breaker = (
            CircuitBreaker(
                space,
                threshold=quarantine_threshold,
                resolution=quarantine_resolution,
            )
            if quarantine_threshold is not None
            else None
        )
        self.quarantine_skips = 0
        self.database = database if database is not None else EvaluationDatabase()
        self.tracer = tracer
        self.rng = (
            random_state
            if isinstance(random_state, np.random.Generator)
            else np.random.default_rng(random_state)
        )

    def _complete(self, config: Mapping[str, Any]) -> dict[str, Any]:
        complete = getattr(self.space, "complete", None)
        return complete(config) if complete is not None else dict(config)

    def _evaluate(self, config: Mapping[str, Any]) -> Evaluation:
        return evaluate_config(
            self.objective,
            self._complete(config),
            evaluation_timeout=self.evaluation_timeout,
        )

    def _next_config(self) -> dict[str, Any] | None:
        """Draw the next sample, discarding quarantined ones.

        Validity goes through the engines' shared
        :meth:`~repro.search.samplers.base.BaseSampler.candidate_is_valid`
        filter (``space.sample`` already guarantees the constraint half,
        so rejections here are quarantine hits).  Consumes exactly one
        RNG draw while no cell has tripped, so a breaker that never fires
        leaves the sample stream untouched.  ``None`` once the reachable
        space appears fully quarantined.
        """
        for _ in range(1 + 64):
            cfg = self.space.sample(self.rng)
            if BaseSampler.candidate_is_valid(self.space, cfg, self.breaker):
                return cfg
            self.quarantine_skips += 1
        return None

    def run(self) -> SearchResult:
        """Evaluate ``max_evaluations`` random feasible configurations."""
        best_seen: float | None = None
        if self.tracer is not None:
            # Re-emit eval events for replayed records (resume support):
            # the sink dedups by database index, so the persisted stream
            # matches an uninterrupted run byte-for-byte.
            for i, rec in enumerate(self.database):
                best_seen = emit_eval(self.tracer, i, rec, best_seen)
        if self.breaker is not None:
            # Resume support: restore the persisted sidecar when one
            # exists (exact pre-crash state, partial counts included);
            # otherwise replay checkpointed failure kinds so the
            # quarantine state survives a crash either way.
            if not restore_breaker(self.breaker, self.database.path):
                for rec in self.database:
                    if not rec.ok:
                        self.breaker.record(rec.config, failure_kind_of(rec))
        n_have = len(self.database)
        # Resume support: each checkpointed record consumed exactly one
        # sample draw (see ``_next_config``), so burning ``n_have`` draws
        # realigns the stream and the tail comes out bit-identical to an
        # uninterrupted run.  (If the breaker tripped *before* the crash,
        # its extra redraws are not replayed — quarantine resume keeps
        # the best-effort semantics it always had.)
        for _ in range(n_have):
            self.space.sample(self.rng)
        for _ in range(max(0, self.max_evaluations - n_have)):
            cfg = self._next_config()
            if cfg is None:
                break
            if self.tracer is None:
                rec = self._evaluate(cfg)
            else:
                with self.tracer.span("evaluation") as sp:
                    rec = self._evaluate(cfg)
                    sp.attrs.update(status=rec.status, cost=rec.cost)
            if self.breaker is not None and not rec.ok:
                before = self.breaker.total_counted
                self.breaker.record(rec.config, failure_kind_of(rec))
                if self.breaker.total_counted != before:
                    persist_breaker(self.breaker, self.database.path)
            self.database.append(rec)
            if self.tracer is not None:
                best_seen = emit_eval(
                    self.tracer, len(self.database) - 1, rec, best_seen
                )
        costs = np.array([r.cost for r in self.database], dtype=float)
        slots = self.parallelism if self.parallelism is not None else max(1, costs.size)
        best = self.database.best()
        meta: dict[str, Any] = {}
        if self.breaker is not None and self.breaker.n_tripped:
            meta["quarantined"] = self.breaker.summary()
        if self.quarantine_skips:
            meta["quarantine_skipped"] = self.quarantine_skips
        return SearchResult(
            name=self.space.name,
            engine="random",
            best_config=dict(best.config),
            best_objective=best.objective,
            search_time=schedule_makespan(costs, slots),
            n_evaluations=len(self.database),
            database=self.database,
            meta=meta,
        )
