"""Persistent cross-job evaluation store.

Jobs on the same search space keep paying for configurations that a
previous (or concurrently running) job already measured.  The
:class:`EvaluationStore` is the service-wide remedy: an append-only
JSONL file of finished evaluations keyed by ``(space fingerprint,
canonical_key(config))``, shared by every job the supervisor runs.  Each
job's :class:`~repro.search.cache.MemoizingObjective` is pre-seeded from
the store and writes fresh measurements back through it, so a second job
on the same space serves its evaluations from disk instead of re-running
the objective.

Design constraints, in order:

* **Determinism first.**  A store hit must reproduce exactly the record
  a fresh evaluation would have produced.  That is only true for
  deterministic objectives, so every record carries *provenance* —
  ``{"noise": ..., "seed": ...}`` — and :meth:`EvaluationStore.lookup`
  serves a record only when the stored and requested provenance are
  compatible: both noise-free, or an exact ``(noise, seed)`` match.
  Callers with noisy objectives simply never share across seeds.
* **Concurrent writers.**  Several worker processes append to one file.
  Every record is written as a single ``os.write`` on an ``O_APPEND``
  descriptor, so lines from concurrent writers interleave whole —
  never torn mid-line — and readers tolerate (and re-poll past) an
  incomplete tail.  Torn tails from a hard crash are repaired with the
  shared :func:`repro.bo.history.repair_torn_tail` on writer open.
* **O(1) appends, incremental reads.**  Appending never rewrites the
  file; :meth:`refresh` reads only bytes past the last consumed offset,
  so polling the store on a cache miss is cheap even when it is large.

The store object is picklable (handles are dropped and lazily reopened)
so it can ride a job spec into a forked worker.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

import numpy as np

from ..bo.history import repair_torn_tail
from ..log import get_logger
from ..space import SearchSpace
from ..space.serialize import space_to_dict
from .cache import canonical_key

__all__ = ["EvaluationStore", "StoredEvaluation", "space_fingerprint"]

logger = get_logger("search")

_HEADER = "repro-evaluation-store"
_VERSION = 1


def _jsonable(value: Any) -> Any:
    """Coerce a meta/provenance value into something JSON can round-trip."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def space_fingerprint(space: SearchSpace, extra: Mapping[str, Any] | None = None) -> str:
    """Stable fingerprint of a search space (plus objective context).

    Two searches may share one store entry only if their spaces serialize
    identically *and* their pinned assignments and ``extra`` context
    match.  ``extra`` is where callers put everything the space dict
    cannot see — which application/case the objective evaluates, its
    noise scale — because a store key must identify the *function being
    measured*, not just the shape of its domain.

    ``PinnedSubspace`` pins are folded in explicitly:
    :func:`~repro.space.serialize.space_to_dict` serializes only the kept
    parameters, but the objective evaluates the *completed* config, so
    two subspaces with identical kept parameters and different pins
    measure different functions.

    Opaque (callable) constraints are skipped — they only gate which
    configurations get proposed, never what a configuration evaluates to,
    so they cannot create value collisions.
    """
    payload: dict[str, Any] = {
        "space": space_to_dict(space, skip_opaque_constraints=True),
    }
    pinned = getattr(space, "pinned", None)
    if pinned:
        payload["pinned"] = {
            str(k): _jsonable(pinned[k]) for k in sorted(pinned)
        }
    if extra:
        payload["extra"] = {str(k): _jsonable(extra[k]) for k in sorted(extra)}
    import hashlib

    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclass(frozen=True)
class StoredEvaluation:
    """One finished measurement in the store."""

    space: str  #: space fingerprint (see :func:`space_fingerprint`)
    key: str  #: ``canonical_key(config)`` of the evaluated configuration
    value: float
    meta: dict[str, Any] = field(default_factory=dict)
    provenance: dict[str, Any] = field(default_factory=dict)

    def to_line(self) -> str:
        return json.dumps(
            {
                "space": self.space,
                "key": self.key,
                "value": self.value,
                "meta": _jsonable(self.meta),
                "provenance": _jsonable(self.provenance),
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StoredEvaluation":
        return cls(
            space=str(data["space"]),
            key=str(data["key"]),
            value=float(data["value"]),
            meta=dict(data.get("meta") or {}),
            provenance=dict(data.get("provenance") or {}),
        )


def _provenance_compatible(
    stored: Mapping[str, Any], requested: Mapping[str, Any] | None
) -> bool:
    """May ``stored`` be served to a caller with ``requested`` provenance?

    Noise-free measurements are universal: any noise-free caller may
    reuse them regardless of seed (the objective is a pure function of
    the configuration).  Noisy measurements are draws from a
    seed-specific stream, so they are served only on an exact
    ``(noise, seed)`` match — and never to a noise-free caller.
    """
    s_noise = float(stored.get("noise", 0.0) or 0.0)
    r_noise = float((requested or {}).get("noise", 0.0) or 0.0)
    if s_noise == 0.0 and r_noise == 0.0:
        return True
    if s_noise != r_noise:
        return False
    return stored.get("seed") == (requested or {}).get("seed")


class EvaluationStore:
    """Append-only JSONL store of evaluations shared across jobs.

    Parameters
    ----------
    path:
        The JSONL file.  Created (with a header line) on first append;
        a missing file is an empty store.
    fsync:
        Fsync after every append (default).  Matches the checkpoint
        databases' durability: a measurement that was paid for survives
        a crash.

    Concurrency contract: any number of processes may hold the same
    store open and interleave appends; each line is one atomic
    ``os.write`` on an ``O_APPEND`` descriptor.  Readers only consume
    newline-terminated lines and re-poll the tail on the next
    :meth:`refresh`, so a half-visible line is never mis-parsed.
    """

    def __init__(self, path: str | os.PathLike, *, fsync: bool = True):
        self.path = os.fspath(path)
        self.fsync = bool(fsync)
        self._lock = threading.Lock()
        self._index: dict[tuple[str, str], StoredEvaluation] = {}
        self._offset = 0
        self._fd: int | None = None
        self._repaired = False
        self.refresh()

    # -- reading -------------------------------------------------------
    def refresh(self) -> int:
        """Consume lines appended since the last read; return how many.

        Incomplete trailing lines (a concurrent writer mid-append, or a
        torn tail after a crash) are left unconsumed — the next refresh
        retries from the same offset.
        """
        with self._lock:
            return self._refresh_locked()

    def _refresh_locked(self) -> int:
        try:
            with open(self.path, "rb") as f:
                f.seek(self._offset)
                data = f.read()
        except OSError:
            return 0
        if not data:
            return 0
        consumed = data.rfind(b"\n") + 1
        if consumed == 0:  # only an incomplete tail so far
            return 0
        added = 0
        for raw in data[:consumed].splitlines():
            raw = raw.strip()
            if not raw:
                continue
            try:
                record = json.loads(raw)
            except ValueError:
                logger.warning(
                    "evaluation store %s: skipping malformed line", self.path
                )
                continue
            if not isinstance(record, dict):
                continue
            if record.get("format") == _HEADER:
                continue
            try:
                entry = StoredEvaluation.from_dict(record)
            except (KeyError, TypeError, ValueError):
                logger.warning(
                    "evaluation store %s: skipping malformed record", self.path
                )
                continue
            # First write wins: for deterministic provenance concurrent
            # writers store identical values, so the choice is cosmetic;
            # keeping the earliest makes re-reads idempotent.
            if self._index.setdefault((entry.space, entry.key), entry) is entry:
                added += 1
        self._offset += consumed
        return added

    def lookup(
        self,
        space: str,
        key: str,
        *,
        provenance: Mapping[str, Any] | None = None,
    ) -> StoredEvaluation | None:
        """The stored evaluation for ``(space, key)``, if servable.

        Returns ``None`` when the pair is unknown *or* when the stored
        provenance is incompatible with ``provenance`` (see module
        docstring) — an incompatible record must look like a miss, never
        like a wrong answer.
        """
        with self._lock:
            entry = self._index.get((space, key))
        if entry is None:
            return None
        if not _provenance_compatible(entry.provenance, provenance):
            return None
        return entry

    def lookup_config(
        self,
        space: str,
        config: Mapping[str, Any],
        *,
        provenance: Mapping[str, Any] | None = None,
    ) -> StoredEvaluation | None:
        """Convenience: :meth:`lookup` keyed by a raw configuration."""
        return self.lookup(space, canonical_key(config), provenance=provenance)

    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    def __iter__(self) -> Iterator[StoredEvaluation]:
        with self._lock:
            return iter(list(self._index.values()))

    def entries(self, space: str) -> list[StoredEvaluation]:
        """All stored evaluations for one space fingerprint."""
        with self._lock:
            return [e for (s, _), e in self._index.items() if s == space]

    # -- writing -------------------------------------------------------
    def record(
        self,
        space: str,
        key: str,
        value: float,
        meta: Mapping[str, Any] | None = None,
        *,
        provenance: Mapping[str, Any] | None = None,
    ) -> StoredEvaluation | None:
        """Append one finished measurement (idempotent per ``(space, key)``).

        Non-finite values are refused — engines classify them as failed
        evaluations, and serving one from the store would turn a
        transient numeric blow-up into a permanent wrong answer.
        """
        value = float(value)
        if not np.isfinite(value):
            return None
        entry = StoredEvaluation(
            space=space,
            key=key,
            value=value,
            meta=dict(meta or {}),
            provenance=dict(provenance or {}),
        )
        with self._lock:
            if (space, key) in self._index:
                return self._index[(space, key)]
            self._ensure_writer_locked()
            self._append_locked(entry.to_line())
            self._index[(space, key)] = entry
        return entry

    def _ensure_writer_locked(self) -> None:
        if self._fd is not None:
            return
        if not self._repaired and os.path.exists(self.path):
            # A single-write O_APPEND line only tears on a hard crash
            # (power loss / full disk); repair once before we append so
            # our first line starts at a line boundary.
            try:
                repair_torn_tail(self.path)
            except OSError:  # pragma: no cover - repair is best-effort
                pass
            self._repaired = True
        fresh = not os.path.exists(self.path)
        self._fd = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        if fresh:
            self._append_locked(
                json.dumps(
                    {"format": _HEADER, "version": _VERSION},
                    sort_keys=True,
                    separators=(",", ":"),
                )
            )

    def _append_locked(self, line: str) -> None:
        assert self._fd is not None
        os.write(self._fd, (line + "\n").encode())
        if self.fsync:
            os.fsync(self._fd)

    def close(self) -> None:
        with self._lock:
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None

    # -- pickling (store objects ride job specs into workers) ----------
    def __getstate__(self) -> dict[str, Any]:
        return {"path": self.path, "fsync": self.fsync}

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__init__(state["path"], fsync=state.get("fsync", True))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EvaluationStore({self.path!r}, entries={len(self)})"
