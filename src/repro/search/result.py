"""Result containers shared by all search engines.

:class:`SearchResult` normalizes the outcome of a single search (BO,
random, or grid) so the campaign runner and the benchmark harness can
compare engines uniformly.  :class:`CampaignResult` aggregates a *set* of
searches run under one strategy (e.g. the paper's "G1, G2, G3+G4") with the
paper's cost accounting: independent searches run in parallel, so campaign
wall-clock is the *maximum* search time, while total core-cost is the sum.

Timeout semantics
-----------------
Two distinct conditions produce TIMEOUT evaluation records, and they are
distinguished by ``Evaluation.meta["timeout_kind"]``:

``"simulated"``
    The objective *returned* a simulated runtime above the engine's
    ``evaluation_timeout`` budget — the paper's 15-minute kill switch
    applied to the value on the simulated-cost ledger.  The objective
    itself completed normally; the cost charged is the cap.
``"wallclock"``
    The evaluation exceeded a *real* wall-clock deadline: the
    :class:`repro.faults.WatchdogObjective` fired (the objective hung or
    genuinely ran too long) and the record additionally carries
    ``meta["failure_kind"] = "timeout"`` for the failure taxonomy.

Both are excluded from surrogate training and neither is retried.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..bo.history import EvaluationDatabase

__all__ = ["SearchResult", "CampaignResult"]


@dataclass
class SearchResult:
    """Uniform single-search outcome.

    Attributes
    ----------
    name:
        Label of the (sub)search, e.g. ``"Group 3+4"``.
    engine:
        ``"bo"``, ``"random"``, or ``"grid"``.
    best_config:
        Best *full* configuration found (pinned values merged in).
    best_objective:
        Its objective value.
    search_time:
        Sequential wall-clock of this search (evaluation cost + modeling
        overhead for BO; for random search, see
        :class:`repro.search.RandomSearch` for the parallel discount).
    n_evaluations:
        Number of objective evaluations.
    database:
        Full evaluation history.
    tuned_names:
        The parameters this search actually tuned (``None`` = all keys of
        ``best_config``).  Campaign merging only takes tuned values so a
        subsearch's pinned defaults never overwrite another subsearch's
        tuned result.
    """

    name: str
    engine: str
    best_config: dict[str, Any]
    best_objective: float
    search_time: float
    n_evaluations: int
    database: EvaluationDatabase | None = None
    tuned_names: tuple[str, ...] | None = None
    measured_time: float = 0.0
    """Real wall-clock seconds the search process itself consumed (the
    modeling/engine overhead measured on this machine — what the paper's
    Table III "Time" column reports for the synthetic functions, where
    objective evaluations are essentially free)."""
    meta: dict[str, Any] = field(default_factory=dict)
    """Robustness annotations: ``"quarantined"`` (circuit-breaker summary
    when any region tripped), ``"failure_counts"`` (evaluations per
    :class:`repro.faults.FailureKind`), ``"worker_lost"`` / ``"recovery"``
    (the member's pool worker died and the executor resubmitted or
    re-ran it), ``"quarantine_skipped"`` (samples suppressed because
    their region was quarantined)."""

    @property
    def tuned_config(self) -> dict[str, Any]:
        """Only the parameters this search tuned."""
        if self.tuned_names is None:
            return dict(self.best_config)
        return {k: self.best_config[k] for k in self.tuned_names}

    @property
    def trajectory(self) -> np.ndarray:
        if self.database is None:
            return np.array([])
        return self.database.best_so_far()


@dataclass
class CampaignResult:
    """Outcome of a *strategy*: a set of searches covering all routines.

    ``combined_config`` merges each search's best configuration; when two
    searches tune the same parameter (which the planner avoids but users
    may construct), the value from the search listed later wins and the
    collision is recorded in ``overlaps``.
    """

    strategy: str
    searches: list[SearchResult] = field(default_factory=list)
    measured_campaign_seconds: float = 0.0
    """Real elapsed wall-clock of the whole campaign when the executor
    actually ran members concurrently (0.0 when members ran sequentially
    and the parallel wall-clock is simulated as the max over members)."""
    executed_parallel: bool = False
    """Whether the members genuinely ran concurrently (process pool)."""

    @property
    def combined_config(self) -> dict[str, Any]:
        # Pinned defaults first (so every parameter gets a value), then
        # tuned values override — later searches win on (rare) collisions.
        merged: dict[str, Any] = {}
        for s in self.searches:
            merged.update(s.best_config)
        for s in self.searches:
            merged.update(s.tuned_config)
        return merged

    @property
    def overlaps(self) -> set[str]:
        seen: set[str] = set()
        clashes: set[str] = set()
        for s in self.searches:
            for k in s.tuned_config:
                if k in seen:
                    clashes.add(k)
                seen.add(k)
        return clashes

    @property
    def wall_time(self) -> float:
        """Parallel wall-clock: independent searches run concurrently."""
        return max((s.search_time for s in self.searches), default=0.0)

    @property
    def total_time(self) -> float:
        """Aggregate core-time across all searches."""
        return float(sum(s.search_time for s in self.searches))

    @property
    def measured_wall_time(self) -> float:
        """Real (machine-measured) parallel wall-clock of the strategy.

        When the executor ran members concurrently this is the campaign's
        true elapsed time (including pool overhead); otherwise it falls
        back to the simulated-parallel max over member times.
        """
        if self.measured_campaign_seconds > 0.0:
            return self.measured_campaign_seconds
        return max((s.measured_time for s in self.searches), default=0.0)

    @property
    def measured_total_time(self) -> float:
        """Real (machine-measured) aggregate search-process time."""
        return float(sum(s.measured_time for s in self.searches))

    @property
    def n_evaluations(self) -> int:
        return sum(s.n_evaluations for s in self.searches)

    def objective_sum(self) -> float:
        """Sum of per-search best objectives.

        For additive objectives (the synthetic functions decompose into
        per-group terms) this is the natural figure of merit of a
        decomposed strategy before re-evaluating the merged configuration.
        """
        return float(sum(s.best_objective for s in self.searches))

    def evaluate_combined(self, objective) -> float:
        """Score the merged configuration on a full-application objective."""
        out = objective(self.combined_config)
        return float(out[0] if isinstance(out, tuple) else out)
