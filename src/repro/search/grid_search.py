"""Exhaustive / strided grid search baseline.

Grid search is the second classic baseline named in the paper's related
work ("random search, along with other approaches such as grid search, has
been demonstrated to be not as accurate as Bayesian optimization ... in
massive search spaces").  For the 20-dimensional spaces of the paper an
exhaustive grid is astronomically infeasible — the point this engine makes
quantitatively via :meth:`GridSearch.grid_size` — so a ``max_evaluations``
budget samples a stratified subset of grid points instead.
"""

from __future__ import annotations

import itertools
import math
from typing import Any, Iterator, Mapping

import numpy as np

from ..bo.history import Evaluation, EvaluationDatabase
from ..bo.optimizer import Objective
from ..space import Real, SearchSpace
from .evaluate import evaluate_config, schedule_makespan
from .result import SearchResult
from .samplers.base import BaseSampler
from .tracing import emit_eval

__all__ = ["GridSearch"]


class GridSearch:
    """Grid enumeration with an evaluation budget.

    Parameters
    ----------
    points_per_axis:
        Grid resolution for continuous (``Real``) axes.
    max_points_per_discrete_axis:
        Discrete axes use their full native grids up to this bound, above
        which they are subsampled to quantiles (an Integer axis of
        cardinality 1024 would otherwise explode the grid).
    max_evaluations:
        When the full grid exceeds this budget, a uniformly strided subset
        of the enumeration order is evaluated (deterministic, seedless).
        ``None`` evaluates the whole grid — guarded by ``hard_limit``.
    hard_limit:
        Absolute safety cap on enumerations to protect against accidentally
        exhaustive runs on huge spaces.
    database:
        Optional (checkpointed) :class:`~repro.bo.EvaluationDatabase`.
        Records already present are treated as the first feasible grid
        points *replayed*: the enumeration (deterministic and seedless,
        so stable across a crash) skips that many feasible points and
        continues — kill-and-resume is bit-identical to an uninterrupted
        run.  ``None`` (default) starts a fresh in-memory database.
    tracer:
        Optional :class:`repro.telemetry.Tracer` (pure observer —
        ``evaluation`` spans plus one ``eval`` event per record,
        replayed records included).  ``None`` (default) disables.
    """

    def __init__(
        self,
        space: SearchSpace,
        objective: Objective,
        *,
        points_per_axis: int = 4,
        max_points_per_discrete_axis: int = 32,
        max_evaluations: int | None = None,
        parallelism: int | None = None,
        hard_limit: int = 1_000_000,
        database: EvaluationDatabase | None = None,
        tracer=None,
    ):
        if points_per_axis < 2:
            raise ValueError("points_per_axis must be >= 2")
        if max_points_per_discrete_axis < 2:
            raise ValueError("max_points_per_discrete_axis must be >= 2")
        self.space = space
        self.objective = objective
        self.points_per_axis = int(points_per_axis)
        self.max_points_per_discrete_axis = int(max_points_per_discrete_axis)
        self.max_evaluations = max_evaluations
        self.parallelism = parallelism
        self.hard_limit = int(hard_limit)
        self.tracer = tracer
        self.database = database if database is not None else EvaluationDatabase()

    # ------------------------------------------------------------------
    def _axes(self) -> list[list[Any]]:
        axes = []
        for p in self.space.parameters:
            if isinstance(p, Real):
                axes.append(p.grid(self.points_per_axis))
            else:
                axes.append(p.grid(self.max_points_per_discrete_axis))
        return axes

    def grid_size(self) -> int:
        """Number of raw grid points (before constraint filtering)."""
        return math.prod(len(a) for a in self._axes())

    def _iter_grid(self) -> Iterator[dict[str, Any]]:
        names = self.space.names
        total = self.grid_size()
        budget = self.max_evaluations or total
        stride = max(1, total // budget)
        for i, combo in enumerate(itertools.product(*self._axes())):
            if i % stride:
                continue
            yield dict(zip(names, combo))

    def _complete(self, config: Mapping[str, Any]) -> dict[str, Any]:
        complete = getattr(self.space, "complete", None)
        return complete(config) if complete is not None else dict(config)

    def _evaluate_one(self, full: dict[str, Any]) -> Evaluation:
        """Evaluate one completed configuration with failure capture."""
        return evaluate_config(self.objective, full)

    def run(self) -> SearchResult:
        """Evaluate the (strided) grid, skipping infeasible points."""
        if self.grid_size() > self.hard_limit and self.max_evaluations is None:
            raise RuntimeError(
                f"grid of {self.grid_size()} points exceeds hard_limit="
                f"{self.hard_limit}; set max_evaluations"
            )
        best_seen: float | None = None
        # Resume support: records already in a checkpointed database are
        # the first feasible enumeration points (the enumeration order is
        # deterministic and seedless, hence stable across a crash) — skip
        # that many and re-emit their eval events for trace byte equality.
        n_replayed = len(self.database)
        if self.tracer is not None:
            for i, rec in enumerate(self.database):
                best_seen = emit_eval(self.tracer, i, rec, best_seen)
        n_seen = 0
        budget = self.max_evaluations or self.hard_limit
        for cfg in self._iter_grid():
            if len(self.database) >= budget:
                break
            if not BaseSampler.candidate_is_valid(self.space, cfg):
                continue
            n_seen += 1
            if n_seen <= n_replayed:
                continue
            full = self._complete(cfg)
            if self.tracer is None:
                rec = self._evaluate_one(full)
            else:
                with self.tracer.span("evaluation") as sp:
                    rec = self._evaluate_one(full)
                    sp.attrs.update(status=rec.status, cost=rec.cost)
            self.database.append(rec)
            if self.tracer is not None:
                best_seen = emit_eval(
                    self.tracer, len(self.database) - 1, rec, best_seen
                )
        if not self.database.ok_records():
            raise RuntimeError(f"grid search found no feasible point in {self.space.name!r}")
        costs = np.array([r.cost for r in self.database], dtype=float)
        slots = self.parallelism if self.parallelism is not None else max(1, costs.size)
        best = self.database.best()
        return SearchResult(
            name=self.space.name,
            engine="grid",
            best_config=dict(best.config),
            best_objective=best.objective,
            search_time=schedule_makespan(costs, slots),
            n_evaluations=len(self.database),
            database=self.database,
        )
