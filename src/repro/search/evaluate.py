"""Shared objective-evaluation and cost-accounting helpers.

Random search, grid search, and the generic sampler driver all need the
same three pieces of machinery around a raw objective call:

* :func:`evaluate_config` — one evaluation with the full failure-capture
  protocol (exception classification, wallclock- vs simulated-timeout
  semantics, non-finite capture) producing an
  :class:`~repro.bo.history.Evaluation` record;
* :func:`schedule_makespan` — the greedy list-scheduling makespan that
  turns per-evaluation costs into the paper's parallel "Time" column;

Before this module each engine carried its own near-identical copy; the
semantics are pinned by the shared engine tests so they can never drift
apart again.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from ..bo.history import Evaluation, EvaluationStatus
from ..faults.taxonomy import FAILURE_KIND_KEY, FailureKind, classify_exception

__all__ = ["evaluate_config", "schedule_makespan"]


def evaluate_config(
    objective,
    full: Mapping[str, Any],
    *,
    evaluation_timeout: float | None = None,
) -> Evaluation:
    """Evaluate one completed configuration with full failure capture.

    * A raised exception is classified through the failure taxonomy; a
      TIMEOUT classification (the watchdog's
      :class:`~repro.faults.EvaluationTimeoutError`) is recorded as a
      ``"wallclock"`` timeout costing the simulated budget.
    * A non-finite return value is recorded FAILED/NUMERIC.
    * A finite value above ``evaluation_timeout`` is a ``"simulated"``
      timeout: the objective completed, but its reported runtime blew the
      simulated kill-switch budget.  ``None`` disables this check.
    """
    full = dict(full)
    try:
        out = objective(full)
    except Exception as exc:
        kind = classify_exception(exc)
        meta: dict[str, Any] = {
            "error": repr(exc),
            FAILURE_KIND_KEY: kind.value,
        }
        if kind is FailureKind.TIMEOUT:
            # Real wall-clock deadline (watchdog) — distinct from the
            # simulated value cap below; see search/result.py.
            meta["timeout_kind"] = "wallclock"
        return Evaluation(
            config=full,
            objective=float("nan"),
            cost=evaluation_timeout or 0.0
            if kind is FailureKind.TIMEOUT
            else 0.0,
            status=EvaluationStatus.TIMEOUT
            if kind is FailureKind.TIMEOUT
            else EvaluationStatus.FAILED,
            meta=meta,
        )
    if isinstance(out, tuple):
        value, meta = float(out[0]), dict(out[1])
    else:
        value, meta = float(out), {}
    if not np.isfinite(value):
        return Evaluation(
            config=full, objective=float("nan"), cost=0.0,
            status=EvaluationStatus.FAILED,
            meta={**meta, FAILURE_KIND_KEY: FailureKind.NUMERIC.value},
        )
    if evaluation_timeout is not None and value > evaluation_timeout:
        # SIMULATED timeout: the *returned* runtime exceeds the budget
        # (the objective itself completed normally).
        return Evaluation(
            config=full,
            objective=float("nan"),
            cost=evaluation_timeout,
            status=EvaluationStatus.TIMEOUT,
            meta={
                **meta,
                FAILURE_KIND_KEY: FailureKind.TIMEOUT.value,
                "timeout_kind": "simulated",
            },
        )
    return Evaluation(config=full, objective=value, cost=max(value, 0.0), meta=meta)


def schedule_makespan(costs: np.ndarray, slots: int) -> float:
    """Greedy list-scheduling makespan of ``costs`` over ``slots``.

    Equal to ``sum(costs) / slots`` for uniform costs — the accounting
    behind the paper's tiny random-search "Time" column (embarrassingly
    parallel evaluations) versus inherently sequential BO.
    """
    if costs.size == 0:
        return 0.0
    finish = np.zeros(max(1, int(slots)))
    for c in costs:
        finish[int(np.argmin(finish))] += c
    return float(np.max(finish))
