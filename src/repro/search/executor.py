"""Fault-tolerant parallel campaign executor.

The paper's cost model assumes the member searches of a strategy run *in
parallel* (campaign wall-clock = max over members) and leans on GPTune's
crash-recovery support for long campaigns.  This module makes both real:

* **Parallel execution** — member searches run concurrently in a
  :class:`concurrent.futures.ProcessPoolExecutor`.  Specs whose
  objectives cannot cross a process boundary (closures, bound methods of
  unpicklable objects) are detected up front and the campaign falls back
  to a deterministic in-process loop; either way every member is driven
  by the same :func:`run_search_spec` with the same per-spec seed, so the
  parallel and sequential paths produce bit-identical results.
* **Checkpoint / resume** — with a ``checkpoint_dir`` every member
  persists its :class:`~repro.bo.history.EvaluationDatabase` to an
  append-only JSONL file (O(1) I/O per evaluation) named after the
  member's stable key.  Re-running the campaign resumes each member from
  its checkpoint: completed evaluations are replayed, not re-run, and the
  BO engine reconstructs its surrogate state so the continuation matches
  an uninterrupted run.
* **Retry with exponential backoff** — objectives that raise transient
  errors are retried per :class:`SearchSpec` policy before being recorded
  as FAILED.
* **Memoization** — an optional per-member evaluation cache keyed on the
  canonicalized configuration dict; repeated configurations (common after
  a resume and in grid/random engines) are served from the cache.

Per-spec seeds are derived from :class:`numpy.random.SeedSequence` keyed
by the member's *stable key* (space name + occurrence index among specs
of the same name), never by campaign position — adding, removing, or
permuting members does not reseed the others.
"""

from __future__ import annotations

import os
import pickle
import re
import time
import zlib
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..bo.history import EvaluationDatabase
from ..faults.injection import FaultyObjective
from ..faults.taxonomy import FailureKind
from ..faults.watchdog import WatchdogObjective
from ..log import get_logger
from ..telemetry.core import Telemetry
from ..telemetry.metrics import MetricsRegistry
from ..telemetry.sinks import MemorySink
from .cache import MemoizingObjective, RetryingObjective
from .result import CampaignResult, SearchResult
from .samplers.base import sampler_by_name
from .scalarize import ScalarizedObjective

if TYPE_CHECKING:  # avoid a circular import with runner.py
    from .runner import SearchSpec

__all__ = [
    "CampaignExecutor",
    "run_search_spec",
    "run_measure_tasks",
    "member_keys",
    "member_scope",
    "spec_seed_sequences",
]

logger = get_logger("search")


def member_keys(specs: Sequence["SearchSpec"]) -> list[tuple[int, int]]:
    """Stable (name-hash, occurrence) key per member.

    The key depends only on the member's space name and its occurrence
    ordinal among same-named members — not on its position in the
    campaign — so permuting or dropping other members leaves a member's
    key (and therefore its seed and checkpoint file) unchanged.
    """
    counts: dict[str, int] = {}
    keys = []
    for spec in specs:
        name = spec.space.name
        k = counts.get(name, 0)
        counts[name] = k + 1
        keys.append((zlib.crc32(name.encode("utf-8")), k))
    return keys


def spec_seed_sequences(
    specs: Sequence["SearchSpec"],
    random_state: int | np.random.Generator | None = None,
) -> list[np.random.SeedSequence]:
    """Derive one independent SeedSequence per member from a campaign seed.

    Seeds are keyed by :func:`member_keys`, fixing the order-dependence
    bug where positionally drawn child seeds meant that reordering or
    removing one spec reseeded every other member.
    """
    if isinstance(random_state, np.random.Generator):
        entropy = int(random_state.integers(0, 2**63))
    elif random_state is None:
        entropy = int(np.random.SeedSequence().entropy)
    else:
        entropy = int(random_state)
    return [
        np.random.SeedSequence(entropy, spawn_key=key)
        for key in member_keys(specs)
    ]


def _slug(name: str) -> str:
    """Filesystem-safe version of a member name."""
    return re.sub(r"[^A-Za-z0-9._-]+", "_", name).strip("_") or "member"


def checkpoint_path(
    checkpoint_dir: str | os.PathLike, spec: "SearchSpec", key: tuple[int, int]
) -> str:
    """Checkpoint file for one member: ``<dir>/<name>-<occurrence>.jsonl``.

    Derived from the member's stable key so a rerun of a permuted
    campaign still finds each member's own checkpoint.
    """
    return os.path.join(
        os.fspath(checkpoint_dir), f"{_slug(spec.space.name)}-{key[1]}.jsonl"
    )


def member_scope(
    strategy: str, spec: "SearchSpec", key: tuple[int, int]
) -> str:
    """Trace scope of one member: ``<strategy>/<name>-<occurrence>``.

    Mirrors :func:`checkpoint_path`'s stable naming so trace streams and
    checkpoints of the same member line up.
    """
    return f"{strategy}/{_slug(spec.space.name)}-{key[1]}"


def _wrap_objective(spec: "SearchSpec", database: EvaluationDatabase | None):
    """Apply the spec's robustness policies to its objective.

    Wrapper order (inside out): scalarization transforms the raw
    objective's output before anything else sees it (cache keys, failure
    classification, and the ledger all operate on the scalarized
    value); fault injection sits next so every other layer is exercised
    by injected faults; the watchdog turns hangs into classified
    timeouts; retries absorb transient failures (and short-circuit on
    permanent ones); the memoization cache sits outermost so cache hits
    skip everything.
    """
    objective = spec.objective
    scalarize = getattr(spec, "scalarize", None)
    if scalarize is not None:
        objective = ScalarizedObjective(objective, scalarize)
    if spec.fault_plan is not None and spec.fault_plan.active:
        objective = FaultyObjective(objective, spec.fault_plan)
    if spec.wall_timeout is not None:
        objective = WatchdogObjective(objective, spec.wall_timeout)
    if spec.max_retries > 0:
        objective = RetryingObjective(
            objective, max_retries=spec.max_retries, backoff=spec.retry_backoff
        )
    store = getattr(spec, "eval_store", None)
    if spec.memoize or store is not None:
        if store is not None:
            scope = getattr(spec, "eval_store_key", None)
            if scope is None:
                from .store import space_fingerprint

                scope = space_fingerprint(spec.space)
            objective = MemoizingObjective(
                objective,
                store=store,
                store_scope=scope,
                provenance=getattr(spec, "eval_provenance", None),
            )
        else:
            objective = MemoizingObjective(objective)
        if database is not None:
            objective.seed_from_database(database)
    return objective


def run_search_spec(
    spec: "SearchSpec",
    seed: np.random.SeedSequence,
    *,
    checkpoint: str | os.PathLike | None = None,
    telemetry: Telemetry | None = None,
    scope: str | None = None,
) -> SearchResult:
    """Execute one member search: engine dispatch + robustness wrappers.

    This is the single execution path shared by the sequential and
    parallel campaign modes (and by pool worker processes), which is what
    makes the two modes bit-identical for a given seed.  With a
    ``telemetry`` handle it additionally emits the member's trace stream
    (a ``search_start`` event, the ``search`` span wrapping the engine
    run, one ``eval`` event per database record, and a final metrics
    snapshot) under ``scope`` — a pure observer either way.
    """
    t0 = time.perf_counter()
    database = EvaluationDatabase(checkpoint) if checkpoint is not None else None
    n_warm = 0
    warm = getattr(spec, "warm_start", None)
    if warm:
        if database is None:
            database = EvaluationDatabase()
        if len(database) == 0:
            # Seed history only into an *empty* database: a resumed
            # checkpoint already contains these records (they were
            # persisted on the first run), and re-injecting them would
            # duplicate history.
            database.extend(warm)
            n_warm = len(warm)
        else:
            n_warm = sum(
                1 for rec in database if rec.meta.get("warm_start")
            )
    objective = _wrap_objective(spec, database)
    if telemetry is None:
        result = _dispatch(spec, seed, objective, database)
    else:
        tracer = telemetry.tracer(
            scope if scope is not None else _slug(spec.space.name)
        )
        strategy = (
            tracer.scope.rsplit("/", 1)[0] if "/" in tracer.scope else ""
        )
        tracer.event(
            "search_start",
            budget=spec.budget(),
            engine=spec.engine,
            space=spec.space.name,
            strategy=strategy,
            resumed=len(database) if database is not None else 0,
        )
        if n_warm:
            tracer.event(
                "warm_start", seeded=n_warm, space=spec.space.name
            )
            telemetry.metrics.counter("warm_start_seeded").inc(n_warm)
        with tracer.span(
            "search", engine=spec.engine, space=spec.space.name
        ) as sp:
            result = _dispatch(spec, seed, objective, database, tracer=tracer)
            sp.attrs["n_evaluations"] = result.n_evaluations
        _member_metrics(telemetry, tracer, spec, objective, result)
    if n_warm:
        result.meta["warm_seeded"] = n_warm
    if (
        isinstance(objective, MemoizingObjective)
        and getattr(spec, "eval_store", None) is not None
    ):
        # Memo accounting only for store-backed members: plain memoized
        # searches keep their historical (meta-free) results untouched.
        result.meta["memo"] = {
            "hits": objective.hits,
            "cross_job_hits": objective.cross_hits,
            "misses": objective.misses,
            "permanent_hits": objective.permanent_hits,
        }
    result.measured_time = time.perf_counter() - t0
    return result


def _member_metrics(
    telemetry: Telemetry, tracer, spec: "SearchSpec", objective, result: SearchResult
) -> None:
    """Aggregate one member's counters into the telemetry registry.

    Counts are derived from the finished result and the robustness
    wrapper chain — deterministic for a given search — and snapshotted
    into the member's event stream so pool workers ship them home.
    """
    m = telemetry.metrics
    m.counter("evaluations", engine=spec.engine).inc(result.n_evaluations)
    if result.database is not None:
        hist = m.histogram("evaluation_cost_seconds")
        for rec in result.database:
            hist.observe(rec.cost)
    m.gauge("best_objective", search=spec.space.name).set(result.best_objective)
    obj = objective
    while obj is not None:
        if isinstance(obj, MemoizingObjective):
            if obj.hits:
                m.counter("cache_hits").inc(obj.hits)
            if obj.misses:
                m.counter("cache_misses").inc(obj.misses)
            if obj.cross_hits:
                m.counter("cache_cross_hits").inc(obj.cross_hits)
            if obj.permanent_hits:
                m.counter("cache_permanent_hits").inc(obj.permanent_hits)
            # Service-facing memoization counters, labelled by scope so
            # Prometheus exposes repro_service_memo_hits_total{scope=...}.
            if obj.hits:
                m.counter("service_memo_hits", scope="job").inc(obj.hits)
            if obj.cross_hits:
                m.counter("service_memo_hits", scope="cross_job").inc(
                    obj.cross_hits
                )
            if obj.misses:
                m.counter("service_memo_misses").inc(obj.misses)
        elif isinstance(obj, RetryingObjective):
            if obj.retries:
                m.counter("retries").inc(obj.retries)
            if obj.short_circuits:
                m.counter("retry_short_circuits").inc(obj.short_circuits)
        obj = getattr(obj, "objective", None)
        if not callable(obj):
            break
    for kind, count in (result.meta.get("failure_counts") or {}).items():
        m.counter("faults", kind=kind).inc(count)
    quarantined = result.meta.get("quarantined")
    if quarantined:
        m.counter("breaker_trips").inc(len(quarantined.get("cells", ())))
    tracer.metrics_event(m)


def _dispatch(
    spec: "SearchSpec",
    seed: np.random.SeedSequence,
    objective,
    database: EvaluationDatabase | None,
    tracer=None,
) -> SearchResult:
    """Resolve ``spec.engine`` through the sampler registry and run it.

    Every engine — the legacy loops (published via adapters that
    construct them exactly as this function historically did, keeping
    fingerprints byte-identical) and the suggest-based samplers (TPE,
    CMA-ES-lite, QMC, driven by the generic
    :class:`~repro.search.samplers.SamplerSearch` loop) — arrives here
    by name.  Unknown names raise ``ValueError``, as always.
    """
    sampler_cls = sampler_by_name(spec.engine)
    return sampler_cls.run_search(spec, seed, objective, database, tracer)


def _run_member(payload: bytes):
    """Pool worker entry point: unpickle one member task and run it.

    Returns ``(result, events, metrics_snapshot)``: the worker buffers
    its trace events in a :class:`MemorySink` and snapshots its own
    metrics registry; the parent forwards/merges them *in member order*,
    so parallel campaigns produce the same trace as sequential ones.
    """
    spec, seed, checkpoint, scope, clock = pickle.loads(payload)
    if scope is None:
        result = run_search_spec(spec, seed, checkpoint=checkpoint)
        return result, [], None
    buffer = MemorySink()
    telemetry = Telemetry([buffer], clock=clock, metrics=MetricsRegistry())
    result = run_search_spec(
        spec, seed, checkpoint=checkpoint, telemetry=telemetry, scope=scope
    )
    return result, buffer.events, telemetry.metrics.snapshot()


def _run_measure_task(payload: bytes):
    """Pool worker entry point for one Phase-1 measurement."""
    measurer, task = pickle.loads(payload)
    return measurer.measure(task)


def run_measure_tasks(
    measurer, tasks: Sequence, *, n_workers: int | None = None
):
    """Measure Phase-1 tasks in a process pool, in task order.

    Returns the observations aligned with ``tasks``, or ``None`` when the
    measurer/tasks cannot cross a process boundary or the pool is lost —
    the caller falls back to an in-process loop with identical results
    (measurement consumes no random state; the plan fixed every
    configuration up front).
    """
    payloads = CampaignExecutor._picklable_tasks(
        [(measurer, task) for task in tasks]
    )
    if payloads is None:
        return None
    if n_workers is None:
        n_workers = os.cpu_count() or 1
    n_workers = max(1, min(int(n_workers), len(payloads)))
    try:
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            return list(pool.map(_run_measure_task, payloads))
    except (BrokenProcessPool, OSError) as exc:
        logger.warning(
            "phase-1 measurement pool failed (%r); falling back in-process",
            exc,
        )
        return None


class CampaignExecutor:
    """Run a set of member searches, optionally in parallel with
    checkpointing.

    Parameters
    ----------
    n_workers:
        Process-pool width for parallel execution; ``None`` uses
        ``os.cpu_count()`` capped at the member count.  ``1`` always runs
        in-process.
    checkpoint_dir:
        Directory for per-member JSONL evaluation checkpoints; ``None``
        disables checkpointing.  Existing checkpoints are resumed.
    member_timeout:
        Pool-level watchdog: maximum real seconds to wait for a pooled
        member's future.  A member that blows the deadline has its worker
        processes terminated (the only way to stop a hung evaluation from
        the outside) and is resubmitted once to a fresh pool; members
        collateral-killed by the termination are resubmitted too, and
        their checkpoints (when enabled) mean completed evaluations are
        replayed, not re-run.  Pair with ``SearchSpec.wall_timeout`` so
        the in-worker watchdog catches individual hanging evaluations
        before the whole member is sacrificed.  ``None`` disables.
    telemetry:
        Optional :class:`repro.telemetry.Telemetry`.  Members emit their
        trace streams into per-member buffers (in-process or inside pool
        workers) which the executor forwards *in member order* and merges
        with the campaign metrics — so sequential and parallel campaigns
        with the same deterministic clock produce identical traces.
        ``None`` (default) disables all instrumentation.
    """

    #: Pool rounds before falling back (initial submission + one resubmission).
    _POOL_ROUNDS = 2

    def __init__(
        self,
        *,
        n_workers: int | None = None,
        checkpoint_dir: str | os.PathLike | None = None,
        member_timeout: float | None = None,
        telemetry: Telemetry | None = None,
    ):
        if n_workers is not None and n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if member_timeout is not None and member_timeout <= 0:
            raise ValueError("member_timeout must be > 0")
        self.n_workers = n_workers
        self.member_timeout = member_timeout
        self.telemetry = telemetry
        self.checkpoint_dir = (
            os.fspath(checkpoint_dir) if checkpoint_dir is not None else None
        )

    # ------------------------------------------------------------------
    def _member_checkpoints(
        self, specs: Sequence["SearchSpec"]
    ) -> list[str | None]:
        if self.checkpoint_dir is None:
            return [None] * len(specs)
        os.makedirs(self.checkpoint_dir, exist_ok=True)
        return [
            checkpoint_path(self.checkpoint_dir, spec, key)
            for spec, key in zip(specs, member_keys(specs))
        ]

    @staticmethod
    def _picklable_tasks(tasks: list[tuple]) -> list[bytes] | None:
        """Serialize member tasks, or ``None`` if any cannot cross a
        process boundary (-> deterministic in-process fallback)."""
        payloads = []
        for task in tasks:
            try:
                payloads.append(pickle.dumps(task))
            except Exception:
                return None
        return payloads

    def run(
        self,
        specs: Sequence["SearchSpec"],
        seeds: Sequence[np.random.SeedSequence],
        *,
        strategy: str = "campaign",
        parallel: bool = True,
    ) -> CampaignResult:
        """Execute every member and aggregate into a CampaignResult.

        When the members actually ran concurrently,
        ``CampaignResult.measured_campaign_seconds`` is set to the real
        elapsed wall-clock of the whole campaign, so
        ``measured_wall_time`` reflects measured parallel execution
        rather than the simulated max over members.
        """
        if len(specs) != len(seeds):
            raise ValueError("specs and seeds must have the same length")
        checkpoints = self._member_checkpoints(specs)
        if self.telemetry is not None:
            scopes = [
                member_scope(strategy, spec, key)
                for spec, key in zip(specs, member_keys(specs))
            ]
            clock = self.telemetry.clock
        else:
            scopes = [None] * len(specs)
            clock = None
        tasks = list(zip(specs, seeds, checkpoints, scopes))

        result = CampaignResult(strategy=strategy)
        n_workers = self.n_workers
        if n_workers is None:
            n_workers = min(len(specs), os.cpu_count() or 1)
        use_pool = parallel and n_workers > 1 and len(specs) > 1
        # Promote fixed candidate pools into shared memory before the
        # member tasks are pickled: each payload then carries an O(1)
        # (name, shape) handle instead of a copy of the (m, d) matrix,
        # and every worker attaches to the same physical pages.  The
        # executor owns the segments it created and releases them (copy
        # back + unlink) once all members have finished.
        promoted = []
        if use_pool:
            for spec in specs:
                cpool = getattr(spec, "candidate_pool", None)
                if (
                    cpool is not None
                    and not cpool.is_shared
                    and cpool.ensure_shared()
                ):
                    promoted.append(cpool)
        payloads = (
            self._picklable_tasks(
                [task + (clock,) for task in tasks]
            )
            if use_pool
            else None
        )
        if use_pool and payloads is None:
            logger.info(
                "campaign %r: member tasks not picklable; "
                "falling back to in-process execution",
                strategy,
            )

        t0 = time.perf_counter()
        try:
            if payloads is not None:
                result.searches.extend(
                    self._run_pool(tasks, payloads, n_workers)
                )
                result.measured_campaign_seconds = time.perf_counter() - t0
                result.executed_parallel = True
            else:
                for spec, seed, checkpoint, scope in tasks:
                    result.searches.append(
                        self._run_inline(spec, seed, checkpoint, scope)
                    )
        finally:
            for cpool in promoted:
                cpool.release()
        return result

    def _run_inline(self, spec, seed, checkpoint, scope) -> SearchResult:
        """One member in-process, with live progress and live trace."""
        if self.telemetry is None:
            return run_search_spec(spec, seed, checkpoint=checkpoint)
        # The member shares the parent's sinks live (instead of the
        # buffer-then-forward protocol pool members need), so external
        # tailers see evaluations as they happen.  Sequential members
        # emit in exactly the order forward() would replay, keeping the
        # trace bytes identical to the pooled path.
        child = self.telemetry.inline_member()
        res = run_search_spec(
            spec, seed, checkpoint=checkpoint, telemetry=child, scope=scope
        )
        self.telemetry.metrics.merge(child.metrics)
        return res

    # -- pool resilience ------------------------------------------------
    def _run_pool(
        self, tasks: list[tuple], payloads: list[bytes], n_workers: int
    ) -> list[SearchResult]:
        """Run pooled members with worker-loss recovery.

        Members are submitted as individual futures.  A member whose
        worker dies (``BrokenProcessPool``) or whose future blows
        ``member_timeout`` is resubmitted once to a fresh pool; members
        that still cannot complete in a pool fall back to the in-process
        path — which is bit-identical by construction because both paths
        drive :func:`run_search_spec` with the same spec, seed, and
        checkpoint.  A member that timed out in every pool round is *not*
        rerun in-process (that would hang the caller); a TimeoutError
        naming the member is raised instead.
        """
        n = len(payloads)
        results: list[SearchResult | None] = [None] * n
        member_events: list[list] = [[] for _ in range(n)]
        member_snaps: list[dict | None] = [None] * n
        events: dict[int, list[str]] = {i: [] for i in range(n)}
        pending = list(range(n))
        for _ in range(self._POOL_ROUNDS):
            if not pending:
                break
            pending = self._pool_round(
                payloads, results, member_events, member_snaps, events,
                pending, n_workers,
            )
        for i in pending:
            if events[i] and events[i][-1] == "member_timeout":
                raise TimeoutError(
                    f"campaign member {i} ({tasks[i][0].space.name!r}) "
                    f"exceeded member_timeout={self.member_timeout}s in "
                    f"{self._POOL_ROUNDS} pool rounds; set "
                    "SearchSpec.wall_timeout so the in-worker watchdog can "
                    "stop hanging evaluations"
                )
            # Worker loss with no surviving pool: deterministic in-process
            # fallback (same run_search_spec, same seed, same checkpoint).
            spec, seed, checkpoint, scope = tasks[i]
            logger.warning(
                "campaign member %d (%r): pool execution failed (%s); "
                "falling back to in-process",
                i, spec.space.name, ", ".join(events[i]),
            )
            if self.telemetry is None:
                results[i] = run_search_spec(spec, seed, checkpoint=checkpoint)
            else:
                child, buffer = self.telemetry.member(live=False)
                results[i] = run_search_spec(
                    spec, seed, checkpoint=checkpoint,
                    telemetry=child, scope=scope,
                )
                member_events[i] = buffer.events
                member_snaps[i] = child.metrics.snapshot()
        if self.telemetry is not None:
            # Deterministic merge: member streams forwarded in member
            # order, exactly as the sequential path emits them.
            for i in range(n):
                self.telemetry.forward(member_events[i], live=True)
                if member_snaps[i] is not None:
                    self.telemetry.metrics.merge_snapshot(member_snaps[i])
        for i, evs in events.items():
            res = results[i]
            if evs and res is not None:
                res.meta.setdefault("recovery", {}).update(
                    {
                        "events": list(evs),
                        "failure_kind": FailureKind.WORKER_LOST.value,
                        "fallback": "in-process" if i in pending else "pool",
                    }
                )
                if "worker_lost" in evs:
                    res.meta["worker_lost"] = True
        return [r for r in results if r is not None]

    def _pool_round(
        self,
        payloads: list[bytes],
        results: list[SearchResult | None],
        member_events: list[list],
        member_snaps: list[dict | None],
        events: dict[int, list[str]],
        pending: list[int],
        n_workers: int,
    ) -> list[int]:
        """One pool attempt over ``pending`` members; returns survivors.

        On a member timeout the pool's worker processes are terminated —
        the only way to stop a hung evaluation from outside — which also
        kills in-flight siblings; they surface as ``BrokenProcessPool``
        and are resubmitted in the next round (their checkpoints replay
        completed evaluations, so no work is repeated).
        """
        still: list[int] = []
        with ProcessPoolExecutor(
            max_workers=min(n_workers, len(pending))
        ) as pool:
            futures = {i: pool.submit(_run_member, payloads[i]) for i in pending}
            for i, fut in futures.items():
                try:
                    results[i], member_events[i], member_snaps[i] = fut.result(
                        timeout=self.member_timeout
                    )
                except FuturesTimeoutError:
                    logger.warning(
                        "campaign member %d exceeded member_timeout=%ss; "
                        "terminating pool workers",
                        i, self.member_timeout,
                    )
                    events[i].append("member_timeout")
                    still.append(i)
                    for proc in list(getattr(pool, "_processes", {}).values()):
                        proc.terminate()
                except (BrokenProcessPool, OSError):
                    logger.warning(
                        "campaign member %d lost its pool worker; "
                        "will resubmit", i,
                    )
                    events[i].append("worker_lost")
                    still.append(i)
        return still
