"""Fault-tolerant parallel campaign executor.

The paper's cost model assumes the member searches of a strategy run *in
parallel* (campaign wall-clock = max over members) and leans on GPTune's
crash-recovery support for long campaigns.  This module makes both real:

* **Parallel execution** — member searches run concurrently in a
  :class:`concurrent.futures.ProcessPoolExecutor`.  Specs whose
  objectives cannot cross a process boundary (closures, bound methods of
  unpicklable objects) are detected up front and the campaign falls back
  to a deterministic in-process loop; either way every member is driven
  by the same :func:`run_search_spec` with the same per-spec seed, so the
  parallel and sequential paths produce bit-identical results.
* **Checkpoint / resume** — with a ``checkpoint_dir`` every member
  persists its :class:`~repro.bo.history.EvaluationDatabase` to an
  append-only JSONL file (O(1) I/O per evaluation) named after the
  member's stable key.  Re-running the campaign resumes each member from
  its checkpoint: completed evaluations are replayed, not re-run, and the
  BO engine reconstructs its surrogate state so the continuation matches
  an uninterrupted run.
* **Retry with exponential backoff** — objectives that raise transient
  errors are retried per :class:`SearchSpec` policy before being recorded
  as FAILED.
* **Memoization** — an optional per-member evaluation cache keyed on the
  canonicalized configuration dict; repeated configurations (common after
  a resume and in grid/random engines) are served from the cache.

Per-spec seeds are derived from :class:`numpy.random.SeedSequence` keyed
by the member's *stable key* (space name + occurrence index among specs
of the same name), never by campaign position — adding, removing, or
permuting members does not reseed the others.
"""

from __future__ import annotations

import os
import pickle
import re
import time
import zlib
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..bo.history import EvaluationDatabase
from ..bo.optimizer import BayesianOptimizer
from .cache import MemoizingObjective, RetryingObjective
from .grid_search import GridSearch
from .random_search import RandomSearch
from .result import CampaignResult, SearchResult

if TYPE_CHECKING:  # avoid a circular import with runner.py
    from .runner import SearchSpec

__all__ = [
    "CampaignExecutor",
    "run_search_spec",
    "member_keys",
    "spec_seed_sequences",
]


def member_keys(specs: Sequence["SearchSpec"]) -> list[tuple[int, int]]:
    """Stable (name-hash, occurrence) key per member.

    The key depends only on the member's space name and its occurrence
    ordinal among same-named members — not on its position in the
    campaign — so permuting or dropping other members leaves a member's
    key (and therefore its seed and checkpoint file) unchanged.
    """
    counts: dict[str, int] = {}
    keys = []
    for spec in specs:
        name = spec.space.name
        k = counts.get(name, 0)
        counts[name] = k + 1
        keys.append((zlib.crc32(name.encode("utf-8")), k))
    return keys


def spec_seed_sequences(
    specs: Sequence["SearchSpec"],
    random_state: int | np.random.Generator | None = None,
) -> list[np.random.SeedSequence]:
    """Derive one independent SeedSequence per member from a campaign seed.

    Seeds are keyed by :func:`member_keys`, fixing the order-dependence
    bug where positionally drawn child seeds meant that reordering or
    removing one spec reseeded every other member.
    """
    if isinstance(random_state, np.random.Generator):
        entropy = int(random_state.integers(0, 2**63))
    elif random_state is None:
        entropy = int(np.random.SeedSequence().entropy)
    else:
        entropy = int(random_state)
    return [
        np.random.SeedSequence(entropy, spawn_key=key)
        for key in member_keys(specs)
    ]


def _slug(name: str) -> str:
    """Filesystem-safe version of a member name."""
    return re.sub(r"[^A-Za-z0-9._-]+", "_", name).strip("_") or "member"


def checkpoint_path(
    checkpoint_dir: str | os.PathLike, spec: "SearchSpec", key: tuple[int, int]
) -> str:
    """Checkpoint file for one member: ``<dir>/<name>-<occurrence>.jsonl``.

    Derived from the member's stable key so a rerun of a permuted
    campaign still finds each member's own checkpoint.
    """
    return os.path.join(
        os.fspath(checkpoint_dir), f"{_slug(spec.space.name)}-{key[1]}.jsonl"
    )


def _wrap_objective(spec: "SearchSpec", database: EvaluationDatabase | None):
    """Apply the spec's retry and memoization policies to its objective."""
    objective = spec.objective
    if spec.max_retries > 0:
        objective = RetryingObjective(
            objective, max_retries=spec.max_retries, backoff=spec.retry_backoff
        )
    if spec.memoize:
        objective = MemoizingObjective(objective)
        if database is not None:
            objective.seed_from_database(database)
    return objective


def run_search_spec(
    spec: "SearchSpec",
    seed: np.random.SeedSequence,
    *,
    checkpoint: str | os.PathLike | None = None,
) -> SearchResult:
    """Execute one member search: engine dispatch + robustness wrappers.

    This is the single execution path shared by the sequential and
    parallel campaign modes (and by pool worker processes), which is what
    makes the two modes bit-identical for a given seed.
    """
    t0 = time.perf_counter()
    database = EvaluationDatabase(checkpoint) if checkpoint is not None else None
    objective = _wrap_objective(spec, database)
    result = _dispatch(spec, seed, objective, database)
    result.measured_time = time.perf_counter() - t0
    return result


def _dispatch(
    spec: "SearchSpec",
    seed: np.random.SeedSequence,
    objective,
    database: EvaluationDatabase | None,
) -> SearchResult:
    db_kwargs = {"database": database} if database is not None else {}
    if spec.engine == "bo":
        opt = BayesianOptimizer(
            spec.space,
            objective,
            max_evaluations=spec.budget(),
            random_state=seed,
            **db_kwargs,
            **spec.engine_options,
        )
        r = opt.run()
        return SearchResult(
            name=spec.space.name,
            engine="bo",
            best_config=r.best_config,
            best_objective=r.best_objective,
            search_time=r.search_time,
            n_evaluations=r.n_evaluations,
            database=r.database,
            tuned_names=tuple(spec.space.names),
        )
    if spec.engine == "random":
        rs = RandomSearch(
            spec.space,
            objective,
            max_evaluations=spec.budget(),
            random_state=np.random.default_rng(seed),
            **db_kwargs,
            **spec.engine_options,
        )
        result = rs.run()
        result.tuned_names = tuple(spec.space.names)
        return result
    if spec.engine == "grid":
        gs = GridSearch(
            spec.space,
            objective,
            max_evaluations=spec.budget(),
            **spec.engine_options,
        )
        result = gs.run()
        result.tuned_names = tuple(spec.space.names)
        return result
    if spec.engine == "batch-bo":
        from ..bo.batch import BatchBayesianOptimizer

        opt = BatchBayesianOptimizer(
            spec.space,
            objective,
            max_evaluations=spec.budget(),
            random_state=seed,
            **db_kwargs,
            **spec.engine_options,
        )
        r = opt.run()
        return SearchResult(
            name=spec.space.name,
            engine="batch-bo",
            best_config=r.best_config,
            best_objective=r.best_objective,
            search_time=r.search_time,
            n_evaluations=r.n_evaluations,
            database=r.database,
            tuned_names=tuple(spec.space.names),
        )
    if spec.engine in ("hillclimb", "anneal"):
        from .local_search import HillClimbing, SimulatedAnnealing

        cls = HillClimbing if spec.engine == "hillclimb" else SimulatedAnnealing
        ls = cls(
            spec.space,
            objective,
            max_evaluations=spec.budget(),
            random_state=np.random.default_rng(seed),
            **spec.engine_options,
        )
        return ls.run()
    raise ValueError(f"unknown engine {spec.engine!r}")


def _run_member(payload: bytes) -> SearchResult:
    """Pool worker entry point: unpickle one member task and run it."""
    spec, seed, checkpoint = pickle.loads(payload)
    return run_search_spec(spec, seed, checkpoint=checkpoint)


class CampaignExecutor:
    """Run a set of member searches, optionally in parallel with
    checkpointing.

    Parameters
    ----------
    n_workers:
        Process-pool width for parallel execution; ``None`` uses
        ``os.cpu_count()`` capped at the member count.  ``1`` always runs
        in-process.
    checkpoint_dir:
        Directory for per-member JSONL evaluation checkpoints; ``None``
        disables checkpointing.  Existing checkpoints are resumed.
    """

    def __init__(
        self,
        *,
        n_workers: int | None = None,
        checkpoint_dir: str | os.PathLike | None = None,
    ):
        if n_workers is not None and n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = n_workers
        self.checkpoint_dir = (
            os.fspath(checkpoint_dir) if checkpoint_dir is not None else None
        )

    # ------------------------------------------------------------------
    def _member_checkpoints(
        self, specs: Sequence["SearchSpec"]
    ) -> list[str | None]:
        if self.checkpoint_dir is None:
            return [None] * len(specs)
        os.makedirs(self.checkpoint_dir, exist_ok=True)
        return [
            checkpoint_path(self.checkpoint_dir, spec, key)
            for spec, key in zip(specs, member_keys(specs))
        ]

    @staticmethod
    def _picklable_tasks(tasks: list[tuple]) -> list[bytes] | None:
        """Serialize member tasks, or ``None`` if any cannot cross a
        process boundary (-> deterministic in-process fallback)."""
        payloads = []
        for task in tasks:
            try:
                payloads.append(pickle.dumps(task))
            except Exception:
                return None
        return payloads

    def run(
        self,
        specs: Sequence["SearchSpec"],
        seeds: Sequence[np.random.SeedSequence],
        *,
        strategy: str = "campaign",
        parallel: bool = True,
    ) -> CampaignResult:
        """Execute every member and aggregate into a CampaignResult.

        When the members actually ran concurrently,
        ``CampaignResult.measured_campaign_seconds`` is set to the real
        elapsed wall-clock of the whole campaign, so
        ``measured_wall_time`` reflects measured parallel execution
        rather than the simulated max over members.
        """
        if len(specs) != len(seeds):
            raise ValueError("specs and seeds must have the same length")
        checkpoints = self._member_checkpoints(specs)
        tasks = list(zip(specs, seeds, checkpoints))

        result = CampaignResult(strategy=strategy)
        n_workers = self.n_workers
        if n_workers is None:
            n_workers = min(len(specs), os.cpu_count() or 1)
        use_pool = parallel and n_workers > 1 and len(specs) > 1
        payloads = self._picklable_tasks(tasks) if use_pool else None

        t0 = time.perf_counter()
        if payloads is not None:
            with ProcessPoolExecutor(max_workers=min(n_workers, len(specs))) as pool:
                result.searches.extend(pool.map(_run_member, payloads))
            result.measured_campaign_seconds = time.perf_counter() - t0
            result.executed_parallel = True
        else:
            for spec, seed, checkpoint in tasks:
                result.searches.append(
                    run_search_spec(spec, seed, checkpoint=checkpoint)
                )
        return result
