"""Shared eval-event emission for the non-BO search engines.

:class:`~repro.bo.optimizer.BayesianOptimizer` carries its own
``_emit_eval`` (it also feeds the replay path); random and grid search
use this free function instead of duplicating the field mapping.
"""

from __future__ import annotations

from typing import Any

from ..bo.history import Evaluation
from ..faults.taxonomy import failure_kind_of
from ..telemetry.core import config_hash

__all__ = ["emit_eval"]


def emit_eval(
    tracer: Any, index: int, rec: Evaluation, best_seen: float | None
) -> float | None:
    """Emit one ``eval`` event keyed by database index.

    Returns the updated best-so-far over OK records (the event's ``best``
    field), which the caller threads through subsequent calls.
    """
    if rec.ok and (best_seen is None or rec.objective < best_seen):
        best_seen = float(rec.objective)
    kind = failure_kind_of(rec)
    extra: dict[str, Any] = {}
    if rec.meta.get("cache_hit"):
        extra["cache_hit"] = True
    tracer.eval_event(
        index,
        objective=float(rec.objective),
        cost=float(rec.cost),
        status=rec.status,
        best=best_seen,
        failure_kind=kind.value if kind is not None else None,
        cfg_hash=config_hash(rec.config),
        **extra,
    )
    return best_seen
