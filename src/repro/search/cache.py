"""Objective wrappers used by the campaign executor.

:class:`MemoizingObjective`
    Caches objective results keyed on the *canonicalized* configuration
    dict, so repeated configurations — common after a checkpoint resume
    and in grid/random engines over small discrete spaces — are not
    re-evaluated.  The cache can be pre-seeded from an
    :class:`~repro.bo.history.EvaluationDatabase` so a resumed search
    never pays twice for a configuration it already measured.
:class:`RetryingObjective`
    Retries objectives that raise, with exponential backoff, for
    transient failures (flaky filesystems, node hiccups — the situations
    GPTune's crash recovery is designed around).  Exceptions classified
    PERMANENT / NUMERIC / TIMEOUT by the failure-taxonomy classifier
    (:func:`repro.faults.classify_exception`) are re-raised *immediately*
    — retrying a configuration that can never succeed would burn all
    ``max_retries`` with backoff sleeps for nothing.  Exhausted-retry and
    non-retryable exceptions surface to the engines, which record the
    evaluation as FAILED/TIMEOUT with its classified kind.

Both wrappers are plain picklable classes (no closures) so specs using
them can cross a ``ProcessPoolExecutor`` boundary.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Mapping

import numpy as np

from ..bo.optimizer import Objective
from ..faults.taxonomy import (
    RETRYABLE_KINDS,
    FailureKind,
    PermanentFault,
    classify_exception,
    failure_kind_of,
)
from ..log import get_logger

__all__ = ["canonical_key", "MemoizingObjective", "RetryingObjective"]

logger = get_logger("search")


def _coerce_float(value: Any) -> float:
    """Canonical Python float for any float-ish config value.

    Two equal-looking values must produce one key:

    * ``-0.0`` and ``0.0`` compare equal but serialize differently under
      ``json.dumps`` — normalize the signed zero away.
    * Narrow numpy floats widen with representation garbage
      (``float(np.float32(0.1))`` is ``0.10000000149011612``), so a
      float32-producing sampler and a Python-float caller would miss each
      other's cache entries.  The shortest decimal that round-trips the
      narrow value (``np.format_float_positional(..., unique=True)``)
      recovers the intended ``0.1``.
    """
    if isinstance(value, np.floating) and value.dtype.itemsize < 8:
        out = float(np.format_float_positional(value, unique=True))
    else:
        out = float(value)
    return 0.0 if out == 0.0 else out


def _coerce(value: Any) -> Any:
    """Make a config value JSON-stable (numpy scalars -> Python)."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating, float)):
        return _coerce_float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.ndarray):
        return [_coerce(v) for v in value]
    return value


def canonical_key(config: Mapping[str, Any]) -> str:
    """Canonical string key for a configuration dict.

    Keys are sorted and numpy scalars coerced so that logically equal
    configurations (regardless of insertion order or numeric wrapper
    type) map to the same cache entry.
    """
    return json.dumps(
        {k: _coerce(config[k]) for k in sorted(config)}, sort_keys=True
    )


class MemoizingObjective:
    """Wrap an objective with a canonical-config memoization cache.

    Parameters
    ----------
    objective:
        The wrapped callable (``config -> value`` or ``config ->
        (value, meta)``).
    store / store_scope / provenance:
        Optional cross-job persistence: a
        :class:`~repro.search.store.EvaluationStore` (any object with its
        ``lookup``/``record``/``refresh`` protocol), the space
        fingerprint scoping this search's entries, and the provenance
        dict gating which stored records may be served.  Local misses
        consult the store (re-polling it once for lines a concurrent job
        appended since the last read); fresh measurements are written
        back through it.  Store hits count in ``cross_hits`` — not
        ``hits`` — and are tagged ``meta["cache_scope"] = "cross_job"``
        so the ledger can attribute them separately from same-job
        replays.

    Cache hits return the stored result with ``meta["cache_hit"] = True``
    added (the original stored meta is not mutated), so accounting code
    can distinguish replayed results from fresh measurements.
    """

    def __init__(
        self,
        objective: Objective,
        *,
        store: Any = None,
        store_scope: str | None = None,
        provenance: Mapping[str, Any] | None = None,
    ):
        self.objective = objective
        self.store = store
        self.store_scope = store_scope
        self.provenance = dict(provenance or {})
        self._cache: dict[str, tuple[float, dict[str, Any]]] = {}
        self._permanent: dict[str, str] = {}
        self.hits = 0
        self.misses = 0
        self.cross_hits = 0
        self.permanent_hits = 0

    def seed_from_database(self, database) -> int:
        """Pre-populate from the OK records of an evaluation database.

        Returns the number of entries added.  Transient/timeout failures
        are not cached — a resumed search should be allowed to retry them
        — but records classified PERMANENT or NUMERIC (deterministic in
        the configuration; see :class:`repro.faults.FailureKind`) are
        remembered as poison keys: re-querying one raises
        :class:`~repro.faults.PermanentFault` instead of paying for the
        doomed evaluation again.
        """
        added = 0
        for rec in database:
            key = canonical_key(rec.config)
            if rec.ok:
                if rec.meta.get("warm_inexact"):
                    # Tolerance-matched warm-start projections: the
                    # observation came from a *nearby* configuration, so
                    # serving it for this exact key would silently return
                    # a slightly wrong value.
                    continue
                if key not in self._cache:
                    self._cache[key] = (float(rec.objective), dict(rec.meta))
                    added += 1
            elif failure_kind_of(rec) in (
                FailureKind.PERMANENT,
                FailureKind.NUMERIC,
            ):
                self._permanent.setdefault(
                    key, str(rec.meta.get("error", "permanent failure"))
                )
        return added

    def __len__(self) -> int:
        return len(self._cache)

    def _store_lookup(self, key: str):
        if self.store is None or self.store_scope is None:
            return None
        entry = self.store.lookup(
            self.store_scope, key, provenance=self.provenance
        )
        if entry is None:
            # A concurrent job may have measured this configuration since
            # our last read — poll the tail once before paying for it.
            self.store.refresh()
            entry = self.store.lookup(
                self.store_scope, key, provenance=self.provenance
            )
        return entry

    def __call__(self, config: Mapping[str, Any]) -> tuple[float, dict[str, Any]]:
        key = canonical_key(config)
        if key in self._cache:
            self.hits += 1
            value, meta = self._cache[key]
            return value, {**meta, "cache_hit": True}
        if key in self._permanent:
            self.permanent_hits += 1
            raise PermanentFault(
                f"memoized permanent failure: {self._permanent[key]}"
            )
        entry = self._store_lookup(key)
        if entry is not None:
            self.cross_hits += 1
            value, meta = float(entry.value), dict(entry.meta)
            self._cache[key] = (value, meta)
            return value, {**meta, "cache_hit": True, "cache_scope": "cross_job"}
        out = self.objective(config)
        if isinstance(out, tuple):
            value, meta = float(out[0]), dict(out[1])
        else:
            value, meta = float(out), {}
        self.misses += 1
        self._cache[key] = (value, meta)
        if self.store is not None and self.store_scope is not None:
            self.store.record(
                self.store_scope, key, value, meta, provenance=self.provenance
            )
        return value, dict(meta)


class RetryingObjective:
    """Retry a raising objective with exponential backoff.

    Parameters
    ----------
    objective:
        The wrapped callable.
    max_retries:
        Additional attempts after the first failure (0 = no retries).
    backoff:
        Base sleep in seconds; attempt ``i`` sleeps ``backoff * 2**i``.
    retry_on:
        Exception classes *eligible* for retry.  Anything else (and the
        final exhausted attempt) propagates to the engine, which records
        the evaluation as FAILED.
    classifier:
        ``exception -> FailureKind`` hook (default
        :func:`repro.faults.classify_exception`).  Exceptions whose kind
        is not retryable (PERMANENT, NUMERIC, TIMEOUT) are re-raised
        immediately — no attempts or backoff sleeps are wasted on a
        configuration that can never succeed.  ``None`` disables
        classification (legacy behavior: retry everything in
        ``retry_on``).
    """

    def __init__(
        self,
        objective: Objective,
        *,
        max_retries: int = 2,
        backoff: float = 0.05,
        retry_on: tuple[type[BaseException], ...] = (Exception,),
        classifier: Callable[[BaseException], FailureKind] | None = classify_exception,
    ):
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if backoff < 0:
            raise ValueError("backoff must be >= 0")
        self.objective = objective
        self.max_retries = int(max_retries)
        self.backoff = float(backoff)
        self.retry_on = retry_on
        self.classifier = classifier
        self.retries = 0
        self.short_circuits = 0

    def __call__(self, config: Mapping[str, Any]) -> Any:
        for attempt in range(self.max_retries + 1):
            try:
                return self.objective(config)
            except self.retry_on as exc:
                if self.classifier is not None:
                    kind = self.classifier(exc)
                    if kind not in RETRYABLE_KINDS:
                        self.short_circuits += 1
                        logger.debug(
                            "not retrying %s-classified failure: %r",
                            kind.value, exc,
                        )
                        raise
                if attempt == self.max_retries:
                    logger.debug(
                        "retries exhausted after %d attempts: %r",
                        attempt + 1, exc,
                    )
                    raise
                self.retries += 1
                logger.debug(
                    "retrying after failure (attempt %d/%d): %r",
                    attempt + 1, self.max_retries + 1, exc,
                )
                if self.backoff > 0:
                    time.sleep(self.backoff * (2**attempt))
        raise AssertionError("unreachable")  # pragma: no cover
