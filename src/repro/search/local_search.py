"""Local-search baselines: hill climbing and simulated annealing.

The paper's opening taxonomy: "Autotuning has traditionally accomplished
this task by either empirical searches or analytical models.  However,
these methods are becoming infeasible due to the complexity of large
search spaces."  These two classical empirical engines complete the
baseline set (random, grid, BO) so that claim is measurable on the same
problems.

Both operate on the spaces' native neighborhood structure
(:meth:`repro.space.SearchSpace.neighbors` — one-parameter moves that
respect constraints), so they require no encoding tricks and work on any
mixed discrete/continuous constrained space.
"""

from __future__ import annotations

import math
from typing import Any, Mapping

import numpy as np

from ..bo.history import Evaluation, EvaluationDatabase, EvaluationStatus
from ..bo.optimizer import Objective
from ..space import SearchSpace
from .result import SearchResult

__all__ = ["HillClimbing", "SimulatedAnnealing"]


class _LocalSearchBase:
    def __init__(
        self,
        space: SearchSpace,
        objective: Objective,
        *,
        max_evaluations: int | None = None,
        random_state: int | np.random.Generator | None = None,
    ):
        self.space = space
        self.objective = objective
        self.max_evaluations = (
            int(max_evaluations) if max_evaluations is not None
            else 10 * space.dimension
        )
        if self.max_evaluations < 1:
            raise ValueError("max_evaluations must be >= 1")
        self.rng = (
            random_state
            if isinstance(random_state, np.random.Generator)
            else np.random.default_rng(random_state)
        )
        self.database = EvaluationDatabase()

    def _complete(self, config: Mapping[str, Any]) -> dict[str, Any]:
        complete = getattr(self.space, "complete", None)
        return complete(config) if complete is not None else dict(config)

    def _evaluate(self, config: Mapping[str, Any]) -> float | None:
        """Evaluate and record; returns the value or None on failure."""
        full = self._complete(config)
        try:
            out = self.objective(full)
            value = float(out[0] if isinstance(out, tuple) else out)
        except Exception as exc:
            self.database.append(
                Evaluation(
                    config=full, objective=float("nan"), cost=0.0,
                    status=EvaluationStatus.FAILED, meta={"error": repr(exc)},
                )
            )
            return None
        if not np.isfinite(value):
            self.database.append(
                Evaluation(
                    config=full, objective=float("nan"), cost=0.0,
                    status=EvaluationStatus.FAILED,
                )
            )
            return None
        self.database.append(
            Evaluation(config=full, objective=value, cost=max(value, 0.0))
        )
        return value

    def _result(self, engine: str) -> SearchResult:
        best = self.database.best()
        return SearchResult(
            name=self.space.name,
            engine=engine,
            best_config=dict(best.config),
            best_objective=best.objective,
            search_time=self.database.total_cost(),  # inherently sequential
            n_evaluations=len(self.database),
            database=self.database,
            tuned_names=tuple(self.space.names),
        )


class HillClimbing(_LocalSearchBase):
    """Steepest-descent hill climbing with random restarts.

    From the current point, all feasible one-parameter neighbors are
    evaluated; the best strictly-improving one becomes the next point.  At
    a local optimum the search restarts from a fresh random configuration
    until the budget is exhausted.
    """

    def run(self) -> SearchResult:
        """Climb (with restarts) until the evaluation budget is spent."""
        budget = self.max_evaluations
        while len(self.database) < budget:
            current = self.space.sample(self.rng)
            current_val = self._evaluate(current)
            if current_val is None:
                continue
            improved = True
            while improved and len(self.database) < budget:
                improved = False
                best_n, best_v = None, current_val
                for n in self.space.neighbors(current):
                    if len(self.database) >= budget:
                        break
                    v = self._evaluate(n)
                    if v is not None and v < best_v:
                        best_n, best_v = n, v
                if best_n is not None:
                    current, current_val = best_n, best_v
                    improved = True
        return self._result("hillclimb")


class SimulatedAnnealing(_LocalSearchBase):
    """Metropolis annealing over the neighborhood graph.

    Parameters
    ----------
    t_initial / t_final:
        Temperature schedule endpoints; geometric decay over the budget.
        Temperatures scale acceptance of *relative* objective increases,
        so runtimes of any magnitude work without tuning.
    """

    def __init__(self, space, objective, *, t_initial: float = 0.3,
                 t_final: float = 0.005, **kwargs):
        super().__init__(space, objective, **kwargs)
        if t_initial <= 0 or t_final <= 0 or t_final > t_initial:
            raise ValueError("need t_initial >= t_final > 0")
        self.t_initial = float(t_initial)
        self.t_final = float(t_final)

    def _temperature(self, i: int) -> float:
        frac = i / max(1, self.max_evaluations - 1)
        return self.t_initial * (self.t_final / self.t_initial) ** frac

    def run(self) -> SearchResult:
        """Anneal over the neighborhood graph until the budget is spent."""
        current = self.space.sample(self.rng)
        current_val = self._evaluate(current)
        while current_val is None and len(self.database) < self.max_evaluations:
            current = self.space.sample(self.rng)
            current_val = self._evaluate(current)
        if current_val is None:
            raise RuntimeError(f"no feasible start found in {self.space.name!r}")

        while len(self.database) < self.max_evaluations:
            neighbors = self.space.neighbors(current)
            if not neighbors:
                candidate = self.space.sample(self.rng)
            else:
                candidate = neighbors[int(self.rng.integers(0, len(neighbors)))]
            v = self._evaluate(candidate)
            if v is None:
                continue
            t = self._temperature(len(self.database))
            rel = (v - current_val) / max(abs(current_val), 1e-12)
            if rel <= 0 or self.rng.random() < math.exp(-rel / t):
                current, current_val = candidate, v
        return self._result("anneal")
