"""Search engines and campaign orchestration.

Baseline engines (random, grid) plus the :class:`SearchCampaign` runner
that executes a *set* of searches as a strategy with the paper's
parallel-wall-clock cost accounting.
"""

from .cache import MemoizingObjective, RetryingObjective, canonical_key
from .executor import CampaignExecutor, run_search_spec, spec_seed_sequences
from .grid_search import GridSearch
from .local_search import HillClimbing, SimulatedAnnealing
from .random_search import RandomSearch
from .result import CampaignResult, SearchResult
from .runner import SearchCampaign, SearchSpec

__all__ = [
    "RandomSearch",
    "GridSearch",
    "HillClimbing",
    "SimulatedAnnealing",
    "SearchResult",
    "CampaignResult",
    "SearchCampaign",
    "SearchSpec",
    "CampaignExecutor",
    "run_search_spec",
    "spec_seed_sequences",
    "MemoizingObjective",
    "RetryingObjective",
    "canonical_key",
]
