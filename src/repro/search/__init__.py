"""Search engines and campaign orchestration.

Baseline engines (random, grid) plus the :class:`SearchCampaign` runner
that executes a *set* of searches as a strategy with the paper's
parallel-wall-clock cost accounting.  Every engine — including the
suggest-based samplers in :mod:`repro.search.samplers` (TPE,
CMA-ES-lite, QMC) — is published through the :class:`BaseSampler`
registry and selected by ``SearchSpec.engine`` name.
"""

from .cache import MemoizingObjective, RetryingObjective, canonical_key
from .evaluate import evaluate_config, schedule_makespan
from .executor import CampaignExecutor, run_search_spec, spec_seed_sequences
from .grid_search import GridSearch
from .local_search import HillClimbing, SimulatedAnnealing
from .random_search import RandomSearch
from .result import CampaignResult, SearchResult
from .runner import SearchCampaign, SearchSpec
from .samplers import (
    BaseSampler,
    CmaEsLiteSampler,
    QMCSampler,
    SamplerCapabilities,
    SamplerSearch,
    TPESampler,
    canonical_engine_name,
    register_sampler,
    registered_samplers,
    sampler_by_name,
)
from .scalarize import Scalarization, ScalarizedObjective
from .store import EvaluationStore, StoredEvaluation, space_fingerprint

__all__ = [
    "RandomSearch",
    "GridSearch",
    "HillClimbing",
    "SimulatedAnnealing",
    "SearchResult",
    "CampaignResult",
    "SearchCampaign",
    "SearchSpec",
    "CampaignExecutor",
    "run_search_spec",
    "spec_seed_sequences",
    "MemoizingObjective",
    "RetryingObjective",
    "canonical_key",
    "EvaluationStore",
    "StoredEvaluation",
    "space_fingerprint",
    "evaluate_config",
    "schedule_makespan",
    "BaseSampler",
    "SamplerCapabilities",
    "SamplerSearch",
    "TPESampler",
    "CmaEsLiteSampler",
    "QMCSampler",
    "register_sampler",
    "registered_samplers",
    "sampler_by_name",
    "canonical_engine_name",
    "Scalarization",
    "ScalarizedObjective",
]
