"""Campaign runner: execute a *set* of searches as one strategy.

The paper compares strategies that are sets of searches: fully independent
("G1, G2, G3, G4"), fully joint ("G1+G2+G3+G4"), and the methodology's
suggestion ("G1, G2, G3+G4" — three searches run in parallel with budgets
N = {50, 50, 100}).  :class:`SearchCampaign` takes a list of
:class:`SearchSpec` (space + objective + engine + budget) and produces a
:class:`CampaignResult` whose wall-clock is the maximum over the member
searches, mirroring the paper's parallel execution of independent searches.

Execution is delegated to :class:`repro.search.executor.CampaignExecutor`:
pass ``parallel=True`` to run members concurrently in a process pool (with
a deterministic in-process fallback for unpicklable objectives) and
``checkpoint_dir=`` to make every member crash-recoverable via append-only
JSONL evaluation checkpoints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from ..bo.optimizer import Objective
from ..bo.pool import EncodedPool
from ..faults.injection import FaultPlan
from ..space import SearchSpace
from .executor import CampaignExecutor, spec_seed_sequences
from .result import CampaignResult
from .scalarize import Scalarization

__all__ = ["SearchSpec", "SearchCampaign"]


@dataclass
class SearchSpec:
    """Description of one member search of a campaign.

    Attributes
    ----------
    space:
        The (sub)space to tune — typically produced by
        :meth:`repro.core.SearchPlanner` or :meth:`SearchSpace.subspace`.
    objective:
        Black-box objective for this search.  Decomposed strategies pass a
        per-routine objective (e.g. only Group 3+4's contribution); the
        joint strategy passes the full application.
    engine:
        ``"bo"`` (default), ``"random"``, or ``"grid"``.
    max_evaluations:
        Budget; ``None`` -> the paper's ``10 x dimensions``.
    engine_options:
        Extra keyword arguments forwarded to the engine constructor.
    max_retries / retry_backoff:
        Retry policy for objectives that raise transient errors: up to
        ``max_retries`` extra attempts with exponential backoff starting
        at ``retry_backoff`` seconds.  ``0`` (default) disables retries.
    memoize:
        Cache objective results keyed on the canonicalized configuration
        so repeated configurations (after a resume, or in grid/random
        engines over small spaces) are not re-evaluated.  Checkpointed
        PERMANENT/NUMERIC failures are remembered as poison keys and
        never paid for twice.
    wall_timeout:
        Real wall-clock deadline (seconds) per evaluation, enforced by a
        :class:`repro.faults.WatchdogObjective` — catches objectives that
        genuinely hang, which the engines' simulated
        ``evaluation_timeout`` cannot.  ``None`` disables.
    fault_plan:
        Optional :class:`repro.faults.FaultPlan` injected around the
        objective (innermost wrapper) for deterministic chaos testing.
    quarantine_threshold / quarantine_resolution:
        Circuit breaker configuration forwarded to engines that support
        it (bo, batch-bo, random): after ``quarantine_threshold``
        permanently-classified failures in one cell of the
        ``quarantine_resolution``-per-axis grid, the cell is quarantined
        and receives no further evaluations.  ``None`` disables.
    warm_start:
        Optional seed history: :class:`~repro.bo.history.Evaluation`
        records (typically Phase-1 observations projected onto this
        search's subspace by
        :func:`repro.insights.project_observations`) injected into the
        member's evaluation database before the engine starts.  The
        engine's resume path treats them exactly like replayed
        evaluations — the BO surrogate is fit on them and each seeded
        record replaces one evaluation of budget — so a warm-started
        search pays for strictly fewer fresh objective calls.  Records
        are injected only when the database starts empty (a resumed
        checkpoint already persisted them).
    candidate_pool:
        Optional fixed :class:`~repro.bo.EncodedPool` for the ``bo`` and
        ``batch-bo`` engines: proposals are scored against this
        pre-encoded candidate matrix instead of freshly sampled pools.
        When the campaign runs members in a process pool, the executor
        promotes the matrix into :mod:`multiprocessing.shared_memory`
        before pickling member payloads (workers attach to the same
        physical pages instead of receiving a copy each) and releases
        the segment afterwards; results are bit-identical either way.
    scalarize:
        Optional :class:`~repro.search.scalarize.Scalarization`: the
        engine minimizes ``objective_weight * runtime + sum(w_k *
        meta[k])`` instead of the raw returned value, with the secondary
        metrics (energy, cloud cost, ...) read from the objective's meta
        dict.  Applied as the innermost objective adapter; the raw value
        is preserved in each record's ``meta["raw_objective"]``.
        ``None`` (default) leaves the objective untouched.
    eval_store / eval_store_key / eval_provenance:
        Optional cross-job persistence: an
        :class:`~repro.search.store.EvaluationStore` shared with other
        jobs, the space fingerprint scoping this member's entries
        (computed via :func:`~repro.search.store.space_fingerprint` when
        omitted), and the provenance dict gating which stored records may
        be served (see the store module).  Setting a store implies
        memoization: the member's cache is backed by the store, misses
        poll it for concurrently appended measurements, and fresh
        measurements are written back — so a second job on the same
        space never re-evaluates a configuration.
    """

    space: SearchSpace
    objective: Objective
    engine: str = "bo"
    max_evaluations: int | None = None
    engine_options: dict[str, Any] = field(default_factory=dict)
    max_retries: int = 0
    retry_backoff: float = 0.05
    memoize: bool = False
    wall_timeout: float | None = None
    fault_plan: FaultPlan | None = None
    quarantine_threshold: int | None = None
    quarantine_resolution: int = 4
    warm_start: list | None = None
    candidate_pool: EncodedPool | None = None
    scalarize: Scalarization | None = None
    eval_store: Any = None
    eval_store_key: str | None = None
    eval_provenance: dict[str, Any] | None = None

    def budget(self) -> int:
        return (
            self.max_evaluations
            if self.max_evaluations is not None
            else 10 * self.space.dimension
        )


class SearchCampaign:
    """Run a list of member searches and aggregate them into one strategy
    result.

    Parameters
    ----------
    specs:
        Member searches.  They are logically concurrent; with
        ``parallel=True`` they also *run* concurrently (process pool),
        otherwise they execute sequentially and wall-clock is accounted
        as the max of their individual times.
    strategy:
        Label, e.g. ``"G1, G2, G3+G4"``.
    random_state:
        Seed.  Each member search gets an independent
        :class:`~numpy.random.SeedSequence` keyed by its space name (plus
        an occurrence ordinal for duplicates), so results do not depend
        on the member order and adding/removing one member never reseeds
        the others.
    parallel:
        Execute members concurrently via a process pool.  Falls back to
        the deterministic in-process loop when objectives cannot be
        pickled; both paths give bit-identical per-member results.
    n_workers:
        Pool width (``None`` -> ``os.cpu_count()`` capped at the member
        count).
    checkpoint_dir:
        Directory for per-member crash-recovery checkpoints; an existing
        checkpoint resumes the member instead of restarting it.
    member_timeout:
        Pool-level watchdog deadline (real seconds) per pooled member;
        see :class:`~repro.search.executor.CampaignExecutor`.
    telemetry:
        Optional :class:`repro.telemetry.Telemetry` — enables span
        tracing, per-member eval events, metrics, and live progress for
        this campaign.  A pure observer: results are bit-identical with
        telemetry on or off.  ``None`` (default) disables.
    """

    def __init__(
        self,
        specs: Sequence[SearchSpec],
        *,
        strategy: str = "campaign",
        random_state: int | np.random.Generator | None = None,
        parallel: bool = False,
        n_workers: int | None = None,
        checkpoint_dir: str | None = None,
        member_timeout: float | None = None,
        telemetry=None,
    ):
        if not specs:
            raise ValueError("campaign needs at least one search spec")
        self.specs = list(specs)
        self.strategy = strategy
        self.parallel = bool(parallel)
        self.n_workers = n_workers
        self.checkpoint_dir = checkpoint_dir
        self.member_timeout = member_timeout
        self.telemetry = telemetry
        self._seeds = spec_seed_sequences(self.specs, random_state)

    def run(self) -> CampaignResult:
        """Execute every member search; aggregate into a CampaignResult."""
        executor = CampaignExecutor(
            n_workers=self.n_workers,
            checkpoint_dir=self.checkpoint_dir,
            member_timeout=self.member_timeout,
            telemetry=self.telemetry,
        )
        return executor.run(
            self.specs,
            self._seeds,
            strategy=self.strategy,
            parallel=self.parallel,
        )
