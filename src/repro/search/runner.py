"""Campaign runner: execute a *set* of searches as one strategy.

The paper compares strategies that are sets of searches: fully independent
("G1, G2, G3, G4"), fully joint ("G1+G2+G3+G4"), and the methodology's
suggestion ("G1, G2, G3+G4" — three searches run in parallel with budgets
N = {50, 50, 100}).  :class:`SearchCampaign` takes a list of
:class:`SearchSpec` (space + objective + engine + budget) and produces a
:class:`CampaignResult` whose wall-clock is the maximum over the member
searches, mirroring the paper's parallel execution of independent searches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from ..bo.optimizer import BayesianOptimizer, Objective
from ..space import SearchSpace
from .grid_search import GridSearch
from .random_search import RandomSearch
from .result import CampaignResult, SearchResult

__all__ = ["SearchSpec", "SearchCampaign"]


@dataclass
class SearchSpec:
    """Description of one member search of a campaign.

    Attributes
    ----------
    space:
        The (sub)space to tune — typically produced by
        :meth:`repro.core.SearchPlanner` or :meth:`SearchSpace.subspace`.
    objective:
        Black-box objective for this search.  Decomposed strategies pass a
        per-routine objective (e.g. only Group 3+4's contribution); the
        joint strategy passes the full application.
    engine:
        ``"bo"`` (default), ``"random"``, or ``"grid"``.
    max_evaluations:
        Budget; ``None`` -> the paper's ``10 x dimensions``.
    engine_options:
        Extra keyword arguments forwarded to the engine constructor.
    """

    space: SearchSpace
    objective: Objective
    engine: str = "bo"
    max_evaluations: int | None = None
    engine_options: dict[str, Any] = field(default_factory=dict)

    def budget(self) -> int:
        return (
            self.max_evaluations
            if self.max_evaluations is not None
            else 10 * self.space.dimension
        )


class SearchCampaign:
    """Run a list of member searches and aggregate them into one strategy
    result.

    Parameters
    ----------
    specs:
        Member searches.  They are logically concurrent; the runner
        executes them sequentially but accounts wall-clock as the max of
        their individual simulated search times.
    strategy:
        Label, e.g. ``"G1, G2, G3+G4"``.
    random_state:
        Seed; each member search gets an independent child generator so
        results do not depend on the member order.
    """

    def __init__(
        self,
        specs: Sequence[SearchSpec],
        *,
        strategy: str = "campaign",
        random_state: int | np.random.Generator | None = None,
    ):
        if not specs:
            raise ValueError("campaign needs at least one search spec")
        self.specs = list(specs)
        self.strategy = strategy
        base = (
            random_state
            if isinstance(random_state, np.random.Generator)
            else np.random.default_rng(random_state)
        )
        self._child_rngs = [np.random.default_rng(s) for s in base.integers(0, 2**63, len(specs))]

    def _run_one(self, spec: SearchSpec, rng: np.random.Generator) -> SearchResult:
        import time as _time

        t0 = _time.perf_counter()
        result = self._dispatch(spec, rng)
        result.measured_time = _time.perf_counter() - t0
        return result

    def _dispatch(self, spec: SearchSpec, rng: np.random.Generator) -> SearchResult:
        if spec.engine == "bo":
            opt = BayesianOptimizer(
                spec.space,
                spec.objective,
                max_evaluations=spec.budget(),
                random_state=rng,
                **spec.engine_options,
            )
            r = opt.run()
            return SearchResult(
                name=spec.space.name,
                engine="bo",
                best_config=r.best_config,
                best_objective=r.best_objective,
                search_time=r.search_time,
                n_evaluations=r.n_evaluations,
                database=r.database,
                tuned_names=tuple(spec.space.names),
            )
        if spec.engine == "random":
            rs = RandomSearch(
                spec.space,
                spec.objective,
                max_evaluations=spec.budget(),
                random_state=rng,
                **spec.engine_options,
            )
            result = rs.run()
            result.tuned_names = tuple(spec.space.names)
            return result
        if spec.engine == "grid":
            gs = GridSearch(
                spec.space,
                spec.objective,
                max_evaluations=spec.budget(),
                **spec.engine_options,
            )
            result = gs.run()
            result.tuned_names = tuple(spec.space.names)
            return result
        if spec.engine == "batch-bo":
            from ..bo.batch import BatchBayesianOptimizer

            opt = BatchBayesianOptimizer(
                spec.space,
                spec.objective,
                max_evaluations=spec.budget(),
                random_state=rng,
                **spec.engine_options,
            )
            r = opt.run()
            return SearchResult(
                name=spec.space.name,
                engine="batch-bo",
                best_config=r.best_config,
                best_objective=r.best_objective,
                search_time=r.search_time,
                n_evaluations=r.n_evaluations,
                database=r.database,
                tuned_names=tuple(spec.space.names),
            )
        if spec.engine in ("hillclimb", "anneal"):
            from .local_search import HillClimbing, SimulatedAnnealing

            cls = HillClimbing if spec.engine == "hillclimb" else SimulatedAnnealing
            ls = cls(
                spec.space,
                spec.objective,
                max_evaluations=spec.budget(),
                random_state=rng,
                **spec.engine_options,
            )
            return ls.run()
        raise ValueError(f"unknown engine {spec.engine!r}")

    def run(self) -> CampaignResult:
        """Execute every member search; aggregate into a CampaignResult."""
        result = CampaignResult(strategy=self.strategy)
        for spec, rng in zip(self.specs, self._child_rngs):
            result.searches.append(self._run_one(spec, rng))
        return result
