"""Lease-supervised job execution with heartbeats, fencing, and drain.

The supervisor is the single writer of the :class:`JobRegistry` and the
parent of every worker.  One job at a time per worker slot:

1. **Lease** — ``queued -> leased`` bumps the job's epoch; the epoch is
   written to the job workdir's fence file *before* the worker starts,
   so the worker's guard (checked before every objective evaluation and
   before publishing) proves it still owns the lease.
2. **Run** — the worker process executes :func:`repro.service.jobs.run_job`
   with every checkpoint scoped under the workdir, heartbeating a
   counter file from a daemon thread.
3. **Supervise** — the supervisor polls worker liveness and heartbeats.
   A worker that misses ``max_missed`` heartbeat intervals is SIGKILLed
   *first*, then the job is requeued with a bumped epoch and the fence
   rewritten — kill-then-fence, so even an unkillable zombie (SIGKILL
   lost to an unreachable node in a real deployment) is fenced out of
   the checkpoint scope before a successor leases the job.
4. **Collect** — exit code 0 plus a result carrying the lease's epoch is
   ``done``; a drained worker requeues; a fenced worker is dropped (its
   successor owns the job); anything else is ``worker_lost`` and
   requeues until the attempt cap, then fails.

**Drain** (SIGTERM): stop leasing, touch the drain flag that every
worker guard polls, let in-flight evaluations finish and checkpoint,
requeue the drained jobs, exit cleanly.  Restarting the service resumes
them bit-identically from their checkpoints.

Recovery at startup requeues orphaned leases (a supervisor that died
hard) — the WAL knows exactly which jobs were in flight.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import sys
import threading
import time
from dataclasses import dataclass
from typing import Any

from ..log import get_logger
from ..telemetry import NULL_TRACER, MetricsRegistry
from .admission import AdmissionController, AdmissionDecision
from .events import ServiceEventBus, job_metrics_path
from .jobs import (
    ERROR_NAME,
    RESULT_NAME,
    DrainRequested,
    JobGuard,
    JobSpec,
    run_job,
    write_fence,
)
from .pool import (
    EXIT_DONE,
    EXIT_DRAINED,
    EXIT_ERROR,
    EXIT_FENCED,
    HEARTBEAT_NAME,
    SLOT_LOST,
    SharedWorkerPool,
    _job_telemetry,
    execute_job,
)
from .registry import JobRecord, JobRegistry, JobState

__all__ = ["Supervisor", "Lease", "DRAIN_NAME"]

logger = get_logger("service")

DRAIN_NAME = "drain"


def _read_heartbeat(path: str) -> int:
    try:
        with open(path) as f:
            return int(f.read().strip() or 0)
    except (OSError, ValueError):
        return 0


def _worker_main(
    spec_dict: dict[str, Any],
    workdir: str,
    epoch: int,
    heartbeat_interval: float,
    drain_path: str,
    job_traces: bool = True,
    trace_max_bytes: int | None = None,
    eval_store: str | None = None,
) -> None:
    """Per-job worker process entry: run one attempt, exit with its code.

    The body lives in :func:`repro.service.pool.execute_job` — the same
    code a pooled worker runs per task — so both worker modes share one
    heartbeat/guard/publication implementation.
    """
    sys.exit(
        execute_job(
            spec_dict, workdir, epoch, heartbeat_interval, drain_path,
            job_traces, trace_max_bytes, eval_store,
        )
    )


@dataclass
class Lease:
    """One in-flight (job, worker) binding.

    ``slot`` is set in shared-pool mode: the lease then binds the job to
    a pool *slot* (whose long-lived process backs ``process``) instead
    of a dedicated per-job worker.
    """

    job_id: str
    epoch: int
    workdir: str
    process: Any = None
    started: float = 0.0
    last_beat: int = 0
    last_beat_at: float = 0.0
    cancel_requested: bool = False
    slot: Any = None

    @property
    def pid(self) -> int | None:
        return self.process.pid if self.process is not None else None


class Supervisor:
    """Run registry jobs on worker processes under supervised leases.

    Parameters
    ----------
    registry:
        The (single-writer) job registry this supervisor owns.
    jobs_dir:
        Root for per-job workdirs (``<jobs_dir>/<job_id>/``) and the
        drain flag file.
    admission:
        Optional :class:`AdmissionController`; ``None`` admits
        everything (still bounded by registry/queue mechanics).
    workers:
        Concurrent worker-process slots.
    heartbeat_interval / max_missed:
        Workers heartbeat every ``heartbeat_interval`` seconds; a lease
        whose heartbeat has not advanced for ``max_missed`` consecutive
        intervals is expired (kill -> fence -> requeue).
    max_attempts:
        Lease attempts per job before it is failed permanently
        (counts the first attempt, so ``max_attempts=1`` disables
        requeueing).
    inline:
        Run jobs synchronously in-process instead of spawning workers —
        no heartbeats, no kill-based supervision.  This is the overhead
        baseline mode (``benchmarks/bench_service_overhead.py``) and is
        also what makes the full service pipeline measurable without
        process noise.
    telemetry:
        Optional :class:`repro.telemetry.Telemetry`; job lifecycle
        events are emitted on its ``service`` scope and queue/lease
        metrics on its registry.
    job_traces:
        Write a per-job JSONL trace (``<workdir>/trace/job.trace.jsonl``)
        plus span-latency histograms for every worker.  This is what the
        SSE event stream and ``GET /metrics`` observe; disable it to get
        the trace-free baseline the overhead benchmarks compare against.
    job_trace_max_bytes:
        Optional rotation threshold for per-job trace files.
    pool_size:
        Run jobs on a :class:`~repro.service.pool.SharedWorkerPool` of
        this many long-lived forked workers instead of forking one
        process per job.  Implies ``workers = pool_size`` concurrent
        leases.  Fencing, heartbeats, and kill-then-fence expiry are
        unchanged (an expired pooled lease SIGKILLs the slot's worker
        and respawns the slot); results are bit-identical to per-job
        workers.  ``None`` (default) keeps per-job processes.
    eval_store:
        Optional path to the service-wide cross-job
        :class:`~repro.search.EvaluationStore` JSONL file.  Every job
        (pooled, per-job, or inline) pre-seeds its memoization cache
        from the store and writes fresh measurements back, so jobs on
        the same space never pay twice for a configuration.
    """

    def __init__(
        self,
        registry: JobRegistry,
        *,
        jobs_dir: str | os.PathLike,
        admission: AdmissionController | None = None,
        workers: int = 2,
        heartbeat_interval: float = 0.25,
        max_missed: int = 8,
        max_attempts: int = 5,
        inline: bool = False,
        telemetry=None,
        job_traces: bool = True,
        job_trace_max_bytes: int | None = None,
        pool_size: int | None = None,
        eval_store: str | os.PathLike | None = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if pool_size is not None and pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        if pool_size is not None and inline:
            raise ValueError("pool_size and inline are mutually exclusive")
        self.registry = registry
        self.jobs_dir = os.fspath(jobs_dir)
        os.makedirs(self.jobs_dir, exist_ok=True)
        self.admission = admission
        self.workers = int(pool_size) if pool_size is not None else int(workers)
        self.eval_store = (
            os.fspath(eval_store) if eval_store is not None else None
        )
        self.heartbeat_interval = float(heartbeat_interval)
        self.max_missed = int(max_missed)
        self.max_attempts = int(max_attempts)
        self.inline = bool(inline)
        self.telemetry = telemetry
        self.job_traces = bool(job_traces)
        self.job_trace_max_bytes = job_trace_max_bytes
        self.tracer = telemetry.tracer("service") if telemetry else NULL_TRACER
        # Service-level counters exist regardless of tracing: GET /metrics
        # must report queue depth / outcomes even on an untraced service.
        self.metrics = telemetry.metrics if telemetry else MetricsRegistry()
        self.drain_path = os.path.join(self.jobs_dir, DRAIN_NAME)
        self._drain = threading.Event()
        if os.path.exists(self.drain_path):
            # A previous drain flag must not leak into this incarnation.
            os.unlink(self.drain_path)
        self._lock = threading.RLock()
        self._leases: dict[str, Lease] = {}
        self._mp = multiprocessing.get_context("fork")
        self.pool: SharedWorkerPool | None = None
        if pool_size is not None:
            # Workers fork lazily on the first lease (SharedWorkerPool
            # .start() is idempotent and called from acquire()).
            self.pool = SharedWorkerPool(
                int(pool_size),
                heartbeat_interval=self.heartbeat_interval,
                drain_path=self.drain_path,
                job_traces=self.job_traces,
                trace_max_bytes=self.job_trace_max_bytes,
                eval_store=self.eval_store,
                mp_context=self._mp,
            )
        # Metrics folded in from finished jobs (workers publish
        # snapshots; inline jobs merge their registries directly).
        self._job_metrics = MetricsRegistry()
        self._event_bus: ServiceEventBus | None = None

    # -- submission (called from server threads too) -------------------
    def submit(self, spec: JobSpec) -> tuple[JobRecord, AdmissionDecision]:
        """Admission-check and register one job.  Rejections are recorded
        in the registry (state ``rejected``) — explicit, never silent."""
        with self._lock:
            if self.admission is not None:
                decision = self.admission.decide(
                    spec, self.registry, draining=self.draining
                )
            elif self.draining:
                decision = AdmissionDecision(
                    admitted=False, reason="draining",
                    detail="service is draining; not accepting jobs",
                )
            else:
                decision = AdmissionDecision(admitted=True)
            if decision.admitted:
                rec = self.registry.submit(spec)
                self.tracer.event(
                    "job_submitted", job=rec.job_id, tenant=rec.spec.tenant,
                    kind=rec.spec.kind,
                )
            else:
                rec = self.registry.submit(spec, reject_reason=decision.reason)
                self.tracer.event(
                    "job_rejected", job=rec.job_id, tenant=rec.spec.tenant,
                    reason=decision.reason,
                )
                self.metrics.counter(
                    "service_rejections", reason=decision.reason
                ).inc()
            self._gauge_queue_depth()
            return rec, decision

    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a job: queued jobs immediately, running jobs at the
        next supervision tick (fence, kill, record ``cancelled``)."""
        with self._lock:
            rec = self.registry.get(job_id)
            if rec.state == JobState.QUEUED:
                rec = self.registry.transition(
                    job_id, JobState.CANCELLED, reason="cancelled"
                )
                self.tracer.event("job_cancelled", job=job_id)
                return rec
            lease = self._leases.get(job_id)
            if lease is not None:
                lease.cancel_requested = True
            return rec

    # -- drain ---------------------------------------------------------
    @property
    def draining(self) -> bool:
        return self._drain.is_set()

    def request_drain(self) -> None:
        """Stop leasing and signal every worker guard to stop cleanly."""
        if self._drain.is_set():
            return
        self._drain.set()
        with open(self.drain_path, "w") as f:
            f.write("drain\n")
        self.tracer.event("drain_started")
        logger.info("drain requested: no new leases; waiting for workers")

    def install_signal_handlers(self) -> None:
        """SIGTERM -> graceful drain (main thread only)."""
        signal.signal(signal.SIGTERM, lambda signum, frame: self.request_drain())

    # -- supervision loop ----------------------------------------------
    def active_leases(self) -> list[Lease]:
        with self._lock:
            return list(self._leases.values())

    def tick(self) -> bool:
        """One supervision step: collect/expire leases, lease new jobs.

        Returns whether any work remains (leases active or jobs queued).
        """
        with self._lock:
            self._poll_leases()
            if not self.draining:
                while len(self._leases) < self.workers:
                    if not self._lease_next():
                        break
            self._gauge_queue_depth()
            return bool(self._leases) or self.registry.queue_depth() > 0

    def run(
        self,
        *,
        drain_when_idle: bool = False,
        poll_interval: float = 0.05,
        max_seconds: float | None = None,
    ) -> bool:
        """Supervise until drained (or idle, with ``drain_when_idle``).

        Returns ``True`` on a clean exit, ``False`` on ``max_seconds``
        expiry (leases may still be active).
        """
        started = time.monotonic()
        while True:
            busy = self.tick()
            if self.draining and not self._leases:
                self.tracer.event("drained")
                logger.info("drained: all workers stopped, queue persisted")
                self.close_pool()
                return True
            if drain_when_idle and not busy and not self.draining:
                self.close_pool()
                return True
            if (
                max_seconds is not None
                and time.monotonic() - started > max_seconds
            ):
                return False
            time.sleep(poll_interval)

    # -- leasing -------------------------------------------------------
    def _workdir(self, job_id: str) -> str:
        return os.path.join(self.jobs_dir, job_id)

    def recover(self) -> list[JobRecord]:
        """Requeue orphaned leases and re-fence their workdirs."""
        orphans = self.registry.recover_orphans()
        for rec in orphans:
            workdir = self._workdir(rec.job_id)
            if os.path.isdir(workdir):
                write_fence(workdir, rec.epoch)
            self.tracer.event(
                "job_requeued", job=rec.job_id, reason="orphaned",
                epoch=rec.epoch,
            )
            logger.info("requeued orphaned job %s (epoch %d)", rec.job_id, rec.epoch)
        return orphans

    def _lease_next(self) -> bool:
        queued = self.registry.queued()
        if not queued:
            return False
        rec = self.registry.lease(queued[0].job_id, owner=f"pid-{os.getpid()}")
        workdir = self._workdir(rec.job_id)
        os.makedirs(workdir, exist_ok=True)
        resumed = os.path.isdir(os.path.join(workdir, "checkpoints")) or (
            os.path.isdir(os.path.join(workdir, "analysis"))
        )
        # Fence *before* the worker starts: the worker's first guard
        # check must already see its own epoch.
        write_fence(workdir, rec.epoch)
        hb_path = os.path.join(workdir, HEARTBEAT_NAME)
        if os.path.exists(hb_path):
            os.unlink(hb_path)
        self.tracer.event(
            "job_leased", job=rec.job_id, epoch=rec.epoch, attempt=rec.attempt,
        )
        if resumed:
            self.tracer.event("job_resumed", job=rec.job_id, epoch=rec.epoch)
        if self.inline:
            self._run_inline(rec, workdir)
            return True
        slot = None
        if self.pool is not None:
            slot = self.pool.acquire()
            if slot is None:  # pragma: no cover - leases are capped at size
                requeued = self.registry.requeue(rec.job_id, "no_idle_slot")
                write_fence(workdir, requeued.epoch)
                return False
            self.pool.submit(
                slot, rec.job_id, rec.spec.to_dict(), workdir, rec.epoch
            )
            proc = slot.process
        else:
            proc = self._mp.Process(
                target=_worker_main,
                args=(
                    rec.spec.to_dict(), workdir, rec.epoch,
                    self.heartbeat_interval, self.drain_path,
                    self.job_traces, self.job_trace_max_bytes,
                    self.eval_store,
                ),
                name=f"repro-job-{rec.job_id}",
            )
            proc.start()
        self.registry.transition(rec.job_id, JobState.RUNNING, owner=rec.owner)
        now = time.monotonic()
        self._leases[rec.job_id] = Lease(
            job_id=rec.job_id, epoch=rec.epoch, workdir=workdir,
            process=proc, started=now, last_beat_at=now, slot=slot,
        )
        return True

    def _run_inline(self, rec: JobRecord, workdir: str) -> None:
        self.registry.transition(rec.job_id, JobState.RUNNING, owner=rec.owner)
        guard = JobGuard(
            workdir=workdir, epoch=rec.epoch, drain_path=self.drain_path
        )
        job_telemetry = (
            _job_telemetry(workdir, self.job_trace_max_bytes)
            if self.job_traces else None
        )
        try:
            # Trace close + metrics fold-in happen in the inner finally,
            # i.e. *before* any terminal registry transition below: a
            # live tailer keyed on the WAL's terminal event must find
            # the trace complete when it performs its final drain.
            try:
                result = run_job(
                    rec.spec, workdir, guard=guard, telemetry=job_telemetry,
                    eval_store=self.eval_store,
                )
                result["epoch"] = rec.epoch
            finally:
                if job_telemetry is not None:
                    job_telemetry.close()
                    self._job_metrics.merge(job_telemetry.metrics)
        except DrainRequested:
            requeued = self.registry.requeue(rec.job_id, "drained")
            write_fence(workdir, requeued.epoch)
            self.metrics.counter("service_requeues", reason="drained").inc()
            self.tracer.event(
                "job_requeued", job=rec.job_id, reason="drained",
                epoch=requeued.epoch,
            )
            return
        except Exception as exc:  # noqa: BLE001 - terminal job failure
            self.registry.transition(
                rec.job_id, JobState.FAILED, error=repr(exc)
            )
            self.tracer.event(
                "job_failed", job=rec.job_id, reason="error", error=repr(exc)
            )
            self.metrics.counter("service_jobs_failed", reason="error").inc()
            if self.admission is not None:
                self.admission.record_failure(rec.spec.tenant)
            return
        self.registry.transition(rec.job_id, JobState.DONE, result=result)
        self.tracer.event("job_done", job=rec.job_id, epoch=rec.epoch)
        self.metrics.counter("service_jobs_done").inc()

    # -- collection ----------------------------------------------------
    def _poll_leases(self) -> None:
        for lease in list(self._leases.values()):
            if lease.slot is not None:
                self._poll_pooled_lease(lease)
                continue
            proc = lease.process
            if proc.is_alive():
                if lease.cancel_requested:
                    self._expire(lease, cancel=True)
                    continue
                self._check_heartbeat(lease)
                continue
            proc.join()
            del self._leases[lease.job_id]
            self._collect(lease, proc.exitcode)

    def _poll_pooled_lease(self, lease: Lease) -> None:
        """Pooled collection: the slot reports an exit-protocol code over
        its pipe instead of a process exit status; everything downstream
        (:meth:`_collect`) is shared with per-job workers."""
        outcome = self.pool.poll(lease.slot)
        if outcome is None:
            if lease.cancel_requested:
                self._expire(lease, cancel=True)
                return
            self._check_heartbeat(lease)
            return
        del self._leases[lease.job_id]
        slot = lease.slot
        self.pool.release(slot)
        if outcome == SLOT_LOST:
            # The slot's worker died without reporting (SIGKILL, OOM):
            # heal the slot, then treat it as a crashed worker.
            self.pool.ensure(slot)
            self.metrics.counter(
                "service_pool_respawns", reason="worker_lost"
            ).inc()
            self.tracer.event(
                "pool_slot_respawned", slot=slot.index, reason="worker_lost",
            )
            self._collect(lease, None)
            return
        self._collect(lease, outcome)

    def _check_heartbeat(self, lease: Lease) -> None:
        beat = _read_heartbeat(os.path.join(lease.workdir, HEARTBEAT_NAME))
        now = time.monotonic()
        if beat != lease.last_beat:
            lease.last_beat = beat
            lease.last_beat_at = now
            return
        if now - lease.last_beat_at > self.max_missed * self.heartbeat_interval:
            logger.warning(
                "lease expired: job %s missed %d heartbeats (pid %s)",
                lease.job_id, self.max_missed, lease.pid,
            )
            self.tracer.event(
                "lease_expired", job=lease.job_id, epoch=lease.epoch,
                missed=self.max_missed,
            )
            self.metrics.counter("service_leases_expired").inc()
            self._expire(lease)

    def _expire(self, lease: Lease, *, cancel: bool = False) -> None:
        """Kill-then-fence: SIGKILL the worker, then bump the epoch (in
        the registry *and* the fence file) so any straggler that somehow
        survives is rejected at its next guard check or publish.

        In pool mode the slot's long-lived worker is what gets killed —
        same SIGKILL, same ordering — and the slot respawns with a fresh
        process and pipe, so one expired lease never poisons the pool."""
        if lease.slot is not None:
            self.pool.kill(lease.slot)
            self.pool.release(lease.slot)
            self.metrics.counter(
                "service_pool_respawns", reason="expired"
            ).inc()
            self.tracer.event(
                "pool_slot_respawned", slot=lease.slot.index, reason="expired",
            )
        else:
            proc = lease.process
            if proc.is_alive():
                proc.kill()
            proc.join()
        del self._leases[lease.job_id]
        if cancel:
            self.registry.transition(
                lease.job_id, JobState.CANCELLED, reason="cancelled"
            )
            write_fence(lease.workdir, lease.epoch + 1)
            self.tracer.event("job_cancelled", job=lease.job_id)
            return
        self._requeue_or_fail(lease, "lease_expired")

    def _requeue_or_fail(self, lease: Lease, reason: str) -> None:
        rec = self.registry.get(lease.job_id)
        if reason != "drained" and rec.attempt >= self.max_attempts:
            self.registry.transition(
                lease.job_id, JobState.FAILED,
                error=f"{reason} after {rec.attempt} attempts",
            )
            write_fence(lease.workdir, lease.epoch + 1)
            self.tracer.event(
                "job_failed", job=lease.job_id, reason=reason,
                attempts=rec.attempt,
            )
            self.metrics.counter("service_jobs_failed", reason=reason).inc()
            if self.admission is not None:
                self.admission.record_failure(rec.spec.tenant)
            return
        requeued = self.registry.requeue(lease.job_id, reason)
        write_fence(lease.workdir, requeued.epoch)
        self.metrics.counter("service_requeues", reason=reason).inc()
        self.tracer.event(
            "job_requeued", job=lease.job_id, reason=reason,
            epoch=requeued.epoch,
        )

    def _collect(self, lease: Lease, exitcode: int | None) -> None:
        rec = self.registry.get(lease.job_id)
        if rec.epoch != lease.epoch or rec.state != JobState.RUNNING:
            # Superseded while exiting (expiry raced completion); the
            # current epoch's owner is responsible for the job now.
            return
        if exitcode == EXIT_DONE:
            result = self._read_result(lease)
            if result is not None and int(result.get("epoch", -1)) == lease.epoch:
                self._merge_workdir_metrics(lease.workdir)
                self.registry.transition(
                    lease.job_id, JobState.DONE, result=result
                )
                self.tracer.event(
                    "job_done", job=lease.job_id, epoch=lease.epoch,
                )
                self.metrics.counter("service_jobs_done").inc()
                return
            # Exit 0 without a fresh result: treat as a lost worker.
            self._requeue_or_fail(lease, "worker_lost")
            return
        if exitcode == EXIT_DRAINED:
            self._requeue_or_fail(lease, "drained")
            return
        if exitcode == EXIT_FENCED:
            # The worker observed it lost its lease; with the registry
            # still naming this epoch RUNNING (checked above) the job
            # must go back to the queue rather than hang.
            self._requeue_or_fail(lease, "fenced")
            return
        error = self._read_error(lease)
        if exitcode == EXIT_ERROR and error is not None:
            self._merge_workdir_metrics(lease.workdir)
            rec = self.registry.get(lease.job_id)
            self.registry.transition(
                lease.job_id, JobState.FAILED, error=error["error"]
            )
            write_fence(lease.workdir, lease.epoch + 1)
            self.tracer.event(
                "job_failed", job=lease.job_id, reason="error",
                error=error["error"],
            )
            self.metrics.counter("service_jobs_failed", reason="error").inc()
            if self.admission is not None:
                self.admission.record_failure(rec.spec.tenant)
            return
        # SIGKILLed / crashed without a report: worker lost.
        self._requeue_or_fail(lease, "worker_lost")

    def _read_result(self, lease: Lease) -> dict[str, Any] | None:
        path = os.path.join(lease.workdir, RESULT_NAME)
        try:
            with open(path) as f:
                return json.load(f)
        except (OSError, ValueError):
            return None

    def _read_error(self, lease: Lease) -> dict[str, Any] | None:
        path = os.path.join(lease.workdir, ERROR_NAME)
        try:
            with open(path) as f:
                data = json.load(f)
        except (OSError, ValueError):
            return None
        return data if int(data.get("epoch", -1)) == lease.epoch else None

    # -- observability ---------------------------------------------------
    def _merge_workdir_metrics(self, workdir: str) -> None:
        """Fold a worker's published metrics snapshot into the service's
        job-metrics registry.  Only called on terminal outcomes (done or
        permanently failed) so requeued attempts are not double-counted
        — the worker's final snapshot already covers the whole attempt."""
        try:
            with open(job_metrics_path(workdir)) as f:
                snap = json.load(f)
        except (OSError, ValueError):
            return
        try:
            self._job_metrics.merge_snapshot(snap)
        except (ValueError, KeyError, TypeError):  # malformed snapshot
            logger.warning("discarding malformed metrics snapshot in %s", workdir)

    def metrics_snapshot(self) -> dict[str, Any]:
        """Merged service-wide metrics: the supervisor's own registry
        (queue depth, jobs done/failed/rejected, lease expiries, retry
        counts), metrics folded in from finished jobs, and the latest
        published snapshot from every live worker.  Safe to call from
        server threads."""
        merged = MetricsRegistry()
        with self._lock:
            merged.merge(self.metrics)
            merged.merge(self._job_metrics)
            live = [lease.workdir for lease in self._leases.values()]
        for workdir in live:
            try:
                with open(job_metrics_path(workdir)) as f:
                    snap = json.load(f)
            except (OSError, ValueError):
                continue
            try:
                merged.merge_snapshot(snap)
            except (ValueError, KeyError, TypeError):
                continue
        return merged.snapshot()

    def event_bus(self) -> ServiceEventBus:
        """The service-wide event bus, created on first use.  Until this
        is called no bus, tailer, or poller thread exists — the
        zero-overhead guarantee for unobserved services."""
        with self._lock:
            if self._event_bus is None:
                self._event_bus = ServiceEventBus(
                    self.registry, self.jobs_dir
                )
            return self._event_bus

    def close_event_bus(self) -> None:
        """Close the bus (if one was created), waking every subscriber."""
        with self._lock:
            bus, self._event_bus = self._event_bus, None
        if bus is not None:
            bus.close()

    def close_pool(self) -> None:
        """Stop the shared pool's workers (no-op without a pool, or when
        it was never started).  A later lease restarts it — the pool
        forks lazily — so this is safe to call between bursts of work."""
        with self._lock:
            if self.pool is not None:
                self.pool.close()

    # ------------------------------------------------------------------
    def _gauge_queue_depth(self) -> None:
        self.metrics.gauge("service_queue_depth").set(
            self.registry.queue_depth()
        )
        if self.pool is not None:
            self.metrics.gauge("service_pool_slots", state="busy").set(
                self.pool.busy_count
            )
            self.metrics.gauge("service_pool_slots", state="idle").set(
                self.pool.idle_count
            )
