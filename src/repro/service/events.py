"""Service-wide event bus + cross-job trace aggregation.

The observability plane of the job service (``docs/observability.md``):
a :class:`ServiceEventBus` tails the registry WAL and every job's trace
file — read-only, from a thread that exists only while someone is
subscribed — normalizes what it finds into a small vocabulary of
service events, and fans them out with monotonically increasing cursors
through :class:`repro.telemetry.stream.EventBus`:

======================  ================================================
event                   meaning / payload highlights
======================  ================================================
``job_state``           lifecycle transition from the WAL (``state``,
                        ``reason``, ``epoch``; ``snapshot: true`` for
                        the catch-up summary of jobs that predate the
                        bus)
``tune_start``          a member search opened (``scope``, ``budget``,
                        ``engine``, ``strategy``, ``resumed``)
``combo_result``        one evaluation (``seq``, ``objective``,
                        ``cost``, ``status``, ``best``, ``config_hash``)
``job_progress``        per poll batch with fresh evaluations: ``done``,
                        ``budget``, ``best``, ``eta_seconds``,
                        ``throughput`` from a headless ProgressReporter
``job_done``            terminal transition (``state`` one of done /
                        failed / cancelled / rejected, plus
                        ``best_objective`` + ``fingerprint`` on success)
======================  ================================================

Ordering is guaranteed per job: the worker closes its trace sink before
publishing its result, and the supervisor records the terminal
transition after that — so the bus, which drains a job's trace once
more before emitting ``job_done``, never announces completion with
evaluations still unstreamed.  Evaluations are deduplicated by
``(scope, seq)`` high-water mark, the same key the trace sink dedups
on, so WAL compaction or a tailer losing a rotation to retention can
never replay a ``combo_result``.

The module also hosts the *offline* half of the plane:
:func:`load_registry_records` (a read-only snapshot+WAL reader that
never repairs or appends — safe against a live single-writer registry)
and :class:`ServiceReport` (``repro report --service DIR``), which
merges every job's :class:`~repro.telemetry.report.TraceReport` into
one cross-job stage-attribution table.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..log import get_logger
from ..profiling.timers import TimingReport
from ..telemetry.progress import ProgressReporter
from ..telemetry.report import TraceReport
from ..telemetry.stream import EventBus, JsonlTailer, Subscription
from .registry import (
    JobRecord,
    JobState,
    RegistryError,
    SNAPSHOT_NAME,
    WAL_NAME,
    replay_wal_event,
)

__all__ = [
    "ServiceEventBus",
    "ServiceReport",
    "job_trace_path",
    "job_metrics_path",
    "load_registry_records",
]

logger = get_logger("service")

TRACE_DIRNAME = "trace"
TRACE_FILENAME = "job.trace.jsonl"
METRICS_FILENAME = "metrics.json"


def job_trace_path(workdir: str | os.PathLike) -> str:
    """The per-job JSONL trace file under a job workdir."""
    return os.path.join(os.fspath(workdir), TRACE_DIRNAME, TRACE_FILENAME)


def job_metrics_path(workdir: str | os.PathLike) -> str:
    """The per-job live metrics snapshot a worker publishes each beat."""
    return os.path.join(os.fspath(workdir), METRICS_FILENAME)


class _JobStream:
    """Tailer + headless progress model for one job's trace family."""

    __slots__ = (
        "job_id", "tailer", "progress", "pending_done", "finished",
        "_eval_seen",
    )

    def __init__(self, job_id: str, workdir: str):
        self.job_id = job_id
        self.tailer = JsonlTailer(job_trace_path(workdir))
        self.progress = ProgressReporter(render=False, interval=0.0)
        self.pending_done: dict[str, Any] | None = None
        self.finished = False
        self._eval_seen: dict[str, int] = {}

    def drain(self) -> list[dict[str, Any]]:
        """Map new trace lines to service events (dedup'd, in order)."""
        out: list[dict[str, Any]] = []
        fresh_evals = False
        for ev in self.tailer.poll():
            kind = ev.get("kind")
            if kind == "eval":
                scope = str(ev.get("scope", ""))
                seq = int(ev.get("seq", -1))
                if seq <= self._eval_seen.get(scope, -1):
                    continue  # replayed via resume/rotation loss
                self._eval_seen[scope] = seq
                fresh_evals = True
                self.progress.emit(ev)
                data = {
                    "event": "combo_result",
                    "job": self.job_id,
                    "scope": scope,
                    "seq": seq,
                    "objective": ev.get("objective"),
                    "cost": ev.get("cost"),
                    "status": ev.get("status"),
                    "best": ev.get("best"),
                }
                if "config_hash" in ev:
                    data["config_hash"] = ev["config_hash"]
                out.append(data)
                continue
            self.progress.emit(ev)
            if kind == "event" and ev.get("name") == "search_start":
                attrs = ev.get("attrs", {})
                out.append(
                    {
                        "event": "tune_start",
                        "job": self.job_id,
                        "scope": ev.get("scope"),
                        "budget": attrs.get("budget"),
                        "engine": attrs.get("engine"),
                        "strategy": attrs.get("strategy"),
                        "resumed": attrs.get("resumed", 0),
                    }
                )
        if fresh_evals:
            out.append(
                {
                    "event": "job_progress",
                    "job": self.job_id,
                    **self.progress.snapshot(),
                }
            )
        return out


class ServiceEventBus:
    """Tail the WAL + per-job traces into one cursor-ordered stream.

    Parameters
    ----------
    registry:
        The live :class:`JobRegistry` (used read-only: its current
        records seed the catch-up snapshot; afterwards only the WAL
        *file* is tailed, never the registry API, so the bus thread
        cannot contend with the supervision loop).
    jobs_dir:
        Root of the per-job workdirs (``<jobs_dir>/<job_id>/``).
    poll_interval:
        Poller cadence while subscribers are attached.
    history:
        Replay window of the underlying :class:`EventBus` — the
        ``Last-Event-ID`` resume horizon.

    **Zero overhead when unobserved** is structural: construction only
    snapshots the registry; the polling thread is started by the first
    :meth:`subscribe` and exits as soon as the last subscription
    closes.  With no subscriber there is no thread, no file handle, and
    no syscall attributable to streaming.
    """

    def __init__(
        self,
        registry,
        jobs_dir: str | os.PathLike,
        *,
        poll_interval: float = 0.05,
        history: int = 4096,
    ):
        self.registry = registry
        self.jobs_dir = os.fspath(jobs_dir)
        self.poll_interval = float(poll_interval)
        self._bus = EventBus(history=history)
        self._wal_tailer = JsonlTailer(registry.wal_path)
        self._streams: dict[str, _JobStream] = {}
        self._lock = threading.RLock()
        self._poller: threading.Thread | None = None
        self._wake = threading.Event()
        self.closed = False
        # Catch-up: jobs that predate the bus are summarized as one
        # snapshot job_state each (their full WAL history may already be
        # compacted away); the WAL is tailed only beyond the registry's
        # current seq so nothing is double-announced.
        self._wal_seq = registry.seq
        for rec in registry.jobs():
            self._pending_snapshot(rec)

    # -- wiring ----------------------------------------------------------
    def _pending_snapshot(self, rec: JobRecord) -> None:
        stream = self._ensure_stream(rec.job_id)
        self._bus.publish(
            {
                "event": "job_state",
                "job": rec.job_id,
                "state": rec.state,
                "reason": rec.reason,
                "epoch": rec.epoch,
                "snapshot": True,
            }
        )
        if rec.state in JobState.TERMINAL:
            stream.pending_done = self._done_event_from_record(rec)

    def _ensure_stream(self, job_id: str) -> _JobStream:
        stream = self._streams.get(job_id)
        if stream is None:
            stream = self._streams[job_id] = _JobStream(
                job_id, os.path.join(self.jobs_dir, job_id)
            )
        return stream

    @staticmethod
    def _done_event_from_record(rec: JobRecord) -> dict[str, Any]:
        result = rec.result or {}
        return {
            "event": "job_done",
            "job": rec.job_id,
            "state": rec.state,
            "reason": rec.reason,
            "error": rec.error,
            "best_objective": result.get("best_objective"),
            "fingerprint": result.get("fingerprint"),
        }

    @staticmethod
    def _done_event_from_wal(ev: Mapping[str, Any]) -> dict[str, Any]:
        result = ev.get("result") or {}
        return {
            "event": "job_done",
            "job": ev["job"],
            "state": ev["state"],
            "reason": ev.get("reason"),
            "error": ev.get("error"),
            "best_objective": result.get("best_objective"),
            "fingerprint": result.get("fingerprint"),
        }

    # -- polling ---------------------------------------------------------
    def poll_once(self) -> int:
        """One read-only sweep: WAL first, then every live job trace.

        Returns the number of events published.  Public so tests (and
        offline consumers) can drive the bus deterministically without
        the poller thread.
        """
        with self._lock:
            if self.closed:
                return 0
            published = 0
            for ev in self._wal_tailer.poll():
                seq = int(ev.get("seq", 0))
                if seq <= self._wal_seq:
                    continue
                self._wal_seq = seq
                kind = ev.get("event")
                if kind == "submit":
                    self._ensure_stream(str(ev.get("job")))
                    self._bus.publish(
                        {
                            "event": "job_state",
                            "job": ev.get("job"),
                            "state": ev.get("state"),
                            "kind": (ev.get("spec") or {}).get("kind"),
                            "tenant": (ev.get("spec") or {}).get("tenant"),
                        }
                    )
                    published += 1
                elif kind == "transition":
                    stream = self._ensure_stream(str(ev["job"]))
                    if ev.get("state") in JobState.TERMINAL:
                        # Published *after* the final trace drain below:
                        # job_done must follow the last combo_result.
                        stream.pending_done = self._done_event_from_wal(ev)
                    else:
                        self._bus.publish(
                            {
                                "event": "job_state",
                                "job": ev["job"],
                                "state": ev.get("state"),
                                "reason": ev.get("reason"),
                                "epoch": ev.get("epoch"),
                            }
                        )
                        published += 1
            for stream in list(self._streams.values()):
                if stream.finished:
                    continue
                for out in stream.drain():
                    self._bus.publish(out)
                    published += 1
                if stream.pending_done is not None:
                    self._bus.publish(stream.pending_done)
                    stream.pending_done = None
                    stream.finished = True
                    published += 1
            return published

    def _poll_loop(self) -> None:
        while True:
            with self._lock:
                if self.closed or self._bus.subscriber_count == 0:
                    # Structural zero-overhead: the poller dies with its
                    # audience (cleared under the lock, so a racing
                    # subscribe either keeps us alive or starts a
                    # successor).
                    self._poller = None
                    return
            try:
                self.poll_once()
            except Exception:  # pragma: no cover - keep streaming alive
                logger.exception("event bus poll failed")
            self._wake.wait(self.poll_interval)
            self._wake.clear()

    # -- public surface ---------------------------------------------------
    @property
    def poller_running(self) -> bool:
        with self._lock:
            return self._poller is not None

    @property
    def cursor(self) -> int:
        return self._bus.cursor

    @property
    def subscriber_count(self) -> int:
        return self._bus.subscriber_count

    def subscribe(
        self, *, job_id: str | None = None, after: int = 0
    ) -> Subscription:
        """Attach a consumer; replays retained events with cursor > after.

        ``job_id`` filters to one job's events.  Cursors are service-
        incarnation-local and shared across all subscribers, so a
        per-job subscription resumed via ``after`` skips exactly the
        events it already saw even though other jobs advanced the
        cursor in between.
        """
        predicate = None
        if job_id is not None:
            predicate = lambda ev: ev.get("job") == job_id  # noqa: E731
        sub = self._bus.subscribe(after=after, predicate=predicate)
        with self._lock:
            if not self.closed and self._poller is None:
                self._poller = threading.Thread(
                    target=self._poll_loop, name="repro-event-bus",
                    daemon=True,
                )
                self._poller.start()
            self._wake.set()
        return sub

    def close(self) -> None:
        """Final sweep, then stop the poller and wake every subscriber."""
        with self._lock:
            if self.closed:
                return
            poller = self._poller
        try:
            self.poll_once()
        except Exception:  # pragma: no cover - teardown best-effort
            logger.exception("event bus final poll failed")
        with self._lock:
            self.closed = True
            self._wake.set()
        if poller is not None:
            poller.join(timeout=5.0)
        self._bus.close()


# ----------------------------------------------------------------------
# Offline half: read-only registry view + cross-job aggregation


def load_registry_records(root: str | os.PathLike) -> list[JobRecord]:
    """Rebuild job records from a registry directory without writing.

    Unlike :class:`JobRegistry`, this never repairs the WAL's torn tail
    (it is simply skipped) and never appends a header — safe to run
    against a directory a live single-writer service owns, which is
    exactly what ``repro report --service`` does.
    """
    root = os.fspath(root)
    jobs: dict[str, JobRecord] = {}
    snapshot_seq = 0
    snap_path = os.path.join(root, SNAPSHOT_NAME)
    if os.path.exists(snap_path):
        try:
            with open(snap_path) as f:
                snap = json.load(f)
        except (OSError, ValueError) as exc:
            raise RegistryError(
                f"corrupt registry snapshot {snap_path}: {exc}"
            ) from exc
        snapshot_seq = int(snap.get("seq", 0))
        for data in snap.get("jobs", ()):
            rec = JobRecord.from_dict(data)
            jobs[rec.job_id] = rec
    wal_path = os.path.join(root, WAL_NAME)
    if os.path.exists(wal_path):
        with open(wal_path, "rb") as f:
            lines = f.read().split(b"\n")
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                if i == len(lines) - 1:
                    continue  # torn tail of a live/crashed writer
                raise RegistryError(
                    f"corrupt registry WAL {wal_path}:{i + 1}: {exc}"
                ) from exc
            if event.get("event") == "header":
                continue
            if int(event["seq"]) <= snapshot_seq:
                continue
            replay_wal_event(jobs, event)
    return sorted(jobs.values(), key=lambda r: r.submitted_seq)


@dataclass
class JobTraceSummary:
    """One row of the cross-job table."""

    job_id: str
    kind: str
    tenant: str
    state: str
    evaluations: int = 0
    best_objective: float | None = None
    fingerprint: str | None = None
    timing: TimingReport = field(default_factory=TimingReport)


@dataclass
class ServiceReport:
    """Cross-job aggregation over one service directory.

    ``repro report --service DIR`` builds this from the directory
    ``repro serve --registry-dir DIR`` maintains: job records from the
    registry (read-only) plus each job's trace family, merged into one
    stage-attribution table via :meth:`TimingReport.merge`.
    """

    jobs: list[JobTraceSummary] = field(default_factory=list)

    @classmethod
    def from_service_dir(cls, root: str | os.PathLike) -> "ServiceReport":
        root = os.fspath(root)
        report = cls()
        for rec in load_registry_records(os.path.join(root, "registry")):
            result = rec.result or {}
            summary = JobTraceSummary(
                job_id=rec.job_id,
                kind=rec.spec.kind,
                tenant=rec.spec.tenant,
                state=rec.state,
                best_objective=result.get("best_objective"),
                fingerprint=result.get("fingerprint"),
            )
            trace_path = job_trace_path(os.path.join(root, "jobs", rec.job_id))
            if os.path.exists(trace_path):
                trace = TraceReport.from_file(trace_path)
                summary.evaluations = len(trace.eval_events())
                summary.timing = trace.timing_report()
            report.jobs.append(summary)
        return report

    def merged_timing(self) -> TimingReport:
        merged = TimingReport()
        for job in self.jobs:
            merged = merged.merge(job.timing)
        return merged

    def format(self) -> str:
        w = max(12, max((len(j.job_id) for j in self.jobs), default=0))
        lines = [
            f"{'Job':<{w}} {'Kind':<12} {'Tenant':<10} {'State':<10} "
            f"{'Evals':>6} {'Best':>12}  Fingerprint",
            "-" * (w + 70),
        ]
        for job in self.jobs:
            best = (
                f"{job.best_objective:.6g}"
                if job.best_objective is not None
                else "-"
            )
            fp = (job.fingerprint or "-")[:12]
            lines.append(
                f"{job.job_id:<{w}} {job.kind:<12} {job.tenant:<10} "
                f"{job.state:<10} {job.evaluations:>6} {best:>12}  {fp}"
            )
        lines += [
            "",
            "cross-job stage wall-time attribution (self time per span kind)",
            "-" * 64,
            self.merged_timing().format(),
        ]
        return "\n".join(lines)
