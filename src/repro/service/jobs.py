"""Job model: specs, lease fencing, and the deterministic job runner.

A *job* is one full tuning workload — a search campaign or an end-to-end
methodology run — executed by the service on behalf of a tenant.  The
runner here is deliberately a thin, deterministic shell around the
existing engines: all crash-safety comes from the engines' own JSONL
checkpoints, and all the service adds is

* a **workdir** per job that scopes every checkpoint, so a requeued job
  resumes exactly where the dead worker stopped;
* a **fence** (lease epoch persisted in the workdir) consulted before
  every objective evaluation and before publishing the result, so a
  zombie worker whose lease expired cannot corrupt a successor's state;
* a **result fingerprint** built only from resume-invariant quantities
  (database records, best configuration/objective — never
  ``n_evaluations``, which excludes replayed records), so a kill/resume
  run and an uninterrupted run produce byte-identical results.

Fencing and drain use ``BaseException`` subclasses on purpose: the
engines' evaluation loops catch ``Exception`` and would otherwise record
a fence trip as a FAILED evaluation *in the checkpoint database*,
polluting the very state the fence protects.  As ``BaseException`` they
abort the whole job run and surface in the worker's exit code instead.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = [
    "JobSpec",
    "JobGuard",
    "GuardedCallable",
    "LeaseFencedError",
    "DrainRequested",
    "read_fence",
    "write_fence",
    "run_job",
]

FENCE_NAME = "fence.json"
RESULT_NAME = "result.json"
ERROR_NAME = "error.json"
JOB_KINDS = ("campaign", "methodology")


class LeaseFencedError(BaseException):
    """The job's lease epoch is no longer current: a supervisor expired
    the lease and (possibly) handed the job to a new worker.  Raised as
    ``BaseException`` so engine evaluation loops (which catch
    ``Exception``) cannot swallow it into a FAILED checkpoint record —
    the zombie must stop, not degrade."""


class DrainRequested(BaseException):
    """The service is draining (SIGTERM): stop *before* the next
    evaluation, leaving the checkpoint database consistent, and let the
    supervisor requeue the job for the next service start.  Also a
    ``BaseException`` — drain is an orderly abort, not a failure."""


def atomic_write_json(path: str | os.PathLike, payload: Mapping[str, Any]) -> None:
    """Durably publish ``payload`` at ``path`` (tmp + fsync + rename)."""
    path = os.fspath(path)
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as f:
            json.dump(payload, f, sort_keys=True)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def write_fence(workdir: str | os.PathLike, epoch: int) -> None:
    """Persist the current lease epoch in the job's workdir."""
    atomic_write_json(os.path.join(os.fspath(workdir), FENCE_NAME), {"epoch": int(epoch)})


def read_fence(workdir: str | os.PathLike) -> int | None:
    """The fenced lease epoch, or ``None`` when no fence exists."""
    path = os.path.join(os.fspath(workdir), FENCE_NAME)
    try:
        with open(path) as f:
            return int(json.load(f)["epoch"])
    except (OSError, ValueError, KeyError, TypeError):
        return None


@dataclass(frozen=True)
class JobGuard:
    """Per-evaluation fence + drain check, carried into worker processes.

    ``check`` is called before every objective evaluation (via
    :class:`GuardedCallable`) and once more before the worker publishes
    its result.  Plain picklable data — no handles — so it crosses the
    process boundary with the job spec.
    """

    workdir: str
    epoch: int
    drain_path: str | None = None

    def check(self) -> None:
        fence = read_fence(self.workdir)
        if fence != self.epoch:
            raise LeaseFencedError(
                f"lease epoch {self.epoch} superseded (fence now {fence})"
            )
        if self.drain_path is not None and os.path.exists(self.drain_path):
            raise DrainRequested("service drain requested")


@dataclass(frozen=True)
class GuardedCallable:
    """Wrap any objective/profiler callable with a pre-call guard check."""

    fn: Any
    guard: JobGuard

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        self.guard.check()
        return self.fn(*args, **kwargs)


@dataclass(frozen=True)
class JobSpec:
    """What to run: kind + parameters, owned by a tenant.

    ``params`` drives the deterministic builders in :func:`run_job`:

    ``case``
        Synthetic case 1..5 (default 1).
    ``seed``
        Master seed for the whole job (default 0).
    ``noise``
        Objective noise scale — default **0.0**, not the synthetic
        functions' 0.001: noisy objectives draw from their own RNG per
        *fresh* evaluation, so a resumed run (which replays checkpointed
        records instead of re-evaluating) would diverge from an
        uninterrupted one.  Determinism is a service invariant; tenants
        must opt in to noise explicitly.
    ``engine`` / ``budget``
        Search engine (default ``"bo"``) and per-member evaluation budget.
    ``eval_cost``
        Seconds of simulated measurement cost per application run
        (default 0) — used by service benchmarks to reproduce the
        expensive-evaluation regime the paper targets.
    ``cutoff`` / ``variations``
        Methodology-kind analysis knobs.
    """

    kind: str
    job_id: str | None = None
    tenant: str = "default"
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        if self.kind not in JOB_KINDS:
            raise ValueError(f"kind must be one of {JOB_KINDS}, got {self.kind!r}")

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "job_id": self.job_id,
            "tenant": self.tenant,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobSpec":
        return cls(
            kind=data["kind"],
            job_id=data.get("job_id"),
            tenant=data.get("tenant", "default"),
            params=dict(data.get("params", {})),
        )


# ----------------------------------------------------------------------
# Deterministic job execution


def _db_digest(database) -> str:
    """Resume-invariant digest of an evaluation database's records."""
    h = hashlib.sha256()
    for rec in database:
        h.update(
            json.dumps(
                {
                    "config": {k: rec.config[k] for k in sorted(rec.config)},
                    "objective": None if rec.objective != rec.objective else rec.objective,
                    "cost": rec.cost,
                    "status": str(rec.status),
                },
                sort_keys=True,
                separators=(",", ":"),
            ).encode()
        )
    return h.hexdigest()


def _search_summaries(searches) -> list[dict[str, Any]]:
    return [
        {
            "name": s.name,
            "engine": s.engine,
            "n_records": len(s.database),
            "best_objective": s.best_objective,
            "digest": _db_digest(s.database),
        }
        for s in searches
    ]


def _build_app(params: Mapping[str, Any]):
    from ..synthetic import SyntheticFunction

    return SyntheticFunction(
        case=int(params.get("case", 1)),
        noise_scale=float(params.get("noise", 0.0)),
        random_state=int(params.get("seed", 0)),
        eval_cost=float(params.get("eval_cost", 0.0)),
    )


def _final_result(spec: JobSpec, best_config, searches, extra) -> dict[str, Any]:
    # Score the winning configuration with a fresh noise-free copy of the
    # application: deterministic, independent of search history length.
    scorer = _build_app({**spec.params, "noise": 0.0})
    summaries = _search_summaries(searches)
    result = {
        "kind": spec.kind,
        "case": int(spec.params.get("case", 1)),
        "seed": int(spec.params.get("seed", 0)),
        "best_config": {k: best_config[k] for k in sorted(best_config)},
        "best_objective": float(scorer(best_config)),
        "searches": summaries,
        **extra,
    }
    h = hashlib.sha256()
    h.update(json.dumps(result, sort_keys=True, separators=(",", ":")).encode())
    result["fingerprint"] = h.hexdigest()
    return result


def _store_binding(spec: JobSpec, eval_store):
    """``(store, extra, provenance)`` for cross-job reuse, or ``(None,)*3``.

    The store serves a value *instead of* evaluating the objective, so it
    is only sound when the objective is a pure function of the
    configuration.  Noisy jobs draw fresh samples per evaluation — a
    served draw would change the job's sample sequence — so they bypass
    the store entirely (the provenance gate in the store would block
    cross-seed serving anyway; bypassing also keeps same-job semantics
    identical to a store-free run).

    ``extra`` identifies the measured function beyond the space shape:
    the application family and its case number.  It is folded into every
    space fingerprint derived for this job, so two cases sharing a space
    layout can never serve each other's values.
    """
    if eval_store is None:
        return None, None, None
    noise = float(spec.params.get("noise", 0.0))
    if noise != 0.0:
        return None, None, None
    from ..search.store import EvaluationStore

    store = EvaluationStore(eval_store)
    extra = {
        "app": "synthetic",
        "case": int(spec.params.get("case", 1)),
        "noise": noise,
    }
    provenance = {"noise": noise, "seed": int(spec.params.get("seed", 0))}
    return store, extra, provenance


def _attach_memo_stats(result: dict[str, Any], searches) -> dict[str, Any]:
    """Fold per-search memoization accounting into the job result.

    Added *after* the fingerprint is computed (like ``epoch``): hit
    counts legitimately differ between a warm-store and a cold-store run
    of the same job, and must not perturb the resume-invariant
    fingerprint the chaos suite asserts on.
    """
    totals = {"hits": 0, "cross_job_hits": 0, "misses": 0, "permanent_hits": 0}
    seen = False
    for s in searches:
        memo = s.meta.get("memo")
        if memo:
            seen = True
            for k in totals:
                totals[k] += int(memo.get(k, 0))
    if seen:
        result["memo"] = totals
    return result


def _run_campaign_job(
    spec: JobSpec, workdir: str, guard: JobGuard | None, telemetry,
    eval_store=None,
):
    from ..search import SearchCampaign, SearchSpec
    from ..search.store import space_fingerprint

    app = _build_app(spec.params)
    objective = GuardedCallable(app, guard) if guard is not None else app
    store, extra, provenance = _store_binding(spec, eval_store)
    space = app.search_space()
    search = SearchSpec(
        space=space,
        objective=objective,
        engine=spec.params.get("engine", "bo"),
        max_evaluations=int(spec.params.get("budget", 16)),
        max_retries=int(spec.params.get("max_retries", 0)),
        eval_store=store,
        eval_store_key=(
            space_fingerprint(space, extra=extra) if store is not None else None
        ),
        eval_provenance=provenance,
    )
    campaign = SearchCampaign(
        [search],
        strategy=f"job:{spec.job_id or 'campaign'}",
        random_state=int(spec.params.get("seed", 0)),
        parallel=False,
        checkpoint_dir=os.path.join(workdir, "checkpoints"),
        telemetry=telemetry,
    )
    result = campaign.run()
    out = _final_result(spec, result.combined_config, result.searches, {})
    return _attach_memo_stats(out, result.searches)


def _guarded_routines(routines, guard: JobGuard):
    from ..core import Routine, RoutineSet

    guarded = [
        Routine(
            name=r.name,
            parameters=list(r.parameters),
            objective=GuardedCallable(r.objective, guard),
            weight=r.weight,
        )
        for r in routines.routines
    ]
    profiler = routines.profiler
    if profiler is not None:
        profiler = GuardedCallable(profiler, guard)
    return RoutineSet(guarded, profiler=profiler)


def _run_methodology_job(
    spec: JobSpec, workdir: str, guard: JobGuard | None, telemetry,
    eval_store=None,
):
    from ..core import TuningMethodology

    app = _build_app(spec.params)
    routines = app.routines()
    if guard is not None:
        routines = _guarded_routines(routines, guard)
    store, extra, provenance = _store_binding(spec, eval_store)
    tm = TuningMethodology(
        app.search_space(),
        routines,
        cutoff=float(spec.params.get("cutoff", 0.25)),
        n_variations=int(spec.params.get("variations", 10)),
        engine=spec.params.get("engine", "bo"),
        parallel=False,
        checkpoint_dir=os.path.join(workdir, "checkpoints"),
        analysis_checkpoint_dir=os.path.join(workdir, "analysis"),
        eval_store=store,
        eval_store_extra=extra,
        eval_provenance=provenance,
        telemetry=telemetry,
        random_state=int(spec.params.get("seed", 0)),
    )
    result = tm.run()
    out = _final_result(
        spec,
        result.best_config,
        result.campaign.searches,
        {"analysis_evaluations": int(result.analysis_evaluations)},
    )
    return _attach_memo_stats(out, result.campaign.searches)


def run_job(
    spec: JobSpec,
    workdir: str | os.PathLike,
    *,
    guard: JobGuard | None = None,
    telemetry=None,
    eval_store: str | os.PathLike | None = None,
) -> dict[str, Any]:
    """Execute ``spec`` with every checkpoint scoped under ``workdir``.

    Returns the resume-invariant result dict.  Re-running after a kill
    resumes from the workdir's checkpoints and returns a byte-identical
    result (same ``fingerprint``) — the exactly-once guarantee the chaos
    suite asserts.

    ``eval_store`` names a service-wide
    :class:`~repro.search.EvaluationStore` JSONL file shared across
    jobs: configurations another job on the same space already measured
    are served from the store instead of re-evaluated, and fresh
    measurements are written back.  Store hits are attributed in
    ``result["memo"]`` (added post-fingerprint — the fingerprint stays
    byte-identical to a cold-store run of the same job).  Noisy jobs
    (``params["noise"] != 0``) bypass the store entirely.
    """
    workdir = os.fspath(workdir)
    os.makedirs(workdir, exist_ok=True)
    eval_store = os.fspath(eval_store) if eval_store is not None else None
    if guard is not None:
        guard.check()
    if spec.kind == "campaign":
        return _run_campaign_job(spec, workdir, guard, telemetry, eval_store)
    if spec.kind == "methodology":
        return _run_methodology_job(spec, workdir, guard, telemetry, eval_store)
    raise ValueError(f"unknown job kind {spec.kind!r}")
