"""Admission control: bounded queue, tenant quotas, explicit shedding.

Overload handling is *explicit by construction*: every submission gets
either a queued job or an :class:`AdmissionDecision` with a machine-
readable reason (``queue_full``, ``tenant_quota``,
``tenant_quarantined``, ``draining``) that the registry records as a
``rejected`` job — the service never silently drops work.

Tenant quarantine reuses the :class:`repro.faults.CircuitBreaker` cell
machinery rather than reimplementing threshold bookkeeping: tenants are
hashed onto the unit interval by a one-dimensional shim "space" whose
``encode`` places each tenant at the center of its own cell, so the
breaker's per-cell failure counting, trip threshold, and persistence
format all carry over unchanged.  A tenant whose jobs keep failing
permanently trips its cell and further submissions are shed (protecting
shared capacity) until the breaker is reset.
"""

from __future__ import annotations

import threading
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping

from ..faults.breaker import CircuitBreaker
from ..faults.taxonomy import FailureKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .jobs import JobSpec
    from .registry import JobRegistry

__all__ = ["AdmissionDecision", "AdmissionController"]

#: Decision reasons (the vocabulary of ``rejected`` records and HTTP maps).
REASON_ADMITTED = "admitted"
REASON_QUEUE_FULL = "queue_full"
REASON_TENANT_QUOTA = "tenant_quota"
REASON_TENANT_QUARANTINED = "tenant_quarantined"
REASON_DRAINING = "draining"


class _TenantCells:
    """Shim space mapping tenants onto distinct breaker cells.

    ``encode`` hashes the tenant name (CRC-32, stable across processes —
    never ``hash()``, which is salted per interpreter) onto the center of
    one of ``resolution`` cells in the unit interval, so
    :meth:`CircuitBreaker.cell` assigns each tenant its own counter.
    """

    def __init__(self, resolution: int):
        self.resolution = int(resolution)
        self.dimension = 1
        self.name = "tenants"

    def encode(self, config: Mapping[str, Any]) -> list[float]:
        cell = zlib.crc32(str(config["tenant"]).encode()) % self.resolution
        return [(cell + 0.5) / self.resolution]


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check."""

    admitted: bool
    reason: str = REASON_ADMITTED
    detail: str = ""


class AdmissionController:
    """Decide whether a submission may enter the queue.

    Parameters
    ----------
    max_queue:
        Maximum queued (not yet leased) jobs before submissions shed
        with ``queue_full``.
    tenant_quota:
        Maximum *active* (queued/leased/running) jobs per tenant;
        ``None`` disables.
    tenant_fail_threshold:
        Permanently-failed jobs per tenant before the tenant's breaker
        cell trips and submissions shed with ``tenant_quarantined``;
        ``None`` disables the breaker.
    tenant_resolution:
        Breaker cells available for tenant hashing (distinct tenants may
        collide at very small values, exactly like space cells).
    """

    def __init__(
        self,
        *,
        max_queue: int = 64,
        tenant_quota: int | None = None,
        tenant_fail_threshold: int | None = None,
        tenant_resolution: int = 256,
    ):
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if tenant_quota is not None and tenant_quota < 1:
            raise ValueError("tenant_quota must be >= 1")
        self.max_queue = int(max_queue)
        self.tenant_quota = tenant_quota
        self.breaker = (
            CircuitBreaker(
                _TenantCells(tenant_resolution),
                threshold=tenant_fail_threshold,
                resolution=tenant_resolution,
            )
            if tenant_fail_threshold is not None
            else None
        )
        self._lock = threading.Lock()
        self.rejections: dict[str, int] = {}

    # ------------------------------------------------------------------
    def decide(
        self,
        spec: "JobSpec",
        registry: "JobRegistry",
        *,
        draining: bool = False,
    ) -> AdmissionDecision:
        """Admit or shed ``spec``; shed decisions carry the reason."""
        if draining:
            return self._reject(
                REASON_DRAINING, "service is draining; not accepting jobs"
            )
        if self.breaker is not None and not self.breaker.allows(
            {"tenant": spec.tenant}
        ):
            return self._reject(
                REASON_TENANT_QUARANTINED,
                f"tenant {spec.tenant!r} quarantined after repeated "
                f"permanent job failures",
            )
        if registry.queue_depth() >= self.max_queue:
            return self._reject(
                REASON_QUEUE_FULL, f"queue at capacity ({self.max_queue})"
            )
        if (
            self.tenant_quota is not None
            and registry.active_count(spec.tenant) >= self.tenant_quota
        ):
            return self._reject(
                REASON_TENANT_QUOTA,
                f"tenant {spec.tenant!r} at quota ({self.tenant_quota} "
                f"active jobs)",
            )
        return AdmissionDecision(admitted=True)

    def _reject(self, reason: str, detail: str) -> AdmissionDecision:
        with self._lock:
            self.rejections[reason] = self.rejections.get(reason, 0) + 1
        return AdmissionDecision(admitted=False, reason=reason, detail=detail)

    # ------------------------------------------------------------------
    def record_failure(
        self, tenant: str, kind: FailureKind | str = FailureKind.PERMANENT
    ) -> bool:
        """Count one terminal job failure against ``tenant``; returns
        ``True`` when this trips the tenant's breaker cell."""
        if self.breaker is None:
            return False
        return self.breaker.record({"tenant": tenant}, kind)

    def state_dict(self) -> dict[str, Any]:
        """JSON-safe snapshot (breaker state + shed counters)."""
        return {
            "rejections": dict(sorted(self.rejections.items())),
            "breaker": self.breaker.state_dict() if self.breaker else None,
        }
