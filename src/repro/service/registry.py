"""Write-ahead job registry: crash-safe job state, one JSONL line at a time.

Every job state transition is appended to a write-ahead log *before* the
in-memory state changes are considered durable, in the same JSONL idiom
as the evaluation checkpoints: a header line, then one self-contained
JSON object per event, each carrying a monotonically increasing ``seq``.
Recovery is therefore the same story as everywhere else in the package —
:func:`repro.bo.history.repair_torn_tail` drops a torn final line, the
snapshot (if any) seeds the state, and WAL events with ``seq`` greater
than the snapshot's are replayed on top.

Compaction writes an atomic snapshot (tmp + fsync + rename) of the full
state *first*, then atomically replaces the WAL with a fresh
header-only file.  A crash between the two steps is safe: replay skips
WAL events already covered by the snapshot's ``seq``.

The legal state machine::

    submitted ──► queued ──► leased ──► running ──► done
        │            │  ▲        │  │        │
        │            │  └────────┴──┼────────┤  (requeue: lease expired,
        ▼            ▼              ▼        ▼   worker lost, drain)
    rejected     cancelled       failed   cancelled

``done``, ``failed``, ``cancelled`` and ``rejected`` are terminal.
Every lease and every requeue bumps the job's **epoch** — the fencing
token (:mod:`repro.service.jobs`) that keeps zombie workers from
publishing into a successor's lease.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from ..bo.history import repair_torn_tail
from ..log import get_logger
from ..telemetry.sinks import FSYNC_POLICIES
from .jobs import JobSpec

__all__ = [
    "JobState",
    "JobRecord",
    "JobRegistry",
    "RegistryError",
    "IllegalTransition",
    "replay_wal_event",
]

logger = get_logger("service")

WAL_HEADER = "repro-job-registry"
WAL_VERSION = 1
WAL_NAME = "registry.wal.jsonl"
SNAPSHOT_NAME = "registry.snapshot.json"


class RegistryError(RuntimeError):
    """Corrupt registry files or misuse of the registry API."""


class IllegalTransition(RegistryError):
    """A requested state transition is not in the legal state machine."""


class JobState:
    """Job lifecycle states (plain strings, JSONL-friendly)."""

    SUBMITTED = "submitted"
    QUEUED = "queued"
    LEASED = "leased"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    REJECTED = "rejected"

    ALL = (SUBMITTED, QUEUED, LEASED, RUNNING, DONE, FAILED, CANCELLED, REJECTED)
    TERMINAL = frozenset({DONE, FAILED, CANCELLED, REJECTED})
    ACTIVE = frozenset({QUEUED, LEASED, RUNNING})


def replay_wal_event(
    jobs: dict[str, "JobRecord"], event: Mapping[str, Any]
) -> None:
    """Replay one WAL event onto a job table (pure assignment —
    epoch/attempt arithmetic happened when the event was written).

    Shared by :class:`JobRegistry` recovery and the read-only registry
    views in :mod:`repro.service.events` (the event bus and the
    cross-job report never open the WAL for writing).
    """
    kind = event["event"]
    if kind == "submit":
        spec = JobSpec.from_dict(event["spec"])
        jobs[spec.job_id] = JobRecord(
            spec=spec,
            state=event["state"],
            submitted_seq=int(event["seq"]),
            seq=int(event["seq"]),
        )
        return
    if kind == "transition":
        rec = jobs.get(event["job"])
        if rec is None:
            raise RegistryError(
                f"WAL transition for unknown job {event['job']!r}"
            )
        rec.state = event["state"]
        rec.epoch = int(event["epoch"])
        rec.attempt = int(event["attempt"])
        rec.owner = event.get("owner")
        rec.reason = event.get("reason")
        if event.get("result") is not None:
            rec.result = event["result"]
        if event.get("error") is not None:
            rec.error = event["error"]
        rec.seq = int(event["seq"])
        return
    raise RegistryError(f"unknown WAL event kind {kind!r}")


_LEGAL: dict[str, frozenset[str]] = {
    JobState.SUBMITTED: frozenset(
        {JobState.QUEUED, JobState.REJECTED, JobState.CANCELLED}
    ),
    JobState.QUEUED: frozenset(
        {JobState.LEASED, JobState.CANCELLED, JobState.FAILED}
    ),
    JobState.LEASED: frozenset(
        {JobState.RUNNING, JobState.QUEUED, JobState.FAILED, JobState.CANCELLED}
    ),
    JobState.RUNNING: frozenset(
        {JobState.DONE, JobState.FAILED, JobState.QUEUED, JobState.CANCELLED}
    ),
    JobState.DONE: frozenset(),
    JobState.FAILED: frozenset(),
    JobState.CANCELLED: frozenset(),
    JobState.REJECTED: frozenset(),
}


@dataclass
class JobRecord:
    """Current state of one job, rebuilt from snapshot + WAL replay."""

    spec: JobSpec
    state: str = JobState.SUBMITTED
    epoch: int = 0
    attempt: int = 0
    owner: str | None = None
    reason: str | None = None
    result: dict[str, Any] | None = None
    error: str | None = None
    submitted_seq: int = 0
    seq: int = 0

    @property
    def job_id(self) -> str:
        assert self.spec.job_id is not None
        return self.spec.job_id

    def to_dict(self) -> dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "state": self.state,
            "epoch": self.epoch,
            "attempt": self.attempt,
            "owner": self.owner,
            "reason": self.reason,
            "result": self.result,
            "error": self.error,
            "submitted_seq": self.submitted_seq,
            "seq": self.seq,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobRecord":
        return cls(
            spec=JobSpec.from_dict(data["spec"]),
            state=data["state"],
            epoch=int(data["epoch"]),
            attempt=int(data["attempt"]),
            owner=data.get("owner"),
            reason=data.get("reason"),
            result=data.get("result"),
            error=data.get("error"),
            submitted_seq=int(data.get("submitted_seq", 0)),
            seq=int(data.get("seq", 0)),
        )


class JobRegistry:
    """Single-writer, crash-recoverable job table backed by a WAL.

    Parameters
    ----------
    root:
        Directory holding ``registry.wal.jsonl`` and (after compaction)
        ``registry.snapshot.json``.  Created if missing.
    fsync:
        Durability policy from :data:`repro.telemetry.sinks.FSYNC_POLICIES`.
        The default ``"always"`` fsyncs every appended event — a job
        transition acknowledged to a tenant survives power loss, which is
        the contract a job *service* owes that a best-effort trace sink
        does not.

    Thread-safe (one re-entrant lock around state + WAL); multi-process
    single-writer — exactly one supervisor owns the registry directory.
    """

    def __init__(self, root: str | os.PathLike, *, fsync: str = "always"):
        if fsync not in FSYNC_POLICIES:
            raise ValueError(f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}")
        self.root = os.fspath(root)
        self.fsync = fsync
        self.wal_path = os.path.join(self.root, WAL_NAME)
        self.snapshot_path = os.path.join(self.root, SNAPSHOT_NAME)
        os.makedirs(self.root, exist_ok=True)
        self._lock = threading.RLock()
        self._jobs: dict[str, JobRecord] = {}
        self._seq = 0
        self._recovered_torn_tail = False
        self._recover()
        self._wal = open(self.wal_path, "a")
        if self._wal.tell() == 0:
            self._append_raw(
                {"format": WAL_HEADER, "version": WAL_VERSION, "event": "header"}
            )

    # -- recovery ------------------------------------------------------
    def _recover(self) -> None:
        snapshot_seq = 0
        if os.path.exists(self.snapshot_path):
            try:
                with open(self.snapshot_path) as f:
                    snap = json.load(f)
            except (OSError, ValueError) as exc:
                raise RegistryError(
                    f"corrupt registry snapshot {self.snapshot_path}: {exc}"
                ) from exc
            snapshot_seq = int(snap.get("seq", 0))
            for data in snap.get("jobs", ()):
                rec = JobRecord.from_dict(data)
                self._jobs[rec.job_id] = rec
        self._seq = snapshot_seq
        if not os.path.exists(self.wal_path):
            return
        self._recovered_torn_tail = repair_torn_tail(self.wal_path)
        with open(self.wal_path) as f:
            for lineno, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise RegistryError(
                        f"corrupt registry WAL {self.wal_path}:{lineno}: {exc}"
                    ) from exc
                if event.get("event") == "header":
                    continue
                seq = int(event["seq"])
                if seq <= snapshot_seq:
                    continue  # already folded into the snapshot
                self._apply(event)
                self._seq = max(self._seq, seq)

    def _apply(self, event: Mapping[str, Any]) -> None:
        replay_wal_event(self._jobs, event)

    @property
    def recovered_torn_tail(self) -> bool:
        """Whether recovery had to drop a torn final WAL line."""
        return self._recovered_torn_tail

    # -- WAL append ----------------------------------------------------
    def _append_raw(self, event: Mapping[str, Any]) -> None:
        self._wal.write(
            json.dumps(event, sort_keys=True, separators=(",", ":")) + "\n"
        )
        self._wal.flush()
        if self.fsync == "always":
            os.fsync(self._wal.fileno())

    def _append(self, event: dict[str, Any]) -> int:
        self._seq += 1
        event["seq"] = self._seq
        self._append_raw(event)
        return self._seq

    # -- public API ----------------------------------------------------
    @property
    def seq(self) -> int:
        return self._seq

    def submit(
        self, spec: JobSpec, *, reject_reason: str | None = None
    ) -> JobRecord:
        """Register a job.  Admitted jobs go ``submitted -> queued``;
        rejections are recorded explicitly (``submitted -> rejected``)
        with the shed reason — never silently dropped."""
        with self._lock:
            if spec.job_id is None:
                spec = JobSpec(
                    kind=spec.kind,
                    job_id=f"job-{self._seq + 1:06d}",
                    tenant=spec.tenant,
                    params=spec.params,
                )
            if spec.job_id in self._jobs:
                raise RegistryError(f"duplicate job id {spec.job_id!r}")
            seq = self._append(
                {
                    "event": "submit",
                    "job": spec.job_id,
                    "spec": spec.to_dict(),
                    "state": JobState.SUBMITTED,
                }
            )
            rec = JobRecord(spec=spec, submitted_seq=seq, seq=seq)
            self._jobs[spec.job_id] = rec
            if reject_reason is not None:
                return self.transition(
                    spec.job_id, JobState.REJECTED, reason=reject_reason
                )
            return self.transition(spec.job_id, JobState.QUEUED)

    def transition(
        self,
        job_id: str,
        state: str,
        *,
        reason: str | None = None,
        owner: str | None = None,
        result: dict[str, Any] | None = None,
        error: str | None = None,
        bump_epoch: bool = False,
        bump_attempt: bool = False,
    ) -> JobRecord:
        """Apply one legal transition, WAL-first."""
        if state not in JobState.ALL:
            raise IllegalTransition(f"unknown state {state!r}")
        with self._lock:
            rec = self.get(job_id)
            if state not in _LEGAL[rec.state]:
                raise IllegalTransition(
                    f"{job_id}: illegal transition {rec.state} -> {state}"
                )
            epoch = rec.epoch + 1 if bump_epoch else rec.epoch
            attempt = rec.attempt + 1 if bump_attempt else rec.attempt
            seq = self._append(
                {
                    "event": "transition",
                    "job": job_id,
                    "state": state,
                    "epoch": epoch,
                    "attempt": attempt,
                    "owner": owner,
                    "reason": reason,
                    "result": result,
                    "error": error,
                }
            )
            rec.state = state
            rec.epoch = epoch
            rec.attempt = attempt
            rec.owner = owner
            rec.reason = reason
            if result is not None:
                rec.result = result
            if error is not None:
                rec.error = error
            rec.seq = seq
            return rec

    def lease(self, job_id: str, owner: str) -> JobRecord:
        """``queued -> leased``, bumping the fencing epoch and attempt."""
        return self.transition(
            job_id,
            JobState.LEASED,
            owner=owner,
            bump_epoch=True,
            bump_attempt=True,
        )

    def requeue(self, job_id: str, reason: str) -> JobRecord:
        """Return a leased/running job to the queue, bumping the epoch so
        any straggler holding the old lease is fenced immediately."""
        return self.transition(
            job_id, JobState.QUEUED, reason=reason, bump_epoch=True
        )

    def recover_orphans(self) -> list[JobRecord]:
        """Requeue jobs a dead supervisor left leased/running.

        Called once at supervisor startup, before any leasing: whatever
        was in flight when the previous process died resumes from its
        checkpoints under a new (fenced) epoch.
        """
        with self._lock:
            orphans = [
                rec
                for rec in self._jobs.values()
                if rec.state in (JobState.LEASED, JobState.RUNNING)
            ]
            return [self.requeue(rec.job_id, "orphaned") for rec in orphans]

    # -- queries -------------------------------------------------------
    def get(self, job_id: str) -> JobRecord:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise KeyError(f"unknown job {job_id!r}") from None

    def __contains__(self, job_id: str) -> bool:
        with self._lock:
            return job_id in self._jobs

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)

    def __iter__(self) -> Iterator[JobRecord]:
        return iter(self.jobs())

    def jobs(self) -> list[JobRecord]:
        """All records, submission order."""
        with self._lock:
            return sorted(self._jobs.values(), key=lambda r: r.submitted_seq)

    def queued(self) -> list[JobRecord]:
        """FIFO queue: queued jobs, oldest submission first."""
        with self._lock:
            return [r for r in self.jobs() if r.state == JobState.QUEUED]

    def queue_depth(self) -> int:
        with self._lock:
            return sum(1 for r in self._jobs.values() if r.state == JobState.QUEUED)

    def active_count(self, tenant: str | None = None) -> int:
        """Jobs occupying service capacity (queued/leased/running)."""
        with self._lock:
            return sum(
                1
                for r in self._jobs.values()
                if r.state in JobState.ACTIVE
                and (tenant is None or r.spec.tenant == tenant)
            )

    # -- compaction / shutdown -----------------------------------------
    def compact(self) -> None:
        """Fold the WAL into an atomic snapshot and truncate the log.

        Ordering is crash-safe: snapshot (tmp + fsync + rename) first,
        then the WAL is atomically replaced by a header-only file.  A
        crash in between leaves snapshot + stale WAL, and replay skips
        events with ``seq`` at or below the snapshot's.
        """
        with self._lock:
            self._wal.flush()
            if self.fsync in ("always", "rotate"):
                os.fsync(self._wal.fileno())
            snap = {
                "format": WAL_HEADER,
                "version": WAL_VERSION,
                "seq": self._seq,
                "jobs": [rec.to_dict() for rec in self.jobs()],
            }
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as f:
                    json.dump(snap, f, sort_keys=True)
                    f.flush()
                    os.fsync(f.fileno())
                os.replace(tmp, self.snapshot_path)
            except BaseException:
                if os.path.exists(tmp):
                    os.unlink(tmp)
                raise
            self._wal.close()
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as f:
                    f.write(
                        json.dumps(
                            {
                                "format": WAL_HEADER,
                                "version": WAL_VERSION,
                                "event": "header",
                            },
                            sort_keys=True,
                            separators=(",", ":"),
                        )
                        + "\n"
                    )
                    f.flush()
                    os.fsync(f.fileno())
                os.replace(tmp, self.wal_path)
            except BaseException:
                if os.path.exists(tmp):
                    os.unlink(tmp)
                raise
            self._wal = open(self.wal_path, "a")
            logger.info(
                "compacted job registry %s at seq %d (%d jobs)",
                self.root, self._seq, len(self._jobs),
            )

    def close(self) -> None:
        """Flush, fsync, and close the WAL.  Idempotent."""
        with self._lock:
            wal = self._wal
            if wal is None:
                return
            if not wal.closed:
                wal.flush()
                os.fsync(wal.fileno())
                wal.close()
            self._wal = None

    def __enter__(self) -> "JobRegistry":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
