"""Shared worker pool: a fixed set of long-lived forked workers.

PR 7's supervisor forks one process per job — correct, but the fork,
interpreter warm-up, and teardown are pure overhead paid again for every
job.  The :class:`SharedWorkerPool` amortizes them: ``size`` workers are
forked once and live for the service's lifetime, and the supervisor
leases *slots* instead of spawning processes.  Each slot owns a private
duplex pipe; dispatch is one pickled ``(spec, workdir, epoch)`` tuple
down the pipe, completion is one exit-protocol code back up.

The crash-safety story is unchanged from per-job workers, by
construction:

* **Same execution body.**  A pooled task runs :func:`execute_job` —
  the exact heartbeat-thread + guarded :func:`~repro.service.jobs.run_job`
  body the per-job worker runs — so fencing, drain, result publication,
  and the exit-code protocol are shared code, not a parallel
  implementation.
* **Kill-then-fence still works.**  Expiring a lease SIGKILLs the
  slot's worker process exactly as it would a per-job worker; the pool
  then *respawns* the slot with a fresh process and a fresh pipe
  (discarding any half-written message), so one expired lease costs one
  fork — not a poisoned pool.
* **Work-stealing admission.**  Slots are pull-based: every supervision
  tick leases the head of the queue to any idle slot, so ``N`` queued
  jobs saturate ``size`` slots continuously instead of binding jobs to
  workers up front.

Exit codes double as the pool's completion protocol (sent over the
pipe) and the per-job worker's ``sys.exit`` status, so the supervisor
collects both modes through one code path.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from dataclasses import dataclass
from typing import Any

from ..log import get_logger
from ..telemetry import JsonlSink, MetricsRegistry, Telemetry
from ..telemetry.stream import SpanLatencySink
from .events import job_metrics_path, job_trace_path
from .jobs import (
    ERROR_NAME,
    RESULT_NAME,
    DrainRequested,
    JobGuard,
    JobSpec,
    LeaseFencedError,
    atomic_write_json,
    run_job,
)

__all__ = [
    "SharedWorkerPool",
    "PoolSlot",
    "execute_job",
    "EXIT_DONE",
    "EXIT_ERROR",
    "EXIT_FENCED",
    "EXIT_DRAINED",
    "SLOT_LOST",
]

logger = get_logger("service")

HEARTBEAT_NAME = "heartbeat"

#: Worker exit codes (the supervisor's collection protocol).
EXIT_DONE = 0
EXIT_ERROR = 1
EXIT_FENCED = 3
EXIT_DRAINED = 4

#: Pool poll outcome: the slot's worker died without reporting a code.
SLOT_LOST = -1


def _job_telemetry(workdir: str, max_bytes: int | None = None) -> Telemetry:
    """Per-job telemetry: a resumable trace sink plus span-latency
    histograms on the job's own metrics registry (published live for
    ``GET /metrics`` and tailed by the service event bus)."""
    metrics = MetricsRegistry()
    return Telemetry(
        [
            JsonlSink(job_trace_path(workdir), max_bytes=max_bytes),
            SpanLatencySink(metrics),
        ],
        metrics=metrics,
    )


def _publish_job_metrics(workdir: str, telemetry: Telemetry | None) -> None:
    """Atomically publish the worker's metrics snapshot (best-effort)."""
    if telemetry is None:
        return
    try:
        snap = telemetry.metrics.snapshot()
    except RuntimeError:  # registry resized under the beat thread
        return
    try:
        atomic_write_json(job_metrics_path(workdir), snap)
    except OSError:  # pragma: no cover - workdir vanished
        pass


def execute_job(
    spec_dict: dict[str, Any],
    workdir: str,
    epoch: int,
    heartbeat_interval: float,
    drain_path: str,
    job_traces: bool = True,
    trace_max_bytes: int | None = None,
    eval_store: str | None = None,
) -> int:
    """Run one guarded job attempt; return its exit-protocol code.

    This is the body both worker modes share: the per-job worker calls
    it once and ``sys.exit``\\ s the code; a pooled worker calls it per
    task and sends the code up its pipe.  A heartbeat thread advances
    ``<workdir>/heartbeat`` and republishes the job's metrics snapshot
    for the whole attempt.
    """
    spec = JobSpec.from_dict(spec_dict)
    guard = JobGuard(workdir=workdir, epoch=epoch, drain_path=drain_path)
    stop = threading.Event()
    hb_path = os.path.join(workdir, HEARTBEAT_NAME)
    telemetry = _job_telemetry(workdir, trace_max_bytes) if job_traces else None

    def beat() -> None:
        n = 0
        while not stop.is_set():
            n += 1
            try:
                with open(hb_path, "w") as f:
                    f.write(f"{n}\n")
            except OSError:  # pragma: no cover - workdir vanished
                return
            _publish_job_metrics(workdir, telemetry)
            stop.wait(heartbeat_interval)

    threading.Thread(target=beat, name="repro-heartbeat", daemon=True).start()
    try:
        result = run_job(
            spec, workdir, guard=guard, telemetry=telemetry,
            eval_store=eval_store,
        )
        result["epoch"] = epoch
        if telemetry is not None:
            # Close the trace *before* the result publishes: the WAL's
            # terminal transition (which follows the result) must never
            # precede the final trace lines a live tailer would stream.
            telemetry.close()
        # Final fence check *before* publishing: a worker whose lease
        # expired mid-run must not overwrite its successor's result.
        guard.check()
        atomic_write_json(os.path.join(workdir, RESULT_NAME), result)
        code = EXIT_DONE
    except DrainRequested:
        code = EXIT_DRAINED
    except LeaseFencedError:
        code = EXIT_FENCED
    except BaseException as exc:  # noqa: BLE001 - report, then return nonzero
        try:
            atomic_write_json(
                os.path.join(workdir, ERROR_NAME),
                {"error": repr(exc), "epoch": epoch},
            )
        except OSError:  # pragma: no cover - workdir vanished
            pass
        code = EXIT_ERROR
    finally:
        stop.set()
        if telemetry is not None:
            telemetry.close()  # idempotent
            _publish_job_metrics(workdir, telemetry)
    return code


def _pool_worker_main(
    conn,
    slot_index: int,
    heartbeat_interval: float,
    drain_path: str,
    job_traces: bool,
    trace_max_bytes: int | None,
    eval_store: str | None,
) -> None:
    """Long-lived pool worker: one task at a time over the slot's pipe.

    ``None`` is the shutdown sentinel; a closed pipe (parent died) also
    ends the loop.  Every task reports exactly one exit-protocol code,
    so the parent's recv/submit bookkeeping stays one-to-one.
    """
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            break
        if task is None:
            break
        spec_dict, workdir, epoch = task
        try:
            code = execute_job(
                spec_dict, workdir, epoch, heartbeat_interval, drain_path,
                job_traces, trace_max_bytes, eval_store,
            )
        except BaseException:  # pragma: no cover - execute_job reports itself
            code = EXIT_ERROR
        try:
            conn.send(code)
        except (BrokenPipeError, OSError):
            break
    try:
        conn.close()
    except OSError:  # pragma: no cover
        pass


@dataclass
class PoolSlot:
    """One worker slot: a long-lived process plus its dispatch pipe."""

    index: int
    process: Any = None
    conn: Any = None
    generation: int = 0  #: how many processes have backed this slot
    job_id: str | None = None  #: currently dispatched job, if any

    @property
    def busy(self) -> bool:
        return self.job_id is not None

    @property
    def pid(self) -> int | None:
        return self.process.pid if self.process is not None else None


class SharedWorkerPool:
    """Fixed pool of long-lived forked job workers, leased by slot.

    Parameters
    ----------
    size:
        Number of worker processes (= concurrent job slots).
    heartbeat_interval / drain_path / job_traces / trace_max_bytes /
    eval_store:
        Per-task execution knobs, forwarded verbatim to
        :func:`execute_job` inside each worker — identical semantics to
        the per-job worker's arguments.

    The pool is crash-transparent: a slot whose worker was SIGKILLed
    (lease expiry, chaos, OOM) is respawned with a fresh process and a
    fresh pipe on :meth:`kill`/:meth:`ensure`, so losing a worker never
    shrinks capacity.
    """

    def __init__(
        self,
        size: int,
        *,
        heartbeat_interval: float = 0.25,
        drain_path: str | None = None,
        job_traces: bool = True,
        trace_max_bytes: int | None = None,
        eval_store: str | None = None,
        mp_context=None,
    ):
        if size < 1:
            raise ValueError("pool size must be >= 1")
        self.size = int(size)
        self.heartbeat_interval = float(heartbeat_interval)
        self.drain_path = drain_path
        self.job_traces = bool(job_traces)
        self.trace_max_bytes = trace_max_bytes
        self.eval_store = eval_store
        self._mp = mp_context or multiprocessing.get_context("fork")
        self.slots = [PoolSlot(i) for i in range(self.size)]
        self.respawns = 0
        self._started = False

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        """Fork the workers (idempotent)."""
        if self._started:
            return
        for slot in self.slots:
            self._spawn(slot)
        self._started = True
        logger.info(
            "shared pool started: %d workers (pids %s)",
            self.size, [s.pid for s in self.slots],
        )

    def _spawn(self, slot: PoolSlot) -> None:
        parent, child = self._mp.Pipe()
        proc = self._mp.Process(
            target=_pool_worker_main,
            args=(
                child, slot.index, self.heartbeat_interval, self.drain_path,
                self.job_traces, self.trace_max_bytes, self.eval_store,
            ),
            name=f"repro-pool-{slot.index}",
            # Daemonic: workers run everything in-process (threads only,
            # never grandchildren), and a crashing parent must not be
            # held at interpreter exit by a busy pool worker.
            daemon=True,
        )
        proc.start()
        child.close()
        slot.process, slot.conn, slot.job_id = proc, parent, None
        slot.generation += 1

    def ensure(self, slot: PoolSlot) -> None:
        """Respawn the slot if its worker died (self-healing)."""
        if slot.process is not None and slot.process.is_alive():
            return
        if slot.process is not None:
            slot.process.join()
            self._close_conn(slot)
            self.respawns += 1
        self._spawn(slot)

    def kill(self, slot: PoolSlot) -> None:
        """SIGKILL the slot's worker and respawn it fresh.

        The old pipe is discarded wholesale — a kill mid-send must not
        leave a torn message for the next task's recv.
        """
        proc = slot.process
        if proc is not None:
            if proc.is_alive():
                proc.kill()
            proc.join()
        self._close_conn(slot)
        self.respawns += 1
        self._spawn(slot)

    @staticmethod
    def _close_conn(slot: PoolSlot) -> None:
        if slot.conn is not None:
            try:
                slot.conn.close()
            except OSError:  # pragma: no cover
                pass
            slot.conn = None

    def close(self, *, timeout: float = 5.0) -> None:
        """Stop every worker: idle workers get the shutdown sentinel,
        busy ones are killed (their jobs' checkpoints make the loss
        safe — the supervisor requeues and resumes them)."""
        for slot in self.slots:
            if slot.process is None:
                continue
            if slot.job_id is None and slot.process.is_alive():
                try:
                    slot.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
            elif slot.process.is_alive():
                slot.process.kill()
        for slot in self.slots:
            if slot.process is None:
                continue
            slot.process.join(timeout)
            if slot.process.is_alive():  # pragma: no cover - stuck worker
                slot.process.kill()
                slot.process.join()
            self._close_conn(slot)
            slot.process, slot.job_id = None, None
        self._started = False

    # -- dispatch ------------------------------------------------------
    def acquire(self) -> PoolSlot | None:
        """An idle slot (respawned if its worker died), or ``None``."""
        self.start()
        for slot in self.slots:
            if slot.job_id is None:
                self.ensure(slot)
                return slot
        return None

    def submit(
        self,
        slot: PoolSlot,
        job_id: str,
        spec_dict: dict[str, Any],
        workdir: str,
        epoch: int,
    ) -> None:
        """Dispatch one job attempt to an idle slot."""
        if slot.job_id is not None:
            raise RuntimeError(f"slot {slot.index} is busy with {slot.job_id}")
        slot.conn.send((spec_dict, workdir, epoch))
        slot.job_id = job_id

    def poll(self, slot: PoolSlot) -> int | None:
        """Completion state of the slot's current task.

        ``None`` while running; an exit-protocol code on completion;
        :data:`SLOT_LOST` when the worker died without reporting (the
        caller should :meth:`ensure` or :meth:`kill` to heal the slot).
        """
        try:
            if slot.conn.poll():
                try:
                    return int(slot.conn.recv())
                except (EOFError, OSError, TypeError, ValueError):
                    return SLOT_LOST
        except (OSError, ValueError):
            return SLOT_LOST
        if slot.process is None or not slot.process.is_alive():
            # Died between our poll and liveness check: drain any code
            # that made it into the pipe before declaring the slot lost.
            try:
                if slot.conn.poll():
                    return int(slot.conn.recv())
            except (EOFError, OSError, TypeError, ValueError):
                pass
            return SLOT_LOST
        return None

    def release(self, slot: PoolSlot) -> None:
        """Return a slot to the idle set after its outcome was collected."""
        slot.job_id = None

    # -- observability -------------------------------------------------
    @property
    def busy_count(self) -> int:
        return sum(1 for s in self.slots if s.job_id is not None)

    @property
    def idle_count(self) -> int:
        return self.size - self.busy_count

    def snapshot(self) -> dict[str, Any]:
        return {
            "size": self.size,
            "busy": self.busy_count,
            "respawns": self.respawns,
            "generations": [s.generation for s in self.slots],
            "pids": [s.pid for s in self.slots],
        }
