"""Minimal REST front-end for the tuning job service (stdlib only).

Routes::

    POST /jobs               {"kind", "tenant", "params"} -> 201 + record
    GET  /jobs               -> {"jobs": [summaries...]}; ?tenant= ?state=
    GET  /jobs/<id>          -> full record (incl. result when done)
    POST /jobs/<id>/cancel   -> updated record
    GET  /health             -> {"status", "queue_depth", ..., "metrics"}
    GET  /metrics            -> Prometheus text exposition (0.0.4)
    GET  /events             -> SSE stream of every job's events
    GET  /jobs/<id>/events   -> SSE stream of one job (ends on job_done)

The SSE endpoints speak standard ``text/event-stream``: each frame
carries the bus cursor as its ``id:``, so a client that reconnects with
``Last-Event-ID`` (header, or ``?last_event_id=`` for clients that
cannot set headers) resumes exactly after the last frame it saw — no
gaps, no duplicates, no torn lines (the bus only ever publishes whole
trace lines).  ``?max_events=N`` bounds a stream (tests) and
``?keepalive=SECONDS`` tunes the comment-ping cadence.

Shed submissions map to honest HTTP status codes — ``queue_full`` and
``tenant_quota`` are 429, ``tenant_quarantined`` 403, ``draining`` 503 —
and every rejection body carries the machine-readable ``reason`` the
registry recorded.  The handler threads only touch the supervisor's
thread-safe surface (``submit``/``cancel``/registry reads/metrics
snapshots/event-bus subscriptions); all lease mechanics stay on the
supervision loop thread.

The client half (:func:`submit_job`, :func:`stream_events`, and
friends) wraps :mod:`urllib` so the CLI and tests need no third-party
HTTP stack.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.parse
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Iterator, Mapping

from ..log import get_logger
from ..telemetry.metrics import render_prometheus
from .admission import (
    REASON_DRAINING,
    REASON_QUEUE_FULL,
    REASON_TENANT_QUARANTINED,
    REASON_TENANT_QUOTA,
)
from .jobs import JobSpec
from .registry import JobRecord, JobState
from .supervisor import Supervisor

__all__ = [
    "ServiceServer",
    "ServiceClientError",
    "submit_job",
    "job_status",
    "list_jobs",
    "cancel_job",
    "health",
    "metrics_text",
    "stream_events",
]

logger = get_logger("service")

#: Admission reason -> HTTP status for shed submissions.
_REJECT_STATUS = {
    REASON_QUEUE_FULL: 429,
    REASON_TENANT_QUOTA: 429,
    REASON_TENANT_QUARANTINED: 403,
    REASON_DRAINING: 503,
}


def _record_payload(rec: JobRecord, *, full: bool = True) -> dict[str, Any]:
    payload = {
        "job_id": rec.job_id,
        "kind": rec.spec.kind,
        "tenant": rec.spec.tenant,
        "state": rec.state,
        "epoch": rec.epoch,
        "attempt": rec.attempt,
        "reason": rec.reason,
    }
    if full:
        payload["params"] = dict(rec.spec.params)
        payload["result"] = rec.result
        payload["error"] = rec.error
    return payload


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------
    @property
    def supervisor(self) -> Supervisor:
        return self.server.supervisor  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        logger.debug("http: " + format, *args)

    def _send(self, status: int, payload: Mapping[str, Any]) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict[str, Any] | None:
        length = int(self.headers.get("Content-Length", 0))
        raw = self.rfile.read(length) if length else b"{}"
        try:
            data = json.loads(raw or b"{}")
        except json.JSONDecodeError:
            return None
        return data if isinstance(data, dict) else None

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path, _, rawq = self.path.partition("?")
        query = urllib.parse.parse_qs(rawq)
        parts = [p for p in path.split("/") if p]
        if parts == ["health"]:
            sup = self.supervisor
            self._send(
                200,
                {
                    "status": "draining" if sup.draining else "ok",
                    "queue_depth": sup.registry.queue_depth(),
                    "running": len(sup.active_leases()),
                    "workers": sup.workers,
                    "metrics": sup.metrics_snapshot(),
                },
            )
            return
        if parts == ["metrics"]:
            body = render_prometheus(self.supervisor.metrics_snapshot())
            data = body.encode("utf-8")
            self.send_response(200)
            self.send_header(
                "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
            )
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)
            return
        if parts == ["events"]:
            self._stream_events(None, query)
            return
        if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "events":
            self._stream_events(parts[1], query)
            return
        if parts == ["jobs"]:
            tenant = (query.get("tenant") or [None])[0]
            state = (query.get("state") or [None])[0]
            if state is not None and state not in JobState.ALL:
                self._send(
                    400,
                    {
                        "error": f"unknown state {state!r}",
                        "states": list(JobState.ALL),
                    },
                )
                return
            jobs = self.supervisor.registry.jobs()
            if tenant is not None:
                jobs = [r for r in jobs if r.spec.tenant == tenant]
            if state is not None:
                jobs = [r for r in jobs if r.state == state]
            self._send(
                200,
                {"jobs": [_record_payload(rec, full=False) for rec in jobs]},
            )
            return
        if len(parts) == 2 and parts[0] == "jobs":
            try:
                rec = self.supervisor.registry.get(parts[1])
            except KeyError:
                self._send(404, {"error": f"unknown job {parts[1]!r}"})
                return
            self._send(200, _record_payload(rec))
            return
        self._send(404, {"error": f"no route for GET {self.path}"})

    # -- SSE -----------------------------------------------------------
    def _stream_events(
        self, job_id: str | None, query: Mapping[str, list[str]]
    ) -> None:
        sup = self.supervisor
        if job_id is not None:
            try:
                sup.registry.get(job_id)
            except KeyError:
                self._send(404, {"error": f"unknown job {job_id!r}"})
                return
        last_id = self.headers.get("Last-Event-ID") or (
            query.get("last_event_id") or [None]
        )[0]
        try:
            after = int(last_id) if last_id else 0
            max_events = (
                int(query["max_events"][0]) if "max_events" in query else None
            )
            keepalive = float((query.get("keepalive") or ["15.0"])[0])
        except ValueError:
            self._send(
                400,
                {"error": "last_event_id / max_events / keepalive "
                          "must be numeric"},
            )
            return
        sub = sup.event_bus().subscribe(job_id=job_id, after=after)
        # SSE has no length; the response body ends when we close the
        # connection, so opt out of HTTP/1.1 keep-alive explicitly.
        self.close_connection = True
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()
        sent = 0
        try:
            while True:
                item = sub.get(timeout=keepalive)
                if item is None:
                    if sub.closed:  # bus closed (server stopping)
                        return
                    self.wfile.write(b": keep-alive\n\n")
                    self.wfile.flush()
                    continue
                cursor, event = item
                data = json.dumps(event, sort_keys=True)
                frame = (
                    f"id: {cursor}\n"
                    f"event: {event.get('event', 'message')}\n"
                    f"data: {data}\n\n"
                )
                self.wfile.write(frame.encode("utf-8"))
                self.wfile.flush()
                sent += 1
                if job_id is not None and event.get("event") == "job_done":
                    return
                if max_events is not None and sent >= max_events:
                    return
        except (BrokenPipeError, ConnectionResetError):
            return  # client went away; nothing to report
        finally:
            sub.close()

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if parts == ["jobs"]:
            data = self._read_json()
            if data is None or "kind" not in data:
                self._send(400, {"error": "body must be JSON with a 'kind'"})
                return
            try:
                spec = JobSpec(
                    kind=data["kind"],
                    tenant=data.get("tenant", "default"),
                    params=dict(data.get("params", {})),
                )
            except ValueError as exc:
                self._send(400, {"error": str(exc)})
                return
            rec, decision = self.supervisor.submit(spec)
            if decision.admitted:
                self._send(201, _record_payload(rec))
            else:
                self._send(
                    _REJECT_STATUS.get(decision.reason, 429),
                    {
                        **_record_payload(rec),
                        "error": decision.detail,
                        "reason": decision.reason,
                    },
                )
            return
        if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cancel":
            try:
                rec = self.supervisor.cancel(parts[1])
            except KeyError:
                self._send(404, {"error": f"unknown job {parts[1]!r}"})
                return
            self._send(200, _record_payload(rec))
            return
        self._send(404, {"error": f"no route for POST {self.path}"})


class ServiceServer:
    """Threaded HTTP front-end bound to one supervisor."""

    def __init__(
        self, supervisor: Supervisor, *, host: str = "127.0.0.1", port: int = 0
    ):
        self.supervisor = supervisor
        self.httpd = ThreadingHTTPServer((host, port), _Handler)
        self.httpd.daemon_threads = True
        self.httpd.supervisor = supervisor  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, name="repro-service-http",
            daemon=True,
        )
        self._thread.start()
        logger.info("service listening on %s", self.url)

    def stop(self) -> None:
        # Close the event bus first: shutdown() waits for in-flight
        # handlers, and SSE handlers block on their subscriptions — the
        # bus close wakes them so they can exit.
        self.supervisor.close_event_bus()
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def __enter__(self) -> "ServiceServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


# ----------------------------------------------------------------------
# Client


class ServiceClientError(RuntimeError):
    """Non-2xx response from the service (carries status + payload)."""

    def __init__(self, status: int, payload: Mapping[str, Any]):
        super().__init__(
            f"HTTP {status}: {payload.get('error') or payload.get('reason')}"
        )
        self.status = status
        self.payload = dict(payload)


def _request(
    url: str, *, method: str = "GET", payload: Mapping[str, Any] | None = None,
    timeout: float = 10.0,
) -> dict[str, Any]:
    body = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(
        url, data=body, method=method,
        headers={"Content-Type": "application/json"} if body else {},
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return json.loads(resp.read() or b"{}")
    except urllib.error.HTTPError as exc:
        try:
            data = json.loads(exc.read() or b"{}")
        except json.JSONDecodeError:
            data = {"error": str(exc)}
        raise ServiceClientError(exc.code, data) from None


def submit_job(
    base_url: str,
    kind: str,
    *,
    tenant: str = "default",
    params: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    return _request(
        f"{base_url}/jobs",
        method="POST",
        payload={"kind": kind, "tenant": tenant, "params": dict(params or {})},
    )


def job_status(base_url: str, job_id: str) -> dict[str, Any]:
    return _request(f"{base_url}/jobs/{job_id}")


def list_jobs(base_url: str) -> list[dict[str, Any]]:
    return _request(f"{base_url}/jobs")["jobs"]


def cancel_job(base_url: str, job_id: str) -> dict[str, Any]:
    return _request(f"{base_url}/jobs/{job_id}/cancel", method="POST")


def health(base_url: str) -> dict[str, Any]:
    return _request(f"{base_url}/health")


def metrics_text(base_url: str, *, timeout: float = 10.0) -> str:
    """Fetch the Prometheus text exposition from ``GET /metrics``."""
    req = urllib.request.Request(f"{base_url}/metrics")
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return resp.read().decode("utf-8")


def stream_events(
    base_url: str,
    job_id: str | None = None,
    *,
    last_event_id: int | None = None,
    timeout: float = 30.0,
    max_events: int | None = None,
    keepalive: float | None = None,
) -> Iterator[tuple[int, dict[str, Any]]]:
    """Consume an SSE endpoint as ``(cursor, event)`` pairs (stdlib only).

    ``last_event_id`` resumes after a previously seen cursor (sent as
    the standard ``Last-Event-ID`` header).  ``timeout`` is the socket
    read timeout — it must exceed the server's keep-alive cadence
    (pass ``keepalive`` to tighten the server's pings instead).  The
    generator ends when the server closes the stream: after ``job_done``
    on per-job streams, after ``max_events`` frames, or at shutdown.
    """
    params: dict[str, str] = {}
    if max_events is not None:
        params["max_events"] = str(max_events)
    if keepalive is not None:
        params["keepalive"] = str(keepalive)
    url = base_url + (f"/jobs/{job_id}/events" if job_id else "/events")
    if params:
        url += "?" + urllib.parse.urlencode(params)
    headers = {"Accept": "text/event-stream"}
    if last_event_id is not None:
        headers["Last-Event-ID"] = str(last_event_id)
    req = urllib.request.Request(url, headers=headers)
    try:
        resp = urllib.request.urlopen(req, timeout=timeout)
    except urllib.error.HTTPError as exc:
        try:
            data = json.loads(exc.read() or b"{}")
        except json.JSONDecodeError:
            data = {"error": str(exc)}
        raise ServiceClientError(exc.code, data) from None
    with resp:
        cursor: int | None = None
        data_lines: list[str] = []
        for raw in resp:
            line = raw.decode("utf-8").rstrip("\r\n")
            if not line:  # blank line = frame boundary
                if data_lines and cursor is not None:
                    yield cursor, json.loads("\n".join(data_lines))
                cursor, data_lines = None, []
                continue
            if line.startswith(":"):
                continue  # keep-alive comment
            field_name, _, value = line.partition(":")
            if value.startswith(" "):
                value = value[1:]
            if field_name == "id":
                cursor = int(value)
            elif field_name == "data":
                data_lines.append(value)


def wait_for_job(
    base_url: str, job_id: str, *, timeout: float = 60.0, interval: float = 0.1
) -> dict[str, Any]:
    """Poll until the job reaches a terminal state (or raise TimeoutError)."""
    import time

    deadline = time.monotonic() + timeout
    while True:
        rec = job_status(base_url, job_id)
        if rec["state"] in JobState.TERMINAL:
            return rec
        if time.monotonic() > deadline:
            raise TimeoutError(
                f"job {job_id} still {rec['state']} after {timeout:g}s"
            )
        time.sleep(interval)
