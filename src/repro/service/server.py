"""Minimal REST front-end for the tuning job service (stdlib only).

Routes::

    POST /jobs               {"kind", "tenant", "params"} -> 201 + record
    GET  /jobs               -> {"jobs": [summaries...]}
    GET  /jobs/<id>          -> full record (incl. result when done)
    POST /jobs/<id>/cancel   -> updated record
    GET  /health             -> {"status", "queue_depth", "running", ...}

Shed submissions map to honest HTTP status codes — ``queue_full`` and
``tenant_quota`` are 429, ``tenant_quarantined`` 403, ``draining`` 503 —
and every rejection body carries the machine-readable ``reason`` the
registry recorded.  The handler threads only touch the supervisor's
thread-safe surface (``submit``/``cancel``/registry reads); all lease
mechanics stay on the supervision loop thread.

The client half (:func:`submit_job` and friends) wraps :mod:`urllib` so
the CLI and tests need no third-party HTTP stack.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Mapping

from ..log import get_logger
from .admission import (
    REASON_DRAINING,
    REASON_QUEUE_FULL,
    REASON_TENANT_QUARANTINED,
    REASON_TENANT_QUOTA,
)
from .jobs import JobSpec
from .registry import JobRecord, JobState
from .supervisor import Supervisor

__all__ = [
    "ServiceServer",
    "ServiceClientError",
    "submit_job",
    "job_status",
    "list_jobs",
    "cancel_job",
    "health",
]

logger = get_logger("service")

#: Admission reason -> HTTP status for shed submissions.
_REJECT_STATUS = {
    REASON_QUEUE_FULL: 429,
    REASON_TENANT_QUOTA: 429,
    REASON_TENANT_QUARANTINED: 403,
    REASON_DRAINING: 503,
}


def _record_payload(rec: JobRecord, *, full: bool = True) -> dict[str, Any]:
    payload = {
        "job_id": rec.job_id,
        "kind": rec.spec.kind,
        "tenant": rec.spec.tenant,
        "state": rec.state,
        "epoch": rec.epoch,
        "attempt": rec.attempt,
        "reason": rec.reason,
    }
    if full:
        payload["params"] = dict(rec.spec.params)
        payload["result"] = rec.result
        payload["error"] = rec.error
    return payload


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------
    @property
    def supervisor(self) -> Supervisor:
        return self.server.supervisor  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        logger.debug("http: " + format, *args)

    def _send(self, status: int, payload: Mapping[str, Any]) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict[str, Any] | None:
        length = int(self.headers.get("Content-Length", 0))
        raw = self.rfile.read(length) if length else b"{}"
        try:
            data = json.loads(raw or b"{}")
        except json.JSONDecodeError:
            return None
        return data if isinstance(data, dict) else None

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if parts == ["health"]:
            sup = self.supervisor
            self._send(
                200,
                {
                    "status": "draining" if sup.draining else "ok",
                    "queue_depth": sup.registry.queue_depth(),
                    "running": len(sup.active_leases()),
                    "workers": sup.workers,
                },
            )
            return
        if parts == ["jobs"]:
            self._send(
                200,
                {
                    "jobs": [
                        _record_payload(rec, full=False)
                        for rec in self.supervisor.registry.jobs()
                    ]
                },
            )
            return
        if len(parts) == 2 and parts[0] == "jobs":
            try:
                rec = self.supervisor.registry.get(parts[1])
            except KeyError:
                self._send(404, {"error": f"unknown job {parts[1]!r}"})
                return
            self._send(200, _record_payload(rec))
            return
        self._send(404, {"error": f"no route for GET {self.path}"})

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if parts == ["jobs"]:
            data = self._read_json()
            if data is None or "kind" not in data:
                self._send(400, {"error": "body must be JSON with a 'kind'"})
                return
            try:
                spec = JobSpec(
                    kind=data["kind"],
                    tenant=data.get("tenant", "default"),
                    params=dict(data.get("params", {})),
                )
            except ValueError as exc:
                self._send(400, {"error": str(exc)})
                return
            rec, decision = self.supervisor.submit(spec)
            if decision.admitted:
                self._send(201, _record_payload(rec))
            else:
                self._send(
                    _REJECT_STATUS.get(decision.reason, 429),
                    {
                        **_record_payload(rec),
                        "error": decision.detail,
                        "reason": decision.reason,
                    },
                )
            return
        if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cancel":
            try:
                rec = self.supervisor.cancel(parts[1])
            except KeyError:
                self._send(404, {"error": f"unknown job {parts[1]!r}"})
                return
            self._send(200, _record_payload(rec))
            return
        self._send(404, {"error": f"no route for POST {self.path}"})


class ServiceServer:
    """Threaded HTTP front-end bound to one supervisor."""

    def __init__(
        self, supervisor: Supervisor, *, host: str = "127.0.0.1", port: int = 0
    ):
        self.supervisor = supervisor
        self.httpd = ThreadingHTTPServer((host, port), _Handler)
        self.httpd.daemon_threads = True
        self.httpd.supervisor = supervisor  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, name="repro-service-http",
            daemon=True,
        )
        self._thread.start()
        logger.info("service listening on %s", self.url)

    def stop(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def __enter__(self) -> "ServiceServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


# ----------------------------------------------------------------------
# Client


class ServiceClientError(RuntimeError):
    """Non-2xx response from the service (carries status + payload)."""

    def __init__(self, status: int, payload: Mapping[str, Any]):
        super().__init__(
            f"HTTP {status}: {payload.get('error') or payload.get('reason')}"
        )
        self.status = status
        self.payload = dict(payload)


def _request(
    url: str, *, method: str = "GET", payload: Mapping[str, Any] | None = None,
    timeout: float = 10.0,
) -> dict[str, Any]:
    body = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(
        url, data=body, method=method,
        headers={"Content-Type": "application/json"} if body else {},
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return json.loads(resp.read() or b"{}")
    except urllib.error.HTTPError as exc:
        try:
            data = json.loads(exc.read() or b"{}")
        except json.JSONDecodeError:
            data = {"error": str(exc)}
        raise ServiceClientError(exc.code, data) from None


def submit_job(
    base_url: str,
    kind: str,
    *,
    tenant: str = "default",
    params: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    return _request(
        f"{base_url}/jobs",
        method="POST",
        payload={"kind": kind, "tenant": tenant, "params": dict(params or {})},
    )


def job_status(base_url: str, job_id: str) -> dict[str, Any]:
    return _request(f"{base_url}/jobs/{job_id}")


def list_jobs(base_url: str) -> list[dict[str, Any]]:
    return _request(f"{base_url}/jobs")["jobs"]


def cancel_job(base_url: str, job_id: str) -> dict[str, Any]:
    return _request(f"{base_url}/jobs/{job_id}/cancel", method="POST")


def health(base_url: str) -> dict[str, Any]:
    return _request(f"{base_url}/health")


def wait_for_job(
    base_url: str, job_id: str, *, timeout: float = 60.0, interval: float = 0.1
) -> dict[str, Any]:
    """Poll until the job reaches a terminal state (or raise TimeoutError)."""
    import time

    deadline = time.monotonic() + timeout
    while True:
        rec = job_status(base_url, job_id)
        if rec["state"] in JobState.TERMINAL:
            return rec
        if time.monotonic() > deadline:
            raise TimeoutError(
                f"job {job_id} still {rec['state']} after {timeout:g}s"
            )
        time.sleep(interval)
