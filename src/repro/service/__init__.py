"""Crash-safe tuning job service (see ``docs/service.md``).

Layers, bottom to top:

* :mod:`repro.service.jobs` — job specs, the fence/drain guard, and the
  deterministic job runner (checkpoints scoped per job workdir).
* :mod:`repro.service.registry` — WAL-backed job registry: every state
  transition appended (and fsynced) before it is acknowledged, snapshot
  compaction, torn-tail recovery.
* :mod:`repro.service.admission` — bounded queue, per-tenant quotas and
  quarantine (circuit-breaker cells), explicit shedding.
* :mod:`repro.service.pool` — the shared worker pool: long-lived forked
  workers leased per slot, amortizing process startup across jobs.
* :mod:`repro.service.supervisor` — leases with heartbeat supervision,
  epoch fencing against zombie workers, graceful drain on SIGTERM;
  drives either per-job workers or the shared pool.
* :mod:`repro.service.server` — stdlib REST front-end + client helpers
  (``repro serve`` / ``repro submit`` in the CLI).
* :mod:`repro.service.events` — the observability plane: SSE event bus
  (``GET /events``), per-job trace tailing, and cross-job aggregation
  (``repro report --service``).
"""

from .admission import AdmissionController, AdmissionDecision
from .events import (
    ServiceEventBus,
    ServiceReport,
    job_metrics_path,
    job_trace_path,
    load_registry_records,
)
from .jobs import (
    DrainRequested,
    GuardedCallable,
    JobGuard,
    JobSpec,
    LeaseFencedError,
    read_fence,
    run_job,
    write_fence,
)
from .pool import PoolSlot, SharedWorkerPool, execute_job
from .registry import IllegalTransition, JobRecord, JobRegistry, JobState, RegistryError
from .server import (
    ServiceClientError,
    ServiceServer,
    cancel_job,
    health,
    job_status,
    list_jobs,
    metrics_text,
    stream_events,
    submit_job,
    wait_for_job,
)
from .supervisor import Lease, Supervisor

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "DrainRequested",
    "GuardedCallable",
    "IllegalTransition",
    "JobGuard",
    "JobRecord",
    "JobRegistry",
    "JobSpec",
    "JobState",
    "Lease",
    "LeaseFencedError",
    "PoolSlot",
    "RegistryError",
    "SharedWorkerPool",
    "execute_job",
    "ServiceClientError",
    "ServiceEventBus",
    "ServiceReport",
    "ServiceServer",
    "Supervisor",
    "cancel_job",
    "health",
    "job_metrics_path",
    "job_status",
    "job_trace_path",
    "list_jobs",
    "load_registry_records",
    "metrics_text",
    "read_fence",
    "run_job",
    "stream_events",
    "submit_job",
    "wait_for_job",
    "write_fence",
]
