"""Encoded candidate pools: build once, score in bulk, share across processes.

The BO hot path scores the same candidate matrix against a growing
surrogate every iteration; campaigns with a fixed candidate pool
additionally ship that pool to every pool worker.  This module gives both
a home:

:class:`EncodedPool`
    A candidate pool encoded exactly once — the decoded configuration
    dicts, the ``(m, d)`` unit-cube matrix the batched acquisition path
    scores in a single ``predict`` call, and the identity keys used to
    mask already-evaluated candidates in O(1) per candidate.

:class:`SharedMatrix`
    A 2-D float64 array backed by :mod:`multiprocessing.shared_memory`.
    It pickles as its ``(name, shape)`` handle — O(1) bytes — so a
    process-pool payload carrying a pool matrix ships a reference to the
    same physical pages instead of a copy per member task.  Attached
    views are read-only; content is bit-identical either way, so results
    do not depend on whether the pool crossed a process boundary.

Shared segments are an *explicit* lifecycle: whoever calls
:meth:`EncodedPool.ensure_shared` (the campaign executor, before pickling
member payloads) calls :meth:`EncodedPool.release` afterwards, which
copies the matrix back into private memory and unlinks the segment.
Everything degrades gracefully — when shared memory is unavailable the
pool simply keeps its in-process ndarray and payloads fall back to
pickling the data.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

__all__ = ["EncodedPool", "SharedMatrix"]


class SharedMatrix:
    """2-D float64 array in POSIX shared memory, pickled by handle.

    Creating one copies ``array`` into a fresh segment (the creator owns
    it and is responsible for :meth:`close`); unpickling attaches to the
    existing segment by name without copying.  Attached processes get
    read-only views and never unlink.
    """

    def __init__(self, array: np.ndarray):
        from multiprocessing import shared_memory

        arr = np.ascontiguousarray(np.asarray(array, dtype=np.float64))
        if arr.ndim != 2:
            raise ValueError(f"SharedMatrix requires a 2-D array, got {arr.ndim}-D")
        self.shape = arr.shape
        self._shm = shared_memory.SharedMemory(create=True, size=max(1, arr.nbytes))
        self._owner = True
        view = np.ndarray(self.shape, dtype=np.float64, buffer=self._shm.buf)
        view[...] = arr

    @classmethod
    def _attach(cls, name: str, shape: tuple[int, int]) -> "SharedMatrix":
        from multiprocessing import shared_memory

        self = object.__new__(cls)
        self.shape = tuple(shape)
        # The resource tracker registers segments on attach as well as on
        # create (bpo-39959), so a borrowing worker's exit would unlink
        # the owner's segment.  Suppress registration for the attach call
        # (rather than unregistering afterwards, which under the *fork*
        # start method would clobber the owner's own registration in the
        # shared tracker daemon).
        try:
            from multiprocessing import resource_tracker

            original_register = resource_tracker.register
            resource_tracker.register = lambda *a, **k: None
            try:
                self._shm = shared_memory.SharedMemory(name=name)
            finally:
                resource_tracker.register = original_register
        except ImportError:
            self._shm = shared_memory.SharedMemory(name=name)
        self._owner = False
        return self

    def __reduce__(self):
        return (SharedMatrix._attach, (self._shm.name, tuple(self.shape)))

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def owner(self) -> bool:
        return self._owner

    @property
    def array(self) -> np.ndarray:
        """Read-only ndarray view over the shared pages (zero-copy)."""
        out = np.ndarray(self.shape, dtype=np.float64, buffer=self._shm.buf)
        out.flags.writeable = False
        return out

    def close(self) -> None:
        """Detach; the owner additionally unlinks the segment."""
        try:
            self._shm.close()
        except Exception:
            pass
        if self._owner:
            try:
                self._shm.unlink()
            except Exception:
                pass


class EncodedPool:
    """An immutable candidate pool, encoded once.

    Parameters
    ----------
    configs:
        Decoded configuration dicts (pool order defines candidate order).
    X:
        The ``(m, d)`` encoded matrix, ``space.encode_batch(configs)``.
    keys:
        Identity keys (``tuple(config[name] for name in space.names)``)
        aligned with ``configs`` — used to mask evaluated candidates.
    """

    def __init__(
        self,
        configs: Sequence[Mapping[str, Any]],
        X: np.ndarray | SharedMatrix,
        keys: Sequence[tuple] | None = None,
    ):
        self.configs = [dict(c) for c in configs]
        self._X = X
        m = X.shape[0]
        if m != len(self.configs):
            raise ValueError(
                f"matrix has {m} rows but pool holds {len(self.configs)} configs"
            )
        self.keys = list(keys) if keys is not None else None

    @classmethod
    def from_configs(
        cls, space, configs: Sequence[Mapping[str, Any]]
    ) -> "EncodedPool":
        """Encode ``configs`` for ``space`` (one column op per parameter)."""
        configs = [dict(c) for c in configs]
        names = space.names
        return cls(
            configs,
            space.encode_batch(configs),
            keys=[tuple(c[k] for k in names) for c in configs],
        )

    def __len__(self) -> int:
        return len(self.configs)

    @property
    def X(self) -> np.ndarray:
        """The encoded ``(m, d)`` matrix (a zero-copy view when shared)."""
        return self._X.array if isinstance(self._X, SharedMatrix) else self._X

    @property
    def is_shared(self) -> bool:
        return isinstance(self._X, SharedMatrix)

    @property
    def backend(self) -> str:
        """``"shared"`` or ``"local"`` — the acquisition span attribute."""
        return "shared" if self.is_shared else "local"

    def ensure_shared(self) -> bool:
        """Move the matrix into shared memory; ``True`` on success.

        Idempotent.  Returns ``False`` (keeping the private ndarray) when
        shared memory is unavailable on this platform.
        """
        if self.is_shared:
            return True
        try:
            self._X = SharedMatrix(self._X)
        except Exception:
            return False
        return True

    def release(self) -> None:
        """Copy the matrix back to private memory and unlink the segment.

        Only meaningful in the owning process; a no-op for local pools.
        """
        if not self.is_shared:
            return
        shm = self._X
        self._X = np.array(shm.array)  # private copy before the pages go
        shm.close()
