"""Acquisition functions and their maximization over constrained spaces.

All acquisitions follow the *minimization* convention used throughout this
package (objectives are runtimes): the incumbent is the smallest observed
value and "improvement" means going below it.

The maximizer is derivative-free and constraint-aware: it scores a large
batch of feasible candidates (random + neighbors of the incumbent) in one
vectorized GP prediction, which both respects arbitrary validity predicates
and keeps discrete parameters on their grids — the same candidate-filtering
strategy GPTune uses for constrained HPC spaces.
"""

from __future__ import annotations

from abc import ABC
from typing import Any, Mapping, Sequence

import numpy as np
from scipy.stats import norm

from ..space import SearchSpace
from .gp import GaussianProcess
from .pool import EncodedPool

__all__ = [
    "AcquisitionFunction",
    "ExpectedImprovement",
    "ProbabilityOfImprovement",
    "LowerConfidenceBound",
    "ThompsonSampling",
    "acquisition_by_name",
    "assemble_candidates",
    "score_candidates",
    "maximize_acquisition",
]


class AcquisitionFunction(ABC):
    """Scores candidate points; higher is more promising.

    The scoring path is split in two so the hot loop stays in BLAS/ufunc
    land: :meth:`__call__` runs *one* batched ``model.predict`` over the
    whole encoded pool, then hands the ``(mu, std)`` arrays to
    :meth:`score`, which must be a pure ufunc composition (no Python
    per-candidate work, no model access).  Acquisitions that need more
    than the marginal posterior (Thompson sampling's joint draw) override
    :meth:`__call__` directly.
    """

    def score(
        self, mu: np.ndarray, std: np.ndarray, incumbent: float
    ) -> np.ndarray:
        """Pure-ufunc score from posterior marginals -> ``(m,)``."""
        raise NotImplementedError(
            f"{type(self).__name__} does not score from posterior marginals"
        )

    def __call__(
        self,
        model: GaussianProcess,
        X: np.ndarray,
        incumbent: float,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Vectorized score for encoded candidates ``X`` -> ``(m,)``.

        ``rng`` is consumed only by stochastic acquisitions (Thompson
        sampling); deterministic ones ignore it, so the caller can always
        pass its per-iteration stream without perturbing results.
        """
        mu, std = model.predict(X)
        return self.score(mu, std, incumbent)

    def update(self, iteration: int, total: int) -> None:
        """Hook for schedule-dependent acquisitions (e.g. LCB beta decay)."""


class ExpectedImprovement(AcquisitionFunction):
    """EI for minimization: ``E[max(incumbent - f(x) - xi, 0)]``.

    ``xi`` is the exploration jitter; 0.01 on standardized objectives is the
    textbook default.
    """

    def __init__(self, xi: float = 0.01):
        self.xi = float(xi)

    def score(self, mu, std, incumbent):
        std = np.maximum(std, 1e-12)
        imp = incumbent - mu - self.xi
        z = imp / std
        ei = imp * norm.cdf(z) + std * norm.pdf(z)
        # EI is mathematically >= 0; catastrophic cancellation near a
        # degenerate posterior (std at the clamp, imp < 0) can produce
        # tiny negatives, which would outrank genuine zeros.
        return np.maximum(ei, 0.0, out=ei)


class ProbabilityOfImprovement(AcquisitionFunction):
    """PI for minimization: ``P[f(x) < incumbent - xi]``."""

    def __init__(self, xi: float = 0.01):
        self.xi = float(xi)

    def score(self, mu, std, incumbent):
        std = np.maximum(std, 1e-12)
        return norm.cdf((incumbent - mu - self.xi) / std)


class LowerConfidenceBound(AcquisitionFunction):
    """LCB for minimization: score = ``-(mu - beta * std)``.

    ``beta`` optionally decays from ``beta`` to ``beta_final`` across the
    run (exploration early, exploitation late).  ``beta`` is a pure
    function of the latest :meth:`update` call, so a resumed search that
    replays the schedule reaches the identical value.
    """

    def __init__(self, beta: float = 2.0, beta_final: float | None = None):
        if beta <= 0:
            raise ValueError("beta must be positive")
        self.beta0 = float(beta)
        self.beta_final = float(beta_final) if beta_final is not None else None
        self.beta = self.beta0

    def update(self, iteration: int, total: int) -> None:
        if self.beta_final is not None and total > 1:
            frac = min(1.0, iteration / (total - 1))
            self.beta = self.beta0 + frac * (self.beta_final - self.beta0)

    def score(self, mu, std, incumbent):
        return -(mu - self.beta * std)


class ThompsonSampling(AcquisitionFunction):
    """One joint posterior draw; the candidate minimizing the sample wins.

    Naturally batch-friendly and parameter-free; included for the
    acquisition ablation benchmark.

    Determinism: when the caller passes ``rng`` (the BO loop passes its
    per-iteration SeedSequence stream), the draw is keyed to the search's
    progress index and kill-and-resume replays it bit-identically.  The
    private ``random_state`` generator is only a fallback for direct
    standalone calls.
    """

    def __init__(self, random_state: int | np.random.Generator | None = None):
        self.rng = (
            random_state
            if isinstance(random_state, np.random.Generator)
            else np.random.default_rng(random_state)
        )

    def __call__(self, model, X, incumbent, rng=None):
        sample = model.sample_posterior(
            X, n_samples=1, rng=rng if rng is not None else self.rng
        )[0]
        return -sample


_ACQUISITIONS = {
    "ei": ExpectedImprovement,
    "pi": ProbabilityOfImprovement,
    "lcb": LowerConfidenceBound,
    "ts": ThompsonSampling,
}


def acquisition_by_name(name: str, **kwargs) -> AcquisitionFunction:
    """Factory: ``acquisition_by_name("ei")``; raises on unknown names."""
    try:
        cls = _ACQUISITIONS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown acquisition {name!r}; choose from {sorted(_ACQUISITIONS)}"
        ) from None
    return cls(**kwargs)


def assemble_candidates(
    space: SearchSpace,
    rng: np.random.Generator,
    *,
    n_candidates: int = 512,
    incumbent_config: Mapping[str, Any] | None = None,
    exclude: Sequence[Mapping[str, Any]] = (),
    exclude_keys: set[tuple] | None = None,
) -> list[dict[str, Any]]:
    """Build the feasible candidate pool the acquisition scores.

    Candidate pool = constrained random samples + the feasible neighbors of
    the incumbent configuration (local refinement).  Already-evaluated
    configurations — given either as ``exclude`` dicts or as precomputed
    identity ``exclude_keys`` (``tuple(c[name] for name in space.names)``,
    the O(1)-per-iteration form the BO loop maintains incrementally) — are
    skipped so discrete searches do not stall re-suggesting the same point
    (unless the space is exhausted, in which case repeats are allowed
    rather than returning nothing).

    Shared by the sequential maximizer and the batch (constant-liar)
    proposer: batch BO builds the pool *once*, encodes it once, and scores
    all Q proposals against the same candidate matrix so the surrogate's
    kernel cross-columns are computed a single time.
    """
    candidates: list[dict[str, Any]] = []
    try:
        candidates.extend(space.sample_batch(n_candidates, rng, unique=True))
    except Exception:
        pass
    if incumbent_config is not None:
        candidates.extend(space.neighbors(incumbent_config))
    if not candidates:
        raise RuntimeError(f"no feasible candidates available in {space.name!r}")

    names = space.names
    seen = set(exclude_keys) if exclude_keys is not None else set()
    seen.update(tuple(c[k] for k in names) for c in exclude)
    fresh = [c for c in candidates if tuple(c[k] for k in names) not in seen]
    if fresh:
        candidates = fresh  # only fall back to repeats when space is exhausted
    return candidates


def score_candidates(
    acquisition: AcquisitionFunction,
    model: GaussianProcess,
    X: np.ndarray,
    incumbent: float,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Score an encoded ``(m, d)`` pool in one batched call -> ``(m,)``.

    One ``model.predict`` over the whole matrix, acquisitions pure-ufunc
    on the ``(mu, std)`` arrays (see :meth:`AcquisitionFunction.score`);
    non-finite scores are masked to ``-inf`` so they can never win the
    argmax.
    """
    scores = np.asarray(acquisition(model, X, incumbent, rng), dtype=float)
    scores[~np.isfinite(scores)] = -np.inf
    return scores


def maximize_acquisition(
    acquisition: AcquisitionFunction,
    model: GaussianProcess,
    space: SearchSpace,
    incumbent: float,
    rng: np.random.Generator,
    *,
    n_candidates: int = 512,
    incumbent_config: Mapping[str, Any] | None = None,
    exclude: Sequence[Mapping[str, Any]] = (),
    exclude_keys: set[tuple] | None = None,
    pool: EncodedPool | None = None,
    acquisition_rng: np.random.Generator | None = None,
) -> dict[str, Any]:
    """Pick the feasible configuration with the best acquisition score.

    With ``pool`` given (a fixed :class:`~repro.bo.pool.EncodedPool`),
    the pre-encoded matrix is scored directly — no sampling, no
    re-encoding — and evaluated candidates are masked by key; when every
    pool entry is masked the maximizer falls back to freshly sampled
    candidates so the search keeps making progress.  Otherwise the pool
    is assembled per call (see :func:`assemble_candidates`).

    ``acquisition_rng`` feeds stochastic acquisitions (Thompson
    sampling); the BO loop passes its per-iteration stream so proposals
    stay deterministic and kill-and-resume bit-identical.
    """
    if pool is not None and len(pool) > 0:
        scores = score_candidates(
            acquisition, model, pool.X, incumbent, acquisition_rng
        )
        names = space.names
        masked = set(exclude_keys) if exclude_keys is not None else set()
        masked.update(tuple(c[k] for k in names) for c in exclude)
        if masked:
            keys = pool.keys or [
                tuple(c[k] for k in names) for c in pool.configs
            ]
            hit = np.fromiter(
                (k in masked for k in keys), dtype=bool, count=len(keys)
            )
            scores[hit] = -np.inf
        if np.isfinite(scores.max()):
            return dict(pool.configs[int(np.argmax(scores))])
        # Fixed pool exhausted: fall through to fresh sampling below.
    candidates = assemble_candidates(
        space,
        rng,
        n_candidates=n_candidates,
        incumbent_config=incumbent_config,
        exclude=exclude,
        exclude_keys=exclude_keys,
    )
    X = space.encode_batch(candidates)
    scores = score_candidates(acquisition, model, X, incumbent, acquisition_rng)
    return candidates[int(np.argmax(scores))]
