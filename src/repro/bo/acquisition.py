"""Acquisition functions and their maximization over constrained spaces.

All acquisitions follow the *minimization* convention used throughout this
package (objectives are runtimes): the incumbent is the smallest observed
value and "improvement" means going below it.

The maximizer is derivative-free and constraint-aware: it scores a large
batch of feasible candidates (random + neighbors of the incumbent) in one
vectorized GP prediction, which both respects arbitrary validity predicates
and keeps discrete parameters on their grids — the same candidate-filtering
strategy GPTune uses for constrained HPC spaces.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Mapping, Sequence

import numpy as np
from scipy.stats import norm

from ..space import SearchSpace
from .gp import GaussianProcess

__all__ = [
    "AcquisitionFunction",
    "ExpectedImprovement",
    "ProbabilityOfImprovement",
    "LowerConfidenceBound",
    "ThompsonSampling",
    "acquisition_by_name",
    "assemble_candidates",
    "maximize_acquisition",
]


class AcquisitionFunction(ABC):
    """Scores candidate points; higher is more promising."""

    @abstractmethod
    def __call__(
        self, model: GaussianProcess, X: np.ndarray, incumbent: float
    ) -> np.ndarray:
        """Vectorized score for encoded candidates ``X`` -> ``(m,)``."""

    def update(self, iteration: int, total: int) -> None:
        """Hook for schedule-dependent acquisitions (e.g. LCB beta decay)."""


class ExpectedImprovement(AcquisitionFunction):
    """EI for minimization: ``E[max(incumbent - f(x) - xi, 0)]``.

    ``xi`` is the exploration jitter; 0.01 on standardized objectives is the
    textbook default.
    """

    def __init__(self, xi: float = 0.01):
        self.xi = float(xi)

    def __call__(self, model, X, incumbent):
        mu, std = model.predict(X)
        std = np.maximum(std, 1e-12)
        z = (incumbent - mu - self.xi) / std
        return (incumbent - mu - self.xi) * norm.cdf(z) + std * norm.pdf(z)


class ProbabilityOfImprovement(AcquisitionFunction):
    """PI for minimization: ``P[f(x) < incumbent - xi]``."""

    def __init__(self, xi: float = 0.01):
        self.xi = float(xi)

    def __call__(self, model, X, incumbent):
        mu, std = model.predict(X)
        std = np.maximum(std, 1e-12)
        return norm.cdf((incumbent - mu - self.xi) / std)


class LowerConfidenceBound(AcquisitionFunction):
    """LCB for minimization: score = ``-(mu - beta * std)``.

    ``beta`` optionally decays from ``beta`` to ``beta_final`` across the
    run (exploration early, exploitation late).
    """

    def __init__(self, beta: float = 2.0, beta_final: float | None = None):
        if beta <= 0:
            raise ValueError("beta must be positive")
        self.beta0 = float(beta)
        self.beta_final = float(beta_final) if beta_final is not None else None
        self.beta = self.beta0

    def update(self, iteration: int, total: int) -> None:
        if self.beta_final is not None and total > 1:
            frac = min(1.0, iteration / (total - 1))
            self.beta = self.beta0 + frac * (self.beta_final - self.beta0)

    def __call__(self, model, X, incumbent):
        mu, std = model.predict(X)
        return -(mu - self.beta * std)


class ThompsonSampling(AcquisitionFunction):
    """One joint posterior draw; the candidate minimizing the sample wins.

    Naturally batch-friendly and parameter-free; included for the
    acquisition ablation benchmark.
    """

    def __init__(self, random_state: int | np.random.Generator | None = None):
        self.rng = (
            random_state
            if isinstance(random_state, np.random.Generator)
            else np.random.default_rng(random_state)
        )

    def __call__(self, model, X, incumbent):
        sample = model.sample_posterior(X, n_samples=1, rng=self.rng)[0]
        return -sample


_ACQUISITIONS = {
    "ei": ExpectedImprovement,
    "pi": ProbabilityOfImprovement,
    "lcb": LowerConfidenceBound,
    "ts": ThompsonSampling,
}


def acquisition_by_name(name: str, **kwargs) -> AcquisitionFunction:
    """Factory: ``acquisition_by_name("ei")``; raises on unknown names."""
    try:
        cls = _ACQUISITIONS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown acquisition {name!r}; choose from {sorted(_ACQUISITIONS)}"
        ) from None
    return cls(**kwargs)


def assemble_candidates(
    space: SearchSpace,
    rng: np.random.Generator,
    *,
    n_candidates: int = 512,
    incumbent_config: Mapping[str, Any] | None = None,
    exclude: Sequence[Mapping[str, Any]] = (),
) -> list[dict[str, Any]]:
    """Build the feasible candidate pool the acquisition scores.

    Candidate pool = constrained random samples + the feasible neighbors of
    the incumbent configuration (local refinement).  Already-evaluated
    configurations in ``exclude`` are skipped so discrete searches do not
    stall re-suggesting the same point (unless the space is exhausted, in
    which case repeats are allowed rather than returning nothing).

    Shared by the sequential maximizer and the batch (constant-liar)
    proposer: batch BO builds the pool *once*, encodes it once, and scores
    all Q proposals against the same candidate matrix so the surrogate's
    kernel cross-columns are computed a single time.
    """
    candidates: list[dict[str, Any]] = []
    try:
        candidates.extend(space.sample_batch(n_candidates, rng, unique=True))
    except Exception:
        pass
    if incumbent_config is not None:
        candidates.extend(space.neighbors(incumbent_config))
    if not candidates:
        raise RuntimeError(f"no feasible candidates available in {space.name!r}")

    names = space.names
    seen = {tuple(c[k] for k in names) for c in exclude}
    fresh = [c for c in candidates if tuple(c[k] for k in names) not in seen]
    if fresh:
        candidates = fresh  # only fall back to repeats when space is exhausted
    return candidates


def maximize_acquisition(
    acquisition: AcquisitionFunction,
    model: GaussianProcess,
    space: SearchSpace,
    incumbent: float,
    rng: np.random.Generator,
    *,
    n_candidates: int = 512,
    incumbent_config: Mapping[str, Any] | None = None,
    exclude: Sequence[Mapping[str, Any]] = (),
) -> dict[str, Any]:
    """Pick the feasible configuration with the best acquisition score.

    See :func:`assemble_candidates` for how the pool is built.
    """
    candidates = assemble_candidates(
        space,
        rng,
        n_candidates=n_candidates,
        incumbent_config=incumbent_config,
        exclude=exclude,
    )
    X = space.encode_batch(candidates)
    scores = np.asarray(acquisition(model, X, incumbent), dtype=float)
    scores[~np.isfinite(scores)] = -np.inf
    return candidates[int(np.argmax(scores))]
