"""Gaussian-process regression surrogate (the heart of the BO engine).

Implements exact GP regression with

* Cholesky-based training — the O(N^3) cost the paper leans on when arguing
  that joint high-dimensional searches with many evaluations become
  expensive ("the training complexity of Gaussian Processes ... is O(N^3)"),
* marginal-likelihood (MLE) hyperparameter fitting via multi-start L-BFGS-B
  with analytic gradients,
* output normalization (zero mean / unit variance in y) so acquisition
  functions operate on a standardized scale,
* an optional fixed *prior mean function*, which is how transfer learning
  (:mod:`repro.bo.transfer`) injects a source-task model,
* an **incremental fast path** (:meth:`GaussianProcess.update`): appending
  observations extends the existing Cholesky factor by a rank-1 block in
  O(N^2) instead of refitting in O(N^3), with cached kernel cross-columns
  so repeated candidate scoring against a growing model costs O(N x C)
  per update instead of O(N^2 x C).

The incremental factor is the exact Cholesky of the extended covariance
(the leading principal block of a Cholesky factor is the factor of the
corresponding submatrix), so incremental and full-refit models agree to
floating-point rounding; callers bound the accumulated drift with periodic
full refits (see ``BayesianOptimizer(full_refit_every=...)``) and the
differential harness in ``tests/bo/harness`` measures it.

The implementation is deliberately self-contained (numpy + scipy only): it
is the GPTune stand-in documented in DESIGN.md.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
from scipy.linalg import cho_solve, cholesky, solve_triangular
from scipy.optimize import minimize

from .kernels import Kernel, Matern52

__all__ = ["GaussianProcess", "GPFitError"]

_LOG_2PI = np.log(2.0 * np.pi)


class GPFitError(RuntimeError):
    """Raised when the GP cannot be fit (e.g. degenerate data)."""


class GaussianProcess:
    """Exact GP regression model.

    Parameters
    ----------
    kernel:
        Covariance kernel (defaults to Matérn-5/2 with ARD, the common
        HPC-autotuner choice).
    noise:
        Initial observation-noise variance (log-optimized jointly with the
        kernel when ``optimize_noise=True``).  Tuning objectives are noisy
        (run-to-run variability), so the default is non-zero.
    optimize_noise:
        Whether to include the noise variance in the MLE fit.
    normalize_y:
        Standardize targets before fitting; predictions are transformed
        back.  Strongly recommended for runtime objectives whose magnitude
        varies by orders of magnitude.
    mean_function:
        Optional prior mean ``m(X) -> (n,)`` evaluated on encoded inputs.
        The GP then models the residual ``y - m(X)``.
    n_restarts:
        Multi-start count for the hyperparameter optimization.
    """

    def __init__(
        self,
        kernel: Kernel | None = None,
        *,
        dim: int | None = None,
        noise: float = 1e-4,
        optimize_noise: bool = True,
        normalize_y: bool = True,
        mean_function: Callable[[np.ndarray], np.ndarray] | None = None,
        n_restarts: int = 3,
        random_state: int | np.random.Generator | None = None,
    ):
        if kernel is None:
            if dim is None:
                raise ValueError("provide either a kernel or dim")
            kernel = Matern52(dim)
        self.kernel = kernel
        if noise < 0:
            raise ValueError("noise variance must be >= 0")
        self.noise = float(noise)
        self.optimize_noise = bool(optimize_noise)
        self.normalize_y = bool(normalize_y)
        self.mean_function = mean_function
        self.n_restarts = int(n_restarts)
        self.rng = (
            random_state
            if isinstance(random_state, np.random.Generator)
            else np.random.default_rng(random_state)
        )

        self._X: np.ndarray | None = None
        self._y_raw: np.ndarray | None = None
        self._y: np.ndarray | None = None  # normalized residual targets
        self._y_mean = 0.0
        self._y_std = 1.0
        self._L: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        # Escalated Cholesky jitter persists across fits (and is carried
        # between model instances by the BO loop) so repeated near-singular
        # fits do not pay repeated failed factorization attempts.
        self._jitter = 1e-10
        # Cached noise-free train covariance (+ the theta it was built
        # with) so a same-hyperparameter full refit skips the O(N^2 d)
        # kernel evaluation, and the incremental path extends it in O(N d).
        self._K: np.ndarray | None = None
        self._K_theta: np.ndarray | None = None
        # Cross-column cache for repeated prediction on one candidate
        # matrix across incremental updates (see :meth:`_posterior_terms`).
        self._cross_cache: dict | None = None
        #: ``"full"`` after a fresh factorization, ``"incremental"`` after
        #: a rank-1 extension — the ``gp_fit`` span's ``mode`` attribute.
        self.last_fit_mode: str = "full"
        #: Observations appended via :meth:`update` since the last full
        #: factorization (the incremental chain length).
        self.n_incremental: int = 0

    # ------------------------------------------------------------------
    @property
    def is_fit(self) -> bool:
        return self._alpha is not None

    @property
    def n_train(self) -> int:
        return 0 if self._X is None else self._X.shape[0]

    @property
    def train_X(self) -> np.ndarray | None:
        """Training inputs (encoded); ``None`` before :meth:`fit`."""
        return self._X

    @property
    def train_y(self) -> np.ndarray | None:
        """Raw (unnormalized) training targets; ``None`` before fit."""
        return self._y_raw

    @property
    def cholesky_factor(self) -> np.ndarray | None:
        """Lower-triangular factor of ``K + (noise + jitter) I``."""
        return self._L

    @property
    def jitter(self) -> float:
        """Current (possibly escalated) Cholesky jitter."""
        return self._jitter

    @jitter.setter
    def jitter(self, value: float) -> None:
        value = float(value)
        if value <= 0:
            raise ValueError("jitter must be > 0")
        self._jitter = value

    # ------------------------------------------------------------------
    def _residual_targets(self, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        if self.mean_function is not None:
            return y - np.asarray(self.mean_function(X), dtype=float).reshape(-1)
        return y

    def fit(self, X: np.ndarray, y: np.ndarray, *, optimize: bool = True) -> "GaussianProcess":
        """Fit the GP to data, optionally optimizing hyperparameters.

        ``X`` must be ``(n, d)`` in the unit cube; ``y`` is ``(n,)``.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).reshape(-1)
        if X.shape[0] != y.shape[0]:
            raise ValueError(f"X has {X.shape[0]} rows but y has {y.shape[0]} entries")
        if X.shape[0] == 0:
            raise GPFitError("cannot fit a GP to zero observations")
        if not np.all(np.isfinite(X)) or not np.all(np.isfinite(y)):
            raise GPFitError("non-finite values in training data")

        self._X = X
        self._y_raw = y.copy()
        self._K = None  # new data invalidates the cached train covariance
        self._refresh_targets()

        if optimize and X.shape[0] >= 2:
            self._optimize_hyperparameters()
        self._factorize()
        return self

    def _refresh_targets(self) -> None:
        """Recompute normalization and normalized residual targets."""
        resid = self._residual_targets(self._X, self._y_raw)
        if self.normalize_y:
            self._y_mean = float(np.mean(resid))
            std = float(np.std(resid))
            self._y_std = std if std > 1e-12 else 1.0
        else:
            self._y_mean, self._y_std = 0.0, 1.0
        self._y = (resid - self._y_mean) / self._y_std

    def update(self, X_new: np.ndarray, y_new: np.ndarray) -> "GaussianProcess":
        """Append observations via a block Cholesky extension — O(N^2 q).

        The existing factor ``L`` of ``K + (noise + jitter) I`` is extended
        with all ``q`` new rows in three BLAS calls (one kernel
        cross-block, one triangular solve, one q x q Schur Cholesky)::

            L_ext = [[L,     0  ],        L12 = L^{-1} K(X, X_new)
                     [L12^T, L22]],       L22 = chol(K(X_new, X_new)
                                                     + (noise + jitter) I
                                                     - L12^T L12)

        Target normalization and ``alpha`` are recomputed from the full
        target vector (two O(N^2) triangular solves), so predictions match
        a same-hyperparameter full refit to floating-point rounding.
        Hyperparameters are *not* re-optimized.  If the Schur complement is
        not positive definite (numerical breakdown), the model
        transparently falls back to a full factorization; check
        :attr:`last_fit_mode`.
        """
        if not self.is_fit:
            raise GPFitError("update() called before fit()")
        X_new = np.atleast_2d(np.asarray(X_new, dtype=float))
        y_new = np.asarray(y_new, dtype=float).reshape(-1)
        if X_new.shape[0] != y_new.shape[0]:
            raise ValueError(
                f"X_new has {X_new.shape[0]} rows but y_new has "
                f"{y_new.shape[0]} entries"
            )
        if X_new.shape[0] == 0:
            return self
        if X_new.shape[1] != self._X.shape[1]:
            raise ValueError(
                f"expected {self._X.shape[1]} columns, got {X_new.shape[1]}"
            )
        if not np.all(np.isfinite(X_new)) or not np.all(np.isfinite(y_new)):
            raise GPFitError("non-finite values in update data")

        n, q = self._X.shape[0], X_new.shape[0]
        K12 = self.kernel(self._X, X_new)  # (n, q) cross-block
        K22 = self.kernel(X_new)  # (q, q)
        L12 = solve_triangular(self._L, K12, lower=True)  # (n, q)
        S = K22 - L12.T @ L12
        S[np.diag_indices_from(S)] += self.noise + self._jitter
        try:
            if not np.all(np.isfinite(S)):
                raise np.linalg.LinAlgError("non-finite Schur complement")
            L22 = cholesky(S, lower=True)
        except np.linalg.LinAlgError:
            # Numerical breakdown: absorb the rows as plain data and
            # refactorize from scratch (all-or-nothing — no partially
            # extended factor is ever left behind).
            self._X = np.vstack([self._X, X_new])
            self._y_raw = np.append(self._y_raw, y_new)
            self._K = None
            self._refresh_targets()
            self._factorize()  # resets caches, mode, and chain length
            return self

        # Extend the cached noise-free covariance in O(N q d).
        if self._K is not None and self._K.shape[0] == n:
            K_ext = np.empty((n + q, n + q))
            K_ext[:n, :n] = self._K
            K_ext[:n, n:] = K12
            K_ext[n:, :n] = K12.T
            K_ext[n:, n:] = K22
            self._K = K_ext
        L_ext = np.zeros((n + q, n + q))
        L_ext[:n, :n] = self._L
        L_ext[n:, :n] = L12.T
        L_ext[n:, n:] = L22
        self._L = L_ext
        self._X = np.vstack([self._X, X_new])
        self._y_raw = np.append(self._y_raw, y_new)

        self._refresh_targets()
        self._alpha = cho_solve((self._L, True), self._y)
        self.last_fit_mode = "incremental"
        self.n_incremental += q
        return self

    # ------------------------------------------------------------------
    def _theta_full(self) -> np.ndarray:
        t = self.kernel.theta
        if self.optimize_noise:
            t = np.concatenate((t, [np.log(max(self.noise, 1e-12))]))
        return t

    def _set_theta_full(self, theta: np.ndarray) -> None:
        k = self.kernel.n_hyperparameters
        self.kernel.theta = theta[:k]
        if self.optimize_noise:
            self.noise = float(np.exp(theta[k]))

    def _bounds_full(self) -> list[tuple[float, float]]:
        b = self.kernel.bounds()
        if self.optimize_noise:
            b = b + [(np.log(1e-8), np.log(1.0))]
        return b

    def _neg_log_marginal_likelihood(self, theta: np.ndarray) -> tuple[float, np.ndarray]:
        """NLML and its gradient w.r.t. the full log-hyperparameter vector.

        Gradient uses the standard trace identity
        ``dNLL/dt = -0.5 tr((aa^T - K^{-1}) dK/dt)`` with the kernels'
        analytic ``dK/dtheta`` stacks (:meth:`Kernel.theta_gradients`) —
        fully vectorized, no finite differences.
        """
        self._set_theta_full(theta)
        X, y = self._X, self._y
        n = X.shape[0]
        K = self.kernel(X)
        K[np.diag_indices_from(K)] += self.noise + 1e-10
        try:
            L = cholesky(K, lower=True)
        except np.linalg.LinAlgError:
            return 1e25, np.zeros_like(theta)
        alpha = cho_solve((L, True), y)
        nll = 0.5 * (y @ alpha) + np.sum(np.log(np.diag(L))) + 0.5 * n * _LOG_2PI

        # Gradient: dNLL/dt = -0.5 tr((alpha alpha^T - K^{-1}) dK/dt)
        Kinv = cho_solve((L, True), np.eye(n))
        W = np.outer(alpha, alpha) - Kinv  # (n, n)

        grads = np.empty_like(theta)
        dK = self.kernel.theta_gradients(X)  # (n_hyp, n, n)
        k_hyp = self.kernel.n_hyperparameters
        grads[:k_hyp] = -0.5 * np.tensordot(dK, W, axes=([1, 2], [0, 1]))
        if self.optimize_noise:
            # dK/d log(noise) = noise * I
            grads[k_hyp] = -0.5 * self.noise * np.trace(W)
        return float(nll), grads

    def _optimize_hyperparameters(self) -> None:
        bounds = self._bounds_full()
        starts = [self._theta_full()]
        lo = np.array([b[0] for b in bounds])
        hi = np.array([b[1] for b in bounds])
        for _ in range(max(0, self.n_restarts - 1)):
            starts.append(lo + self.rng.random(len(bounds)) * (hi - lo))

        best_nll, best_theta = np.inf, self._theta_full()
        for t0 in starts:
            res = minimize(
                self._neg_log_marginal_likelihood,
                t0,
                jac=True,
                bounds=bounds,
                method="L-BFGS-B",
                options={"maxiter": 100},
            )
            if np.isfinite(res.fun) and res.fun < best_nll:
                best_nll, best_theta = float(res.fun), res.x
        self._set_theta_full(best_theta)

    def _train_covariance(self) -> np.ndarray:
        """Noise-free ``K(X, X)``, reused when theta is unchanged."""
        theta = self.kernel.theta
        if (
            self._K is not None
            and self._K.shape[0] == self._X.shape[0]
            and self._K_theta is not None
            and np.array_equal(self._K_theta, theta)
        ):
            return self._K
        self._K = self.kernel(self._X)
        self._K_theta = theta
        return self._K

    def _factorize(self) -> None:
        X, y = self._X, self._y
        K = self._train_covariance()
        # Start from the persisted jitter: a previous fit that had to
        # escalate does not re-pay the failed Cholesky attempts.
        jitter = self._jitter
        for _ in range(8):
            try:
                self._L = cholesky(
                    K + (self.noise + jitter) * np.eye(X.shape[0]), lower=True
                )
                break
            except np.linalg.LinAlgError:
                jitter *= 10.0
        else:
            raise GPFitError("covariance matrix not positive definite even with jitter")
        self._jitter = jitter
        self._cross_cache = None
        self.last_fit_mode = "full"
        self.n_incremental = 0
        self._alpha = cho_solve((self._L, True), y)

    # ------------------------------------------------------------------
    def _posterior_terms(
        self, X: np.ndarray, *, need_V: bool
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """Cross-kernel ``Ks`` (m, n) and whitened columns ``V`` (n, m).

        Caches both, keyed on the candidate matrix *object*: scoring the
        same candidate pool again after :meth:`update` extends the cached
        arrays with one O(N x C) row per new observation instead of
        redoing the full O(N^2 x C) triangular solve — the fast path the
        constant-liar batch proposer rides.  The cache is dropped on any
        full factorization (data or hyperparameter change).
        """
        n = self._X.shape[0]
        c = self._cross_cache
        if c is not None and c["X"] is X and 0 < c["n"] <= n:
            Ks, V = c["Ks"], c["V"]
            q = n - c["n"]
            if q:
                K2 = self.kernel(X, self._X[c["n"]:])  # (m, q)
                Ks = np.hstack([Ks, K2])
                if V is not None:
                    # L = [[L11, 0], [L21, L22]] -> only the new rows of
                    # the whitened columns need solving.
                    L21 = self._L[c["n"]:, : c["n"]]
                    L22 = self._L[c["n"]:, c["n"]:]
                    V = np.vstack(
                        [V, solve_triangular(L22, K2.T - L21 @ V, lower=True)]
                    )
        else:
            Ks, V = self.kernel(X, self._X), None
        if need_V and V is None:
            V = solve_triangular(self._L, Ks.T, lower=True)
        self._cross_cache = {"X": X, "n": n, "Ks": Ks, "V": V}
        return Ks, V

    def predict(
        self, X: np.ndarray, *, return_std: bool = True
    ) -> tuple[np.ndarray, np.ndarray] | np.ndarray:
        """Posterior mean (and standard deviation) at encoded points ``X``.

        The returned std includes neither the observation noise nor the
        prior-mean uncertainty — it is the epistemic (model) uncertainty the
        acquisition functions need.
        """
        if not self.is_fit:
            raise GPFitError("predict() called before fit()")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        Ks, V = self._posterior_terms(X, need_V=return_std)
        mu = Ks @ self._alpha  # normalized residual mean
        mu = mu * self._y_std + self._y_mean
        if self.mean_function is not None:
            mu = mu + np.asarray(self.mean_function(X), dtype=float).reshape(-1)
        if not return_std:
            return mu
        var = self.kernel.diag(X) - np.sum(V * V, axis=0)
        np.maximum(var, 1e-12, out=var)
        std = np.sqrt(var) * self._y_std
        return mu, std

    def log_marginal_likelihood(self) -> float:
        """NLML at the current hyperparameters (negated: higher is better)."""
        nll, _ = self._neg_log_marginal_likelihood(self._theta_full())
        self._factorize()
        return -nll

    def sample_posterior(
        self, X: np.ndarray, n_samples: int = 1, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Draw joint posterior samples at ``X`` -> ``(n_samples, m)``.

        Used by Thompson-sampling style acquisition strategies and by the
        tests that check posterior calibration.
        """
        rng = rng or self.rng
        X = np.atleast_2d(np.asarray(X, dtype=float))
        Ks, V = self._posterior_terms(X, need_V=True)
        mu = Ks @ self._alpha * self._y_std + self._y_mean
        if self.mean_function is not None:
            mu = mu + np.asarray(self.mean_function(X), dtype=float).reshape(-1)
        cov = self.kernel(X) - V.T @ V
        cov = (cov + cov.T) / 2.0 + 1e-10 * np.eye(X.shape[0])
        Lc = cholesky(cov, lower=True)
        z = rng.standard_normal((n_samples, X.shape[0]))
        return mu[None, :] + (z @ Lc.T) * self._y_std
