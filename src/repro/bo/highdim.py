"""High-dimensional BO strategies from the paper's related work.

Section II surveys three families of high-dimensional BO and explains why
the methodology takes a different route.  All three are implemented here
so the comparison is runnable:

:class:`RandomEmbeddingBO` (Wang et al., REMBO-style)
    "exploit an embedded strategy where the algorithm optimizes a
    low-dimensional subspace to identify the next candidate and then is
    projected back to the original dimensions ... these projections can
    create distortions when evaluating the objective."  A random Gaussian
    matrix maps a ``d``-dim latent cube into the ``D``-dim unit cube
    (clipped — the distortion source), and standard BO runs in the latent
    space.

:class:`DropoutBO` (Li et al.)
    "perform the search over d out of D dimensions in every iteration,
    filling the remaining dimensions with random values, which leads, in
    general, to slower convergence".  Each iteration draws a fresh random
    coordinate subset; the surrogate models only those coordinates, the
    rest copy the incumbent (the paper's "copy" variant, less noisy than
    fully random fill).

:class:`AdditiveBO` (Kandasamy et al.)
    "decomposing a complex search as the sum of independent
    low-dimensional functions.  However, the independence analysis leads
    to a substantial number of observations".  Given a (possibly wrong)
    disjoint grouping, one GP is fit per group on the shared observation
    history and each group's acquisition is maximized independently; the
    suggestions are concatenated.  When the assumed decomposition misses
    a cross-group term (the synthetic suite's G3-G4 coupling), the model
    is biased — exactly the failure mode the methodology's
    interdependence analysis exists to avoid.

All three return :class:`repro.bo.BOResult` so the benchmark harness can
compare them directly against the methodology's decomposed searches.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from ..space import SearchSpace
from .acquisition import ExpectedImprovement
from .gp import GaussianProcess, GPFitError
from .history import Evaluation, EvaluationDatabase, EvaluationStatus
from .kernels import kernel_by_name
from .optimizer import BOResult, Objective

__all__ = ["RandomEmbeddingBO", "DropoutBO", "AdditiveBO"]


class _HighDimBase:
    """Shared plumbing: evaluation wrapper and result assembly."""

    def __init__(
        self,
        space: SearchSpace,
        objective: Objective,
        *,
        n_initial: int = 5,
        max_evaluations: int | None = None,
        kernel: str = "matern52",
        random_state: int | np.random.Generator | None = None,
    ):
        self.space = space
        self.objective = objective
        self.n_initial = int(n_initial)
        self.max_evaluations = (
            int(max_evaluations) if max_evaluations is not None
            else 10 * space.dimension
        )
        if self.max_evaluations < self.n_initial:
            raise ValueError("max_evaluations must be >= n_initial")
        self.kernel_name = kernel
        self.rng = (
            random_state
            if isinstance(random_state, np.random.Generator)
            else np.random.default_rng(random_state)
        )
        self.database = EvaluationDatabase()
        self._fit_count = 0
        self._theta_cache: dict[int, np.ndarray] = {}
        self._noise_cache: dict[int, float] = {}

    def _fit_gp(self, X: np.ndarray, y: np.ndarray, key: int = 0) -> GaussianProcess:
        """Fit a GP with the usual BO economy: full MLE every 5th fit per
        model slot, cached hyperparameters in between."""
        dim = X.shape[1]
        kernel = kernel_by_name(self.kernel_name, dim)
        if key in self._theta_cache and self._theta_cache[key].shape == kernel.theta.shape:
            kernel.theta = self._theta_cache[key]
        gp = GaussianProcess(kernel=kernel, random_state=self.rng, n_restarts=1)
        if key in self._noise_cache:
            gp.noise = self._noise_cache[key]
        optimize = (self._fit_count % 5) == 0
        self._fit_count += 1
        gp.fit(X, y, optimize=optimize)
        self._theta_cache[key] = gp.kernel.theta.copy()
        self._noise_cache[key] = gp.noise
        return gp

    def _evaluate(self, config: Mapping[str, Any]) -> Evaluation:
        try:
            value = float(self.objective(dict(config)))
        except Exception as exc:
            return Evaluation(
                config=dict(config), objective=float("nan"), cost=0.0,
                status=EvaluationStatus.FAILED, meta={"error": repr(exc)},
            )
        if not np.isfinite(value):
            return Evaluation(
                config=dict(config), objective=float("nan"), cost=0.0,
                status=EvaluationStatus.FAILED,
            )
        return Evaluation(config=dict(config), objective=value, cost=max(value, 0.0))

    def _result(self, n_new: int) -> BOResult:
        best = self.database.best()
        return BOResult(
            best_config=dict(best.config),
            best_objective=best.objective,
            database=self.database,
            n_evaluations=n_new,
            evaluation_cost=self.database.total_cost(),
            modeling_overhead=0.0,
        )


class RandomEmbeddingBO(_HighDimBase):
    """REMBO-style BO through a random linear embedding.

    Parameters
    ----------
    latent_dim:
        Dimensionality ``d`` of the latent search cube (paper rule of
        thumb: the objective's effective dimensionality; we default to 6).
    latent_bound:
        Half-width of the latent box (REMBO uses sqrt(d)-ish bounds).
    """

    def __init__(self, space, objective, *, latent_dim: int = 6,
                 latent_bound: float = 1.0, **kwargs):
        super().__init__(space, objective, **kwargs)
        if latent_dim < 1:
            raise ValueError("latent_dim must be >= 1")
        self.latent_dim = int(latent_dim)
        self.latent_bound = float(latent_bound)
        D = space.dimension
        self.A = self.rng.normal(size=(D, self.latent_dim)) / np.sqrt(self.latent_dim)

    # -- embedding ------------------------------------------------------
    def _project(self, z: np.ndarray) -> dict[str, Any]:
        """Latent point -> configuration: x = clip(0.5 + A z, [0, 1])."""
        u = np.clip(0.5 + self.A @ z, 0.0, 1.0)
        return self.space.decode(u)

    def _sample_latent(self, n: int) -> np.ndarray:
        return self.rng.uniform(-self.latent_bound, self.latent_bound,
                                size=(n, self.latent_dim))

    def run(self) -> BOResult:
        """Run the embedded search to the evaluation budget."""
        Z = self._sample_latent(self.n_initial)
        zs: list[np.ndarray] = []
        for z in Z:
            cfg = self._project(z)
            if not self.space.is_valid(cfg):
                continue
            self.database.append(self._evaluate(cfg))
            zs.append(z)
        n_new = len(zs)
        acq = ExpectedImprovement()
        while n_new < self.max_evaluations:
            ok = [(z, r) for z, r in zip(zs, self.database) if r.ok]
            if len(ok) >= 2:
                X = np.stack([z for z, _ in ok])
                y = np.array([r.objective for _, r in ok])
                try:
                    # Normalize latent coords into [0,1] for the kernel.
                    gp = self._fit_gp(
                        (X + self.latent_bound) / (2 * self.latent_bound), y
                    )
                    cands = self._sample_latent(256)
                    scores = acq(
                        gp,
                        (cands + self.latent_bound) / (2 * self.latent_bound),
                        self.database.best().objective,
                    )
                    z = cands[int(np.argmax(scores))]
                except GPFitError:
                    z = self._sample_latent(1)[0]
            else:
                z = self._sample_latent(1)[0]
            cfg = self._project(z)
            if self.space.is_valid(cfg):
                self.database.append(self._evaluate(cfg))
                zs.append(z)
            n_new += 1
        return self._result(n_new)


class DropoutBO(_HighDimBase):
    """d-out-of-D dropout BO: model a random coordinate subset per
    iteration, copy the incumbent elsewhere."""

    def __init__(self, space, objective, *, active_dims: int = 6, **kwargs):
        super().__init__(space, objective, **kwargs)
        if not (1 <= active_dims <= space.dimension):
            raise ValueError("active_dims must be in [1, D]")
        self.active_dims = int(active_dims)

    def run(self) -> BOResult:
        """Run the dropout search to the evaluation budget."""
        for cfg in self.space.latin_hypercube(self.n_initial, self.rng):
            self.database.append(self._evaluate(cfg))
        n_new = self.n_initial
        acq = ExpectedImprovement()
        names = self.space.names
        while n_new < self.max_evaluations:
            ok = self.database.ok_records()
            incumbent = dict(self.database.best().config)
            subset = sorted(
                self.rng.choice(len(names), size=self.active_dims, replace=False)
            )
            sub_names = [names[i] for i in subset]
            if len(ok) >= 2:
                X = np.stack(
                    [self.space.encode(r.config)[subset] for r in ok]
                )
                y = np.array([r.objective for r in ok])
                try:
                    gp = self._fit_gp(X, y)
                    cands = [self.space.sample(self.rng) for _ in range(128)]
                    Xc = np.stack([self.space.encode(c)[subset] for c in cands])
                    scores = acq(gp, Xc, self.database.best().objective)
                    pick = cands[int(np.argmax(scores))]
                except GPFitError:
                    pick = self.space.sample(self.rng)
            else:
                pick = self.space.sample(self.rng)
            cfg = dict(incumbent)
            for n in sub_names:
                cfg[n] = pick[n]
            if not self.space.is_valid(cfg):
                cfg = self.space.sample(self.rng)
            self.database.append(self._evaluate(cfg))
            n_new += 1
        return self._result(n_new)


class AdditiveBO(_HighDimBase):
    """Additive-decomposition BO over assumed-disjoint groups.

    Parameters
    ----------
    groups:
        Disjoint parameter-name groups assumed additive.  The whole point
        of the comparison: when the assumption is wrong (a cross-group
        interaction exists), the per-group GPs are misspecified.
    """

    def __init__(self, space, objective, groups: Sequence[Sequence[str]], **kwargs):
        super().__init__(space, objective, **kwargs)
        flat = [p for g in groups for p in g]
        if sorted(flat) != sorted(space.names):
            raise ValueError("groups must partition the space's parameters")
        if len(set(flat)) != len(flat):
            raise ValueError("groups must be disjoint")
        self.groups = [list(g) for g in groups]

    def run(self) -> BOResult:
        """Run the additive-decomposition search to the budget."""
        for cfg in self.space.latin_hypercube(self.n_initial, self.rng):
            self.database.append(self._evaluate(cfg))
        n_new = self.n_initial
        acq = ExpectedImprovement()
        name_idx = {n: i for i, n in enumerate(self.space.names)}
        while n_new < self.max_evaluations:
            ok = self.database.ok_records()
            y = np.array([r.objective for r in ok])
            suggestion: dict[str, Any] = {}
            for group in self.groups:
                idx = [name_idx[n] for n in group]
                X = np.stack([self.space.encode(r.config)[idx] for r in ok])
                cands = [self.space.sample(self.rng) for _ in range(128)]
                Xc = np.stack([self.space.encode(c)[idx] for c in cands])
                try:
                    gp = self._fit_gp(X, y, key=idx[0])
                    scores = acq(gp, Xc, float(np.min(y)))
                    pick = cands[int(np.argmax(scores))]
                except GPFitError:
                    pick = cands[0]
                for n in group:
                    suggestion[n] = pick[n]
            if not self.space.is_valid(suggestion):
                suggestion = self.space.sample(self.rng)
            self.database.append(self._evaluate(suggestion))
            n_new += 1
        return self._result(n_new)
