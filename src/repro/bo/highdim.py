"""High-dimensional BO strategies from the paper's related work.

Section II surveys three families of high-dimensional BO and explains why
the methodology takes a different route.  All three are implemented here
so the comparison is runnable:

:class:`RandomEmbeddingBO` (Wang et al., REMBO-style)
    "exploit an embedded strategy where the algorithm optimizes a
    low-dimensional subspace to identify the next candidate and then is
    projected back to the original dimensions ... these projections can
    create distortions when evaluating the objective."  A random Gaussian
    matrix maps a ``d``-dim latent cube into the ``D``-dim unit cube
    (clipped — the distortion source), and standard BO runs in the latent
    space.

:class:`DropoutBO` (Li et al.)
    "perform the search over d out of D dimensions in every iteration,
    filling the remaining dimensions with random values, which leads, in
    general, to slower convergence".  Each iteration draws a fresh random
    coordinate subset; the surrogate models only those coordinates, the
    rest copy the incumbent (the paper's "copy" variant, less noisy than
    fully random fill).

:class:`AdditiveBO` (Kandasamy et al.)
    "decomposing a complex search as the sum of independent
    low-dimensional functions.  However, the independence analysis leads
    to a substantial number of observations".  Given a (possibly wrong)
    disjoint grouping, one GP is fit per group on the shared observation
    history and each group's acquisition is maximized independently; the
    suggestions are concatenated.  When the assumed decomposition misses
    a cross-group term (the synthetic suite's G3-G4 coupling), the model
    is biased — exactly the failure mode the methodology's
    interdependence analysis exists to avoid.

All three return :class:`repro.bo.BOResult` so the benchmark harness can
compare them directly against the methodology's decomposed searches.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from scipy.linalg import cholesky, solve_triangular

from ..space import SearchSpace
from .acquisition import ExpectedImprovement
from .gp import GaussianProcess, GPFitError
from .history import Evaluation, EvaluationDatabase, EvaluationStatus
from .kernels import Kernel, kernel_by_name
from .optimizer import BOResult, Objective

__all__ = [
    "RandomEmbeddingBO",
    "DropoutBO",
    "AdditiveBO",
    "InducingPointGP",
    "farthest_point_subset",
]


def farthest_point_subset(X: np.ndarray, y: np.ndarray, m: int) -> np.ndarray:
    """Deterministic farthest-point selection of ``m`` row indices.

    Seeds at the incumbent (``argmin y``) so the approximate surrogate
    always keeps the best-observed region, then greedily adds the point
    with the largest squared Euclidean distance to the chosen set —
    O(N m), no randomness, so a resumed search re-derives the identical
    subset from the identical history.  Returned indices are sorted
    ascending (training order stays history order).
    """
    X = np.atleast_2d(np.asarray(X, dtype=float))
    n = X.shape[0]
    m = int(m)
    if m <= 0:
        raise ValueError("subset size must be >= 1")
    if m >= n:
        return np.arange(n)
    chosen = np.empty(m, dtype=int)
    chosen[0] = int(np.argmin(np.asarray(y, dtype=float)))
    d2 = np.sum((X - X[chosen[0]]) ** 2, axis=1)
    for i in range(1, m):
        j = int(np.argmax(d2))
        chosen[i] = j
        np.minimum(d2, np.sum((X - X[j]) ** 2, axis=1), out=d2)
    return np.sort(chosen)


class InducingPointGP:
    """Sparse (DTC) GP surrogate for bounded-time fits on long histories.

    Exact GP training is O(N^3); at service-scale histories (N ~ 5000)
    that dominates the tuning loop.  This surrogate caps the cost at
    O(N k^2) for ``k`` inducing points: hyperparameters are MLE-fit on an
    exact GP over the inducing subset alone (O(k^3)), and the *full*
    history then enters through the deterministic-training-conditional
    (DTC) posterior

    .. math::

        \\Sigma = K_{uu} + \\sigma^{-2} K_{uf} K_{fu}, \\qquad
        \\mu_* = \\sigma^{-2} K_{*u} \\Sigma^{-1} K_{uf} y, \\qquad
        \\mathrm{cov}_* = K_{**} - Q_{**} + K_{*u} \\Sigma^{-1} K_{u*}

    with :math:`Q_{**} = K_{*u} K_{uu}^{-1} K_{u*}` (the Nyström term),
    so the variance never collapses below the exact-GP variance far from
    the inducing set.  The interface mirrors
    :class:`~repro.bo.gp.GaussianProcess` where the acquisition layer
    needs it (``predict``, ``sample_posterior``, ``is_fit`` ...), so
    acquisitions — including Thompson sampling's joint draw — work
    unchanged.  This is a *tolerance-bounded* approximation: proposals
    are not bit-identical to the exact surrogate, which is why
    ``BayesianOptimizer(approx=...)`` is an explicit opt-in.
    """

    def __init__(
        self,
        kernel: Kernel,
        *,
        noise: float = 1e-4,
        normalize_y: bool = True,
        n_restarts: int = 3,
        random_state: int | np.random.Generator | None = None,
    ):
        self.kernel = kernel
        self.noise = float(noise)
        self.normalize_y = bool(normalize_y)
        self.n_restarts = int(n_restarts)
        self.rng = (
            random_state
            if isinstance(random_state, np.random.Generator)
            else np.random.default_rng(random_state)
        )
        self._jitter = 1e-10
        self._Z: np.ndarray | None = None
        self._Lu: np.ndarray | None = None
        self._LB: np.ndarray | None = None
        self._c: np.ndarray | None = None
        self._y_mean = 0.0
        self._y_std = 1.0
        self._n_train = 0
        #: Mirrors :attr:`GaussianProcess.last_fit_mode` for span attrs.
        self.last_fit_mode = "inducing"
        self.n_incremental = 0

    # ------------------------------------------------------------------
    @property
    def is_fit(self) -> bool:
        return self._c is not None

    @property
    def n_train(self) -> int:
        return self._n_train

    @property
    def n_inducing(self) -> int:
        return 0 if self._Z is None else self._Z.shape[0]

    @property
    def jitter(self) -> float:
        return self._jitter

    @jitter.setter
    def jitter(self, value: float) -> None:
        value = float(value)
        if value <= 0:
            raise ValueError("jitter must be > 0")
        self._jitter = value

    # ------------------------------------------------------------------
    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        inducing_idx: np.ndarray | None = None,
        *,
        optimize: bool = True,
        n_inducing: int = 256,
    ) -> "InducingPointGP":
        """Fit on the full history with an inducing subset.

        ``inducing_idx`` defaults to :func:`farthest_point_subset` of size
        ``n_inducing``.  Hyperparameters (and escalated jitter) come from
        an exact GP fit on the subset; ``optimize=False`` reuses the
        current kernel hyperparameters, matching the BO fit schedule.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).reshape(-1)
        if X.shape[0] != y.shape[0]:
            raise ValueError(f"X has {X.shape[0]} rows but y has {y.shape[0]} entries")
        if X.shape[0] == 0:
            raise GPFitError("cannot fit to zero observations")
        if inducing_idx is None:
            inducing_idx = farthest_point_subset(X, y, min(int(n_inducing), X.shape[0]))
        inducing_idx = np.asarray(inducing_idx, dtype=int)

        sub = GaussianProcess(
            kernel=self.kernel,
            noise=self.noise,
            normalize_y=self.normalize_y,
            n_restarts=self.n_restarts,
            random_state=self.rng,
        )
        sub.jitter = self._jitter
        sub.fit(X[inducing_idx], y[inducing_idx], optimize=optimize)
        self.kernel = sub.kernel
        self.noise = sub.noise
        self._jitter = sub.jitter

        if self.normalize_y:
            self._y_mean = float(np.mean(y))
            std = float(np.std(y))
            self._y_std = std if std > 1e-12 else 1.0
        else:
            self._y_mean, self._y_std = 0.0, 1.0
        y_n = (y - self._y_mean) / self._y_std

        Z = X[inducing_idx]
        k = Z.shape[0]
        sigma2 = self.noise + self._jitter
        Kuu = self.kernel(Z)
        Kuu[np.diag_indices_from(Kuu)] += self._jitter
        try:
            Lu = cholesky(Kuu, lower=True)
            A = solve_triangular(Lu, self.kernel(Z, X), lower=True)  # (k, n)
            B = np.eye(k) + (A @ A.T) / sigma2
            LB = cholesky(B, lower=True)
        except np.linalg.LinAlgError as exc:
            raise GPFitError(f"inducing-point factorization failed: {exc!r}") from exc
        self._Z, self._Lu, self._LB = Z, Lu, LB
        self._c = solve_triangular(LB, A @ y_n, lower=True) / sigma2
        self._n_train = X.shape[0]
        return self

    # ------------------------------------------------------------------
    def _posterior_factors(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Whitened cross terms ``As = Lu^{-1} K_uz*`` and ``LB^{-1} As``."""
        As = solve_triangular(self._Lu, self.kernel(self._Z, X), lower=True)
        return As, solve_triangular(self._LB, As, lower=True)

    def predict(
        self, X: np.ndarray, *, return_std: bool = True
    ) -> tuple[np.ndarray, np.ndarray] | np.ndarray:
        """DTC posterior mean (and epistemic std) at encoded points."""
        if not self.is_fit:
            raise GPFitError("predict() called before fit()")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        As, W = self._posterior_factors(X)
        mu = W.T @ self._c * self._y_std + self._y_mean
        if not return_std:
            return mu
        var = self.kernel.diag(X) - np.sum(As * As, axis=0) + np.sum(W * W, axis=0)
        np.maximum(var, 1e-12, out=var)
        return mu, np.sqrt(var) * self._y_std

    def sample_posterior(
        self, X: np.ndarray, n_samples: int = 1, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Joint DTC posterior draws at ``X`` -> ``(n_samples, m)``."""
        rng = rng or self.rng
        X = np.atleast_2d(np.asarray(X, dtype=float))
        As, W = self._posterior_factors(X)
        mu = W.T @ self._c * self._y_std + self._y_mean
        cov = self.kernel(X) - As.T @ As + W.T @ W
        cov = (cov + cov.T) / 2.0 + 1e-10 * np.eye(X.shape[0])
        Lc = cholesky(cov, lower=True)
        z = rng.standard_normal((n_samples, X.shape[0]))
        return mu[None, :] + (z @ Lc.T) * self._y_std


class _HighDimBase:
    """Shared plumbing: evaluation wrapper and result assembly."""

    def __init__(
        self,
        space: SearchSpace,
        objective: Objective,
        *,
        n_initial: int = 5,
        max_evaluations: int | None = None,
        kernel: str = "matern52",
        random_state: int | np.random.Generator | None = None,
    ):
        self.space = space
        self.objective = objective
        self.n_initial = int(n_initial)
        self.max_evaluations = (
            int(max_evaluations) if max_evaluations is not None
            else 10 * space.dimension
        )
        if self.max_evaluations < self.n_initial:
            raise ValueError("max_evaluations must be >= n_initial")
        self.kernel_name = kernel
        self.rng = (
            random_state
            if isinstance(random_state, np.random.Generator)
            else np.random.default_rng(random_state)
        )
        self.database = EvaluationDatabase()
        self._fit_count = 0
        self._theta_cache: dict[int, np.ndarray] = {}
        self._noise_cache: dict[int, float] = {}

    def _fit_gp(self, X: np.ndarray, y: np.ndarray, key: int = 0) -> GaussianProcess:
        """Fit a GP with the usual BO economy: full MLE every 5th fit per
        model slot, cached hyperparameters in between."""
        dim = X.shape[1]
        kernel = kernel_by_name(self.kernel_name, dim)
        if key in self._theta_cache and self._theta_cache[key].shape == kernel.theta.shape:
            kernel.theta = self._theta_cache[key]
        gp = GaussianProcess(kernel=kernel, random_state=self.rng, n_restarts=1)
        if key in self._noise_cache:
            gp.noise = self._noise_cache[key]
        optimize = (self._fit_count % 5) == 0
        self._fit_count += 1
        gp.fit(X, y, optimize=optimize)
        self._theta_cache[key] = gp.kernel.theta.copy()
        self._noise_cache[key] = gp.noise
        return gp

    def _evaluate(self, config: Mapping[str, Any]) -> Evaluation:
        try:
            value = float(self.objective(dict(config)))
        except Exception as exc:
            return Evaluation(
                config=dict(config), objective=float("nan"), cost=0.0,
                status=EvaluationStatus.FAILED, meta={"error": repr(exc)},
            )
        if not np.isfinite(value):
            return Evaluation(
                config=dict(config), objective=float("nan"), cost=0.0,
                status=EvaluationStatus.FAILED,
            )
        return Evaluation(config=dict(config), objective=value, cost=max(value, 0.0))

    def _result(self, n_new: int) -> BOResult:
        best = self.database.best()
        return BOResult(
            best_config=dict(best.config),
            best_objective=best.objective,
            database=self.database,
            n_evaluations=n_new,
            evaluation_cost=self.database.total_cost(),
            modeling_overhead=0.0,
        )


class RandomEmbeddingBO(_HighDimBase):
    """REMBO-style BO through a random linear embedding.

    Parameters
    ----------
    latent_dim:
        Dimensionality ``d`` of the latent search cube (paper rule of
        thumb: the objective's effective dimensionality; we default to 6).
    latent_bound:
        Half-width of the latent box (REMBO uses sqrt(d)-ish bounds).
    """

    def __init__(self, space, objective, *, latent_dim: int = 6,
                 latent_bound: float = 1.0, **kwargs):
        super().__init__(space, objective, **kwargs)
        if latent_dim < 1:
            raise ValueError("latent_dim must be >= 1")
        self.latent_dim = int(latent_dim)
        self.latent_bound = float(latent_bound)
        D = space.dimension
        self.A = self.rng.normal(size=(D, self.latent_dim)) / np.sqrt(self.latent_dim)

    # -- embedding ------------------------------------------------------
    def _project(self, z: np.ndarray) -> dict[str, Any]:
        """Latent point -> configuration: x = clip(0.5 + A z, [0, 1])."""
        u = np.clip(0.5 + self.A @ z, 0.0, 1.0)
        return self.space.decode(u)

    def _sample_latent(self, n: int) -> np.ndarray:
        return self.rng.uniform(-self.latent_bound, self.latent_bound,
                                size=(n, self.latent_dim))

    def run(self) -> BOResult:
        """Run the embedded search to the evaluation budget."""
        Z = self._sample_latent(self.n_initial)
        zs: list[np.ndarray] = []
        for z in Z:
            cfg = self._project(z)
            if not self.space.is_valid(cfg):
                continue
            self.database.append(self._evaluate(cfg))
            zs.append(z)
        n_new = len(zs)
        acq = ExpectedImprovement()
        while n_new < self.max_evaluations:
            ok = [(z, r) for z, r in zip(zs, self.database) if r.ok]
            if len(ok) >= 2:
                X = np.stack([z for z, _ in ok])
                y = np.array([r.objective for _, r in ok])
                try:
                    # Normalize latent coords into [0,1] for the kernel.
                    gp = self._fit_gp(
                        (X + self.latent_bound) / (2 * self.latent_bound), y
                    )
                    cands = self._sample_latent(256)
                    scores = acq(
                        gp,
                        (cands + self.latent_bound) / (2 * self.latent_bound),
                        self.database.best().objective,
                    )
                    z = cands[int(np.argmax(scores))]
                except GPFitError:
                    z = self._sample_latent(1)[0]
            else:
                z = self._sample_latent(1)[0]
            cfg = self._project(z)
            if self.space.is_valid(cfg):
                self.database.append(self._evaluate(cfg))
                zs.append(z)
            n_new += 1
        return self._result(n_new)


class DropoutBO(_HighDimBase):
    """d-out-of-D dropout BO: model a random coordinate subset per
    iteration, copy the incumbent elsewhere."""

    def __init__(self, space, objective, *, active_dims: int = 6, **kwargs):
        super().__init__(space, objective, **kwargs)
        if not (1 <= active_dims <= space.dimension):
            raise ValueError("active_dims must be in [1, D]")
        self.active_dims = int(active_dims)

    def run(self) -> BOResult:
        """Run the dropout search to the evaluation budget."""
        for cfg in self.space.latin_hypercube(self.n_initial, self.rng):
            self.database.append(self._evaluate(cfg))
        n_new = self.n_initial
        acq = ExpectedImprovement()
        names = self.space.names
        while n_new < self.max_evaluations:
            ok = self.database.ok_records()
            incumbent = dict(self.database.best().config)
            subset = sorted(
                self.rng.choice(len(names), size=self.active_dims, replace=False)
            )
            sub_names = [names[i] for i in subset]
            if len(ok) >= 2:
                X = np.stack(
                    [self.space.encode(r.config)[subset] for r in ok]
                )
                y = np.array([r.objective for r in ok])
                try:
                    gp = self._fit_gp(X, y)
                    cands = [self.space.sample(self.rng) for _ in range(128)]
                    Xc = np.stack([self.space.encode(c)[subset] for c in cands])
                    scores = acq(gp, Xc, self.database.best().objective)
                    pick = cands[int(np.argmax(scores))]
                except GPFitError:
                    pick = self.space.sample(self.rng)
            else:
                pick = self.space.sample(self.rng)
            cfg = dict(incumbent)
            for n in sub_names:
                cfg[n] = pick[n]
            if not self.space.is_valid(cfg):
                cfg = self.space.sample(self.rng)
            self.database.append(self._evaluate(cfg))
            n_new += 1
        return self._result(n_new)


class AdditiveBO(_HighDimBase):
    """Additive-decomposition BO over assumed-disjoint groups.

    Parameters
    ----------
    groups:
        Disjoint parameter-name groups assumed additive.  The whole point
        of the comparison: when the assumption is wrong (a cross-group
        interaction exists), the per-group GPs are misspecified.
    """

    def __init__(self, space, objective, groups: Sequence[Sequence[str]], **kwargs):
        super().__init__(space, objective, **kwargs)
        flat = [p for g in groups for p in g]
        if sorted(flat) != sorted(space.names):
            raise ValueError("groups must partition the space's parameters")
        if len(set(flat)) != len(flat):
            raise ValueError("groups must be disjoint")
        self.groups = [list(g) for g in groups]

    def run(self) -> BOResult:
        """Run the additive-decomposition search to the budget."""
        for cfg in self.space.latin_hypercube(self.n_initial, self.rng):
            self.database.append(self._evaluate(cfg))
        n_new = self.n_initial
        acq = ExpectedImprovement()
        name_idx = {n: i for i, n in enumerate(self.space.names)}
        while n_new < self.max_evaluations:
            ok = self.database.ok_records()
            y = np.array([r.objective for r in ok])
            suggestion: dict[str, Any] = {}
            for group in self.groups:
                idx = [name_idx[n] for n in group]
                X = np.stack([self.space.encode(r.config)[idx] for r in ok])
                cands = [self.space.sample(self.rng) for _ in range(128)]
                Xc = np.stack([self.space.encode(c)[idx] for c in cands])
                try:
                    gp = self._fit_gp(X, y, key=idx[0])
                    scores = acq(gp, Xc, float(np.min(y)))
                    pick = cands[int(np.argmax(scores))]
                except GPFitError:
                    pick = cands[0]
                for n in group:
                    suggestion[n] = pick[n]
            if not self.space.is_valid(suggestion):
                suggestion = self.space.sample(self.rng)
            self.database.append(self._evaluate(suggestion))
            n_new += 1
        return self._result(n_new)
