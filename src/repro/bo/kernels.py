"""Covariance kernels for Gaussian-process surrogates.

All kernels operate on points encoded in the unit cube (see
:meth:`repro.space.SearchSpace.encode`) and use *automatic relevance
determination* (ARD): one lengthscale per input dimension.  Hyperparameters
are stored and optimized in log space, the standard parameterization that
keeps gradient-based marginal-likelihood optimization well conditioned.

The distance computations are fully vectorized (broadcasting over an
``(n, 1, d) - (1, m, d)`` difference tensor) per the project's HPC-Python
guidelines — no Python-level loops over data points.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["Kernel", "RBF", "Matern32", "Matern52", "kernel_by_name"]


def _scaled_sqdist(X: np.ndarray, Z: np.ndarray, lengthscales: np.ndarray) -> np.ndarray:
    """Pairwise squared Euclidean distance after per-axis scaling.

    Returns an ``(n, m)`` array of ``sum_k ((x_ik - z_jk) / l_k)^2``.
    Uses the ``|a|^2 + |b|^2 - 2ab`` expansion, which is O(nmd) with one
    GEMM instead of materializing the (n, m, d) difference tensor.
    """
    A = X / lengthscales
    B = Z / lengthscales
    a2 = np.sum(A * A, axis=1)[:, None]
    b2 = np.sum(B * B, axis=1)[None, :]
    d2 = a2 + b2 - 2.0 * (A @ B.T)
    np.maximum(d2, 0.0, out=d2)  # clip tiny negatives from cancellation
    return d2


class Kernel(ABC):
    """ARD stationary kernel with log-parameterized hyperparameters.

    Hyperparameter vector layout: ``[log_variance, log_l_1, ..., log_l_d]``.
    """

    def __init__(self, dim: int, variance: float = 1.0, lengthscales: np.ndarray | float = 1.0):
        if dim < 1:
            raise ValueError("kernel dimension must be >= 1")
        self.dim = dim
        self.variance = float(variance)
        ls = np.broadcast_to(np.asarray(lengthscales, dtype=float), (dim,)).copy()
        if np.any(ls <= 0) or self.variance <= 0:
            raise ValueError("variance and lengthscales must be positive")
        self.lengthscales = ls

    # -- hyperparameter vector interface (used by the MLE optimizer) -----
    @property
    def theta(self) -> np.ndarray:
        """Log-space hyperparameters ``[log var, log l_1..l_d]``."""
        return np.concatenate(([np.log(self.variance)], np.log(self.lengthscales)))

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        value = np.asarray(value, dtype=float)
        if value.shape != (self.dim + 1,):
            raise ValueError(f"theta must have shape ({self.dim + 1},)")
        self.variance = float(np.exp(value[0]))
        self.lengthscales = np.exp(value[1:])

    @property
    def n_hyperparameters(self) -> int:
        return self.dim + 1

    def bounds(self) -> list[tuple[float, float]]:
        """Log-space optimization bounds: variance in [1e-4, 1e4],
        lengthscales in [1e-2, 1e2] of the unit cube."""
        return [(np.log(1e-4), np.log(1e4))] + [(np.log(1e-2), np.log(1e2))] * self.dim

    # -- covariance evaluation -------------------------------------------
    @abstractmethod
    def __call__(self, X: np.ndarray, Z: np.ndarray | None = None) -> np.ndarray:
        """Covariance matrix between rows of ``X`` and ``Z`` (or ``X``)."""

    def diag(self, X: np.ndarray) -> np.ndarray:
        """Diagonal of ``self(X, X)`` without forming the full matrix; for
        stationary kernels this is the constant signal variance."""
        return np.full(X.shape[0], self.variance)

    def theta_gradients(self, X: np.ndarray) -> np.ndarray:
        """Analytic ``dK/dtheta`` stack, shape ``(n_hyp, n, n)``.

        Row 0 is the variance gradient (``dK/d log v = K``); rows 1..d are
        the per-axis log-lengthscale gradients.  Used by the GP's
        marginal-likelihood optimizer — analytic gradients keep the MLE
        fit O(d n^2) instead of the O(d) extra kernel evaluations of
        finite differencing.
        """
        X, _ = self._prep(X, None)
        n, d = X.shape
        K = self(X)
        out = np.empty((self.n_hyperparameters, n, n))
        out[0] = K
        # Per-axis scaled squared differences s_i^2 = ((x_i - z_i)/l_i)^2.
        radial = self._radial_gradient_factor(X)  # (n, n)
        for i in range(d):
            s2 = ((X[:, i][:, None] - X[:, i][None, :]) / self.lengthscales[i]) ** 2
            out[1 + i] = radial * s2
        return out

    def _radial_gradient_factor(self, X: np.ndarray) -> np.ndarray:
        """Matrix ``G`` with ``dK/d log l_i = G * s_i^2``; kernel-specific."""
        raise NotImplementedError

    def _prep(self, X: np.ndarray, Z: np.ndarray | None) -> tuple[np.ndarray, np.ndarray]:
        X = np.atleast_2d(np.asarray(X, dtype=float))
        Z = X if Z is None else np.atleast_2d(np.asarray(Z, dtype=float))
        if X.shape[1] != self.dim or Z.shape[1] != self.dim:
            raise ValueError(
                f"kernel is {self.dim}-dimensional, got inputs with "
                f"{X.shape[1]} and {Z.shape[1]} columns"
            )
        return X, Z

    def clone(self) -> "Kernel":
        return type(self)(self.dim, self.variance, self.lengthscales.copy())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(dim={self.dim}, variance={self.variance:.3g}, "
            f"lengthscales~{np.exp(np.mean(np.log(self.lengthscales))):.3g})"
        )


class RBF(Kernel):
    """Squared-exponential kernel ``v * exp(-r^2 / 2)``.

    Infinitely smooth; the default surrogate kernel for continuous tuning
    objectives.
    """

    def __call__(self, X: np.ndarray, Z: np.ndarray | None = None) -> np.ndarray:
        X, Z = self._prep(X, Z)
        d2 = _scaled_sqdist(X, Z, self.lengthscales)
        return self.variance * np.exp(-0.5 * d2)

    def _radial_gradient_factor(self, X: np.ndarray) -> np.ndarray:
        # K = v exp(-r^2/2); d/d log l_i = K * s_i^2.
        return self(X)


class Matern32(Kernel):
    """Matérn kernel with nu=3/2: ``v * (1 + s r) exp(-s r)``, s=sqrt(3).

    Once-differentiable sample paths; a good match for runtime surfaces with
    kinks (occupancy cliffs, cache-capacity steps).
    """

    def __call__(self, X: np.ndarray, Z: np.ndarray | None = None) -> np.ndarray:
        X, Z = self._prep(X, Z)
        r = np.sqrt(_scaled_sqdist(X, Z, self.lengthscales))
        sr = np.sqrt(3.0) * r
        return self.variance * (1.0 + sr) * np.exp(-sr)

    def _radial_gradient_factor(self, X: np.ndarray) -> np.ndarray:
        # dK/dr = -3 v r exp(-sqrt(3) r); dr/d log l_i = -s_i^2 / r,
        # so dK/d log l_i = 3 v exp(-sqrt(3) r) * s_i^2.
        r = np.sqrt(_scaled_sqdist(X, X, self.lengthscales))
        return 3.0 * self.variance * np.exp(-np.sqrt(3.0) * r)


class Matern52(Kernel):
    """Matérn kernel with nu=5/2: the GPTune / standard-BO default.

    ``v * (1 + s r + s^2 r^2 / 3) exp(-s r)``, s=sqrt(5).
    """

    def __call__(self, X: np.ndarray, Z: np.ndarray | None = None) -> np.ndarray:
        X, Z = self._prep(X, Z)
        r = np.sqrt(_scaled_sqdist(X, Z, self.lengthscales))
        sr = np.sqrt(5.0) * r
        return self.variance * (1.0 + sr + sr * sr / 3.0) * np.exp(-sr)

    def _radial_gradient_factor(self, X: np.ndarray) -> np.ndarray:
        # dK/dr = -(5/3) v r (1 + sqrt(5) r) exp(-sqrt(5) r);
        # dK/d log l_i = (5/3) v (1 + sqrt(5) r) exp(-sqrt(5) r) * s_i^2.
        r = np.sqrt(_scaled_sqdist(X, X, self.lengthscales))
        sr = np.sqrt(5.0) * r
        return (5.0 / 3.0) * self.variance * (1.0 + sr) * np.exp(-sr)


_KERNELS = {"rbf": RBF, "matern32": Matern32, "matern52": Matern52}


def kernel_by_name(name: str, dim: int, **kwargs) -> Kernel:
    """Factory: ``kernel_by_name("matern52", d)``; raises on unknown names."""
    try:
        cls = _KERNELS[name.lower()]
    except KeyError:
        raise ValueError(f"unknown kernel {name!r}; choose from {sorted(_KERNELS)}") from None
    return cls(dim, **kwargs)
