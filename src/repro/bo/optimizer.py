"""The sequential Bayesian-optimization loop.

Implements the loop described in the paper's Section III-A:

1. train the surrogate on a small random (here: Latin-hypercube) initial
   design,
2. let the acquisition function suggest the next configuration, balancing
   exploration and exploitation,
3. evaluate it, retrain, repeat until the stopping criterion
   (``max_evaluations``, the paper uses ``10 x num_parameters``) is met.

Search-time accounting mirrors the paper's Table III: reported search time
is the sum of evaluation costs plus the surrogate/acquisition *modeling
overhead*, which grows O(N^3) with the number of observations and is what
makes the fully-joint 20-dim search with N=200 dramatically slower than the
decomposed searches.

Failure handling: objectives may raise (recorded as FAILED) or exceed
``evaluation_timeout`` (recorded as TIMEOUT, matching the paper's 15-minute
cap on suggested configurations); both are excluded from the GP training
set but remembered so the acquisition avoids re-suggesting them.  Failed
evaluations are charged a *simulated* failure penalty (``failure_cost``,
defaulting to the timeout cap) so search-time columns never mix real
machine seconds into the simulated-cost ledger; the measured seconds are
preserved in the record's ``meta``.

Determinism and crash recovery: all randomness is drawn from per-iteration
:class:`numpy.random.SeedSequence` streams keyed on the number of records
in the evaluation database.  Because the streams depend only on (seed,
progress index) — not on how many times the process restarted — resuming
from a checkpoint replays the completed evaluations, re-executes the
pre-crash fit schedule (rebuilding incremental Cholesky state
deterministically from history; it is never serialized), and then
continues *bit-identically* to an uninterrupted run.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from ..faults.breaker import CircuitBreaker, persist_breaker, restore_breaker
from ..faults.taxonomy import (
    FAILURE_KIND_KEY,
    FailureKind,
    classify_exception,
    failure_kind_of,
)
from ..space import SearchSpace
from ..telemetry.core import NULL_TRACER, config_hash
from .acquisition import (
    AcquisitionFunction,
    acquisition_by_name,
    maximize_acquisition,
)
from .gp import GaussianProcess, GPFitError
from .history import Evaluation, EvaluationDatabase, EvaluationStatus
from .kernels import kernel_by_name
from .pool import EncodedPool

__all__ = ["BayesianOptimizer", "BOResult", "Objective"]

# An objective maps a configuration dict to either a float runtime or a
# (runtime, metadata) pair.
Objective = Callable[[Mapping[str, Any]], Any]


@dataclass
class BOResult:
    """Outcome of one BO search.

    Attributes
    ----------
    best_config / best_objective:
        The incumbent at termination.
    database:
        Full evaluation history (reusable for transfer learning).
    n_evaluations:
        Number of objective evaluations performed *in this run* (excludes
        replayed records from crash recovery).
    evaluation_cost:
        Sum of the objective evaluation costs (simulated seconds).
    modeling_overhead:
        Surrogate-fit + acquisition time accounted via the O(N^3) model
        (simulated seconds).
    search_time:
        ``evaluation_cost + modeling_overhead`` — the paper's "Time" column.
        BO evaluations are inherently sequential, so no parallel discount
        applies within a single search.
    """

    best_config: dict[str, Any]
    best_objective: float
    database: EvaluationDatabase
    n_evaluations: int
    evaluation_cost: float
    modeling_overhead: float
    meta: dict[str, Any] = field(default_factory=dict)
    """Robustness annotations (failure-kind counts, circuit-breaker
    quarantine summary) — forwarded into ``SearchResult.meta``."""

    @property
    def search_time(self) -> float:
        return self.evaluation_cost + self.modeling_overhead

    @property
    def trajectory(self) -> np.ndarray:
        """Best-so-far series (Figure 6 material)."""
        return self.database.best_so_far()


class BayesianOptimizer:
    """Constrained sequential BO over a :class:`SearchSpace`.

    Parameters
    ----------
    space:
        The (sub)space to search.  :class:`repro.space.PinnedSubspace`
        instances are completed with their pinned values before evaluation.
    objective:
        Black-box function ``config -> runtime`` or ``config -> (runtime,
        meta)``.  Raising marks the evaluation FAILED.
    n_initial:
        Random/LHS configurations used to seed the surrogate (paper: 5).
    max_evaluations:
        Stopping criterion; the paper uses ``10 x num_parameters``.  When
        ``None`` it defaults to exactly that.
    acquisition:
        Acquisition function instance or name ("ei", "pi", "lcb", "ts").
    kernel:
        Kernel name for the GP surrogate ("matern52" default).
    incremental:
        Enable the incremental-GP fast path (default ``True``): between
        full refits the surrogate absorbs new observations via O(N^2)
        rank-1 Cholesky extensions (:meth:`GaussianProcess.update`)
        instead of O(N^3) refits.  Incremental and full-refit models
        agree to floating-point rounding; ``tests/bo/harness`` is the
        differential harness that verifies proposal sequences match the
        full-refit baseline and measures the drift.
    full_refit_every:
        The K-refit knob: every K-th scheduled fit is forced to a full
        factorization (in addition to the hyperparameter refits, which
        are always full), bounding the incremental chain length and hence
        the accumulated floating-point drift.  The drift observed at each
        full refit is exposed as ``last_drift`` and on the ``gp_fit``
        span.  Only meaningful when ``incremental`` is on.
    evaluation_timeout:
        Objective values above this threshold are recorded as TIMEOUT at the
        cap value (simulating the paper's 15-minute kill switch).
    database:
        Optional pre-loaded :class:`EvaluationDatabase` (crash recovery /
        warm start).  Existing OK records count toward ``max_evaluations``
        and are excluded from the returned ``n_evaluations``.
    resume:
        When ``True`` (default) and the database already holds records,
        the optimizer replays them to reconstruct the surrogate
        hyperparameter state before continuing, so a resumed search
        continues exactly where the crashed one left off.
    failure_cost:
        Simulated cost charged to FAILED/TIMEOUT evaluations.  ``None``
        (default) charges ``evaluation_timeout`` when one is set, else 0 —
        never real machine seconds, which would corrupt the simulated
        search-time ledger.  The measured wall-clock of the failed run is
        kept in ``meta["measured_seconds"]``.
    model_unit_cost:
        Seconds per unit of the O(N^3 + N d) modeling-work estimate; the
        knob that lets the simulated Table III reproduce the wall-clock gap
        between 20-dim joint BO and the decomposed searches.
    quarantine_threshold / quarantine_resolution:
        Circuit breaker: after ``quarantine_threshold`` PERMANENT/NUMERIC
        classified failures inside one cell of the
        ``quarantine_resolution``-per-axis grid over the unit cube, that
        cell is quarantined — the optimizer stops suggesting
        configurations there (resampling deterministically from the
        iteration's RNG stream) and the search degrades gracefully
        instead of re-probing poison.  ``None`` (default) disables the
        breaker.  Tripped cells are reported in ``meta["quarantined"]``.
    failure_penalty_factor:
        When set, FAILED/TIMEOUT observations are fed to the GP as
        *penalized* observations instead of being dropped: their target
        value is ``y_max + factor * (y_max - y_min)`` over the successful
        records (falling back to ``y_max + factor`` for a degenerate
        spread), so the surrogate learns an elevated surface around
        failing regions.  ``None`` (default) keeps the classic
        drop-failures behavior.
    candidate_pool:
        Optional fixed :class:`~repro.bo.pool.EncodedPool`: the
        acquisition scores this pre-encoded matrix every iteration
        (masking already-evaluated entries by key) instead of sampling
        and re-encoding a fresh pool.  When the pool is exhausted the
        iteration falls back to fresh sampling.  Pool content — not its
        storage (local vs. shared memory) — determines proposals, so
        campaign workers attached to a shared segment produce
        bit-identical results.
    approx:
        Opt-in approximate surrogate for long histories: ``None``
        (default, exact GP — bit-identical to previous behavior),
        ``"sod"`` (subset-of-data: exact GP on a deterministic
        farthest-point subset of ``approx_size`` observations), or
        ``"inducing"`` (:class:`~repro.bo.highdim.InducingPointGP`, DTC
        posterior over the full history through ``approx_size`` inducing
        points).  Only engages once the training set exceeds
        ``approx_threshold`` observations; below that the exact GP is
        used regardless.  Approximate proposals are tolerance-bounded,
        not bit-identical — hence the explicit opt-in.
    tracer:
        Optional :class:`repro.telemetry.Tracer` — a pure observer that
        emits ``bo_iteration`` / ``gp_fit`` / ``acquisition`` /
        ``evaluation`` spans and one ``eval`` event per database record
        (replayed records re-emit theirs, keeping resumed traces aligned
        with uninterrupted ones).  ``None`` (default) skips all
        instrumentation; the tracer never draws random state or alters
        control flow, so results are bit-identical either way.
    """

    def __init__(
        self,
        space: SearchSpace,
        objective: Objective,
        *,
        n_initial: int = 5,
        max_evaluations: int | None = None,
        acquisition: AcquisitionFunction | str = "ei",
        kernel: str = "matern52",
        refit_every: int = 1,
        hyper_refit_every: int = 5,
        incremental: bool = True,
        full_refit_every: int = 10,
        n_candidates: int = 512,
        evaluation_timeout: float | None = None,
        database: EvaluationDatabase | None = None,
        resume: bool = True,
        failure_cost: float | None = None,
        model_unit_cost: float = 5e-7,
        quarantine_threshold: int | None = None,
        quarantine_resolution: int = 4,
        failure_penalty_factor: float | None = None,
        mean_function: Callable[[np.ndarray], np.ndarray] | None = None,
        candidate_pool: EncodedPool | None = None,
        approx: str | None = None,
        approx_size: int = 256,
        approx_threshold: int = 512,
        tracer=None,
        random_state: int | np.random.Generator | np.random.SeedSequence | None = None,
    ):
        if n_initial < 1:
            raise ValueError("n_initial must be >= 1")
        if approx not in (None, "sod", "inducing"):
            raise ValueError(
                f"approx must be None, 'sod', or 'inducing', got {approx!r}"
            )
        self.space = space
        self.objective = objective
        self.n_initial = int(n_initial)
        self.max_evaluations = (
            int(max_evaluations) if max_evaluations is not None else 10 * space.dimension
        )
        if self.max_evaluations < self.n_initial:
            raise ValueError("max_evaluations must be >= n_initial")
        self.acquisition = (
            acquisition_by_name(acquisition)
            if isinstance(acquisition, str)
            else acquisition
        )
        self.kernel_name = kernel
        self.refit_every = max(1, int(refit_every))
        self.hyper_refit_every = max(1, int(hyper_refit_every))
        self.incremental = bool(incremental)
        self.full_refit_every = max(1, int(full_refit_every))
        self.n_candidates = int(n_candidates)
        self._fit_count = 0
        self._kernel_theta: np.ndarray | None = None
        self._gp_noise: float | None = None
        self._gp_jitter: float | None = None
        #: Mode of the most recent surrogate fit ("full"/"incremental")
        #: and the drift measured at the most recent full refit — the
        #: values the ``gp_fit`` telemetry span reports.
        self.last_fit_mode: str | None = None
        self.last_drift: float | None = None
        self.evaluation_timeout = evaluation_timeout
        self.database = database if database is not None else EvaluationDatabase()
        self.resume = bool(resume)
        self.failure_cost = failure_cost
        self.model_unit_cost = float(model_unit_cost)
        self.failure_penalty_factor = (
            float(failure_penalty_factor)
            if failure_penalty_factor is not None
            else None
        )
        self.breaker = (
            CircuitBreaker(
                space,
                threshold=quarantine_threshold,
                resolution=quarantine_resolution,
            )
            if quarantine_threshold is not None
            else None
        )
        self.quarantine_skips = 0
        self.mean_function = mean_function
        self.candidate_pool = candidate_pool
        self.approx = approx
        self.approx_size = int(approx_size)
        self.approx_threshold = int(approx_threshold)
        #: Surrogate family of the most recent fit: ``"exact"``, ``"sod"``,
        #: or ``"inducing"`` — the ``acquisition_batch`` span's ``approx``.
        self.last_surrogate: str = "exact"
        self.tracer = tracer
        self._best_seen: float | None = None
        # Incrementally-maintained identity keys of every database record
        # (the acquisition's exclude set) — O(new records) per iteration
        # instead of rebuilding O(N d) config dicts each proposal.
        self._eval_keys: set[tuple] = set()
        self._eval_keys_n = 0
        # All randomness derives from one SeedSequence so that per-iteration
        # streams can be re-derived after a crash.  A Generator input (legacy
        # API) contributes a single entropy draw.
        if isinstance(random_state, np.random.SeedSequence):
            self._seed_seq = random_state
        elif isinstance(random_state, np.random.Generator):
            self._seed_seq = np.random.SeedSequence(
                int(random_state.integers(0, 2**63))
            )
        else:
            self._seed_seq = np.random.SeedSequence(random_state)
        # Legacy attribute: subclasses (batch BO) and Thompson sampling
        # consume this sequentially.
        self.rng = np.random.default_rng(self._stream(0))
        self._model: GaussianProcess | None = None

    def _stream(self, index: int) -> np.random.SeedSequence:
        """Independent child stream ``index`` of this optimizer's seed.

        Iteration ``idx`` of the loop uses stream ``idx + 1`` (stream 0 is
        reserved for ``self.rng``); the initial design uses the dedicated
        ``_INIT_STREAM``.  Keyed on the database length, not on call
        counts, so a resumed process derives the same streams.
        """
        key = tuple(self._seed_seq.spawn_key) + (int(index),)
        return np.random.SeedSequence(self._seed_seq.entropy, spawn_key=key)

    # Stream indices: 0 -> self.rng, 1 -> initial design, idx + 2 -> the
    # loop iteration that produced record number `idx`.
    _INIT_STREAM = 1

    def _iter_rng(self, idx: int) -> np.random.Generator:
        return np.random.default_rng(self._stream(idx + 2))

    # ------------------------------------------------------------------
    @property
    def model(self) -> GaussianProcess | None:
        """The current surrogate (``None`` before the first fit)."""
        return self._model

    def _complete(self, config: Mapping[str, Any]) -> dict[str, Any]:
        complete = getattr(self.space, "complete", None)
        return complete(config) if complete is not None else dict(config)

    @property
    def _failure_penalty(self) -> float:
        """Simulated cost charged to failed/timed-out evaluations."""
        if self.failure_cost is not None:
            return float(self.failure_cost)
        if self.evaluation_timeout is not None:
            return float(self.evaluation_timeout)
        return 0.0

    def _evaluate(self, config: Mapping[str, Any]) -> Evaluation:
        """Run the objective with failure/timeout capture.

        Failure/timeout records are charged the simulated
        ``failure_cost`` penalty — never real ``perf_counter`` seconds,
        which live on a different clock than the simulated runtimes the
        cost ledger sums.  The measured seconds are kept in
        ``meta["measured_seconds"]``.
        """
        full = self._complete(config)
        t0 = time.perf_counter()
        try:
            out = self.objective(full)
        except Exception as exc:  # objective crash -> classified record
            kind = classify_exception(exc)
            meta: dict[str, Any] = {
                "error": repr(exc),
                FAILURE_KIND_KEY: kind.value,
                "measured_seconds": time.perf_counter() - t0,
            }
            if kind is FailureKind.TIMEOUT:
                # The watchdog fired: a *real* wall-clock deadline, as
                # opposed to the simulated cap below.
                meta["timeout_kind"] = "wallclock"
            return Evaluation(
                config=full,
                objective=float("nan"),
                cost=self._failure_penalty,
                status=EvaluationStatus.TIMEOUT
                if kind is FailureKind.TIMEOUT
                else EvaluationStatus.FAILED,
                meta=meta,
            )
        if isinstance(out, tuple):
            value, meta = float(out[0]), dict(out[1])
        else:
            value, meta = float(out), {}
        if self.evaluation_timeout is not None and (
            not np.isfinite(value) or value > self.evaluation_timeout
        ):
            # Simulated kill switch: charge the capped runtime (the run
            # would have been killed at the timeout), never more.
            finite = np.isfinite(value)
            return Evaluation(
                config=full,
                objective=float("nan"),
                cost=min(value, self.evaluation_timeout)
                if finite
                else self._failure_penalty,
                status=EvaluationStatus.TIMEOUT,
                meta={
                    **meta,
                    FAILURE_KIND_KEY: (
                        FailureKind.TIMEOUT if finite else FailureKind.NUMERIC
                    ).value,
                    "timeout_kind": "simulated",
                    "measured_seconds": time.perf_counter() - t0,
                },
            )
        if not np.isfinite(value):
            return Evaluation(
                config=full,
                objective=float("nan"),
                cost=self._failure_penalty,
                status=EvaluationStatus.FAILED,
                meta={
                    **meta,
                    FAILURE_KIND_KEY: FailureKind.NUMERIC.value,
                    "measured_seconds": time.perf_counter() - t0,
                },
            )
        # The objective's value *is* the simulated runtime, hence the cost
        # (clamped at zero: synthetic objectives may be negative logs).
        return Evaluation(config=full, objective=value, cost=max(value, 0.0), meta=meta)

    def _traced_evaluate(self, config: Mapping[str, Any]) -> Evaluation:
        """:meth:`_evaluate` wrapped in an ``evaluation`` span."""
        if self.tracer is None:
            return self._evaluate(config)
        with self.tracer.span("evaluation") as sp:
            rec = self._evaluate(config)
            sp.attrs.update(status=rec.status, cost=rec.cost)
        return rec

    def _emit_eval(self, index: int, rec: Evaluation) -> None:
        """Emit one ``eval`` event keyed by database index.

        Tracks the running best over OK records; called for replayed
        records too, so resumed traces carry the full evaluation stream.
        No-op (and zero bookkeeping) when tracing is disabled.
        """
        if self.tracer is None:
            return
        if rec.ok and (self._best_seen is None or rec.objective < self._best_seen):
            self._best_seen = float(rec.objective)
        kind = failure_kind_of(rec)
        extra: dict[str, Any] = {}
        if rec.meta.get("cache_hit"):
            extra["cache_hit"] = True
        self.tracer.eval_event(
            index,
            objective=float(rec.objective),
            cost=float(rec.cost),
            status=rec.status,
            best=self._best_seen,
            failure_kind=kind.value if kind is not None else None,
            cfg_hash=config_hash(rec.config),
            **extra,
        )

    def _training_set(
        self, records: Sequence[Evaluation] | None = None
    ) -> tuple[np.ndarray, np.ndarray, list[dict[str, Any]]]:
        recs = self.database.records if records is None else list(records)
        ok = [r for r in recs if r.ok]
        training = list(ok)
        y_fail: float | None = None
        if self.failure_penalty_factor is not None and ok:
            # Failed points enter the GP as penalized observations (worse
            # than the worst success by factor x the observed spread) so
            # the surrogate learns to avoid failing regions instead of
            # treating them as unexplored.
            y_ok = np.array([r.objective for r in ok], dtype=float)
            spread = float(y_ok.max() - y_ok.min())
            y_fail = float(
                y_ok.max()
                + self.failure_penalty_factor * (spread if spread > 0 else 1.0)
            )
            training += [r for r in recs if not r.ok]
        configs = [
            {k: r.config[k] for k in self.space.names} for r in training
        ]
        X = self.space.encode_batch(configs)
        y = np.array(
            [r.objective if r.ok else y_fail for r in training], dtype=float
        )
        return X, y, configs

    def _fit_schedule(self, idx: int) -> tuple[bool, bool, bool]:
        """(fit?, optimize-hyperparameters?, full-refit?) for the
        iteration producing record ``idx``.

        Purely a function of ``idx`` — never of how many fits this
        *process* performed — so a resumed run reproduces the exact fit
        schedule of an uninterrupted one.  Surrogate refits happen every
        ``refit_every`` records; every ``hyper_refit_every``-th of those
        re-runs the full MLE.  In between, the previous hyperparameters
        are reused and — with ``incremental`` on — the factor is extended
        in O(N^2) via rank-1 updates, except every ``full_refit_every``-th
        fit, which refactorizes from scratch to bound numerical drift.
        """
        steps = idx - self.n_initial
        fit = steps % self.refit_every == 0
        fit_no = steps // self.refit_every
        optimize = fit and fit_no % self.hyper_refit_every == 0
        full = fit and (
            optimize
            or not self.incremental
            or fit_no % self.full_refit_every == 0
        )
        return fit, optimize, full

    def _fit_model(
        self,
        *,
        optimize: bool,
        rng: np.random.Generator,
        records: Sequence[Evaluation] | None = None,
        replay: bool = False,
        full: bool = True,
    ) -> float:
        """Fit the surrogate; returns the simulated modeling cost."""
        if self.tracer is not None:
            with self.tracer.span("gp_fit", optimize=optimize,
                                  replay=replay) as sp:
                cost = self._fit_model_inner(
                    optimize=optimize, rng=rng, records=records, full=full
                )
                sp.attrs["sim_cost"] = cost
                sp.attrs["n_points"] = len(
                    self.database if records is None else records
                )
                sp.attrs["mode"] = self.last_fit_mode
                if self.last_drift is not None:
                    sp.attrs["drift"] = self.last_drift
            return cost
        return self._fit_model_inner(
            optimize=optimize, rng=rng, records=records, full=full
        )

    def _try_incremental(self, X: np.ndarray, y: np.ndarray) -> bool:
        """Absorb the new training rows into the current surrogate.

        Applies only when the existing model's training set is an exact
        prefix of the new one (same inputs *and* raw targets — a changed
        failure-penalty target, for example, disqualifies the prefix and
        forces a full refit).  Returns ``True`` on success.
        """
        m = self._model
        if m is None or not m.is_fit or not (0 < m.n_train <= X.shape[0]):
            return False
        n_old = m.n_train
        if not (
            np.array_equal(m.train_X, X[:n_old])
            and np.array_equal(m.train_y, y[:n_old])
        ):
            return False
        try:
            m.update(X[n_old:], y[n_old:])
        except GPFitError:
            return False
        if m.last_fit_mode != "incremental":
            # update() hit a numerical breakdown and refactorized fully.
            self.last_fit_mode = "full"
        else:
            self.last_fit_mode = "incremental"
        self._gp_jitter = m.jitter
        return True

    def _measure_drift(
        self, old: GaussianProcess | None, new: GaussianProcess
    ) -> float | None:
        """Max |ΔL| between the refit factor's leading block and the
        superseded (incrementally-extended) factor.

        Only defined when the superseded model shares hyperparameters,
        noise, jitter, and a training-set prefix with the refit one — the
        exact situation the periodic K-refit creates.  This is the drift
        bound the ``gp_fit`` span and the differential harness record.
        """
        if old is None or not old.is_fit or old is new:
            return None
        n_old = old.n_train
        if n_old > new.n_train or old.n_incremental == 0:
            return None
        if not np.array_equal(old.kernel.theta, new.kernel.theta):
            return None
        if old.noise != new.noise or old.jitter != new.jitter:
            return None
        if not np.array_equal(old.train_X, new.train_X[:n_old]):
            return None
        L_old = old.cholesky_factor
        L_new = new.cholesky_factor[:n_old, :n_old]
        return float(np.max(np.abs(L_new - L_old)))

    def _approx_active(self, n: int) -> bool:
        return self.approx is not None and n > self.approx_threshold

    def _fit_approx_model(
        self, X: np.ndarray, y: np.ndarray, *, optimize: bool, rng: np.random.Generator
    ) -> None:
        """Fit the opted-in approximate surrogate (bounded time in N).

        ``"sod"`` trains an exact GP on a deterministic farthest-point
        subset; ``"inducing"`` trains the DTC sparse GP on the full
        history.  Both reuse the warm-started hyperparameters/jitter the
        exact path maintains, and write them back, so toggling between
        exact and approximate fits across the threshold stays smooth.
        """
        from .highdim import InducingPointGP, farthest_point_subset

        kernel = kernel_by_name(self.kernel_name, X.shape[1])
        if self._kernel_theta is not None:
            kernel.theta = self._kernel_theta
        try:
            if self.approx == "sod":
                idx = farthest_point_subset(X, y, self.approx_size)
                model = GaussianProcess(
                    kernel=kernel,
                    mean_function=self.mean_function,
                    random_state=rng,
                )
                if self._gp_noise is not None:
                    model.noise = self._gp_noise
                if self._gp_jitter is not None:
                    model.jitter = self._gp_jitter
                model.fit(X[idx], y[idx], optimize=optimize)
            else:
                model = InducingPointGP(kernel, random_state=rng)
                if self._gp_noise is not None:
                    model.noise = self._gp_noise
                if self._gp_jitter is not None:
                    model.jitter = self._gp_jitter
                model.fit(X, y, optimize=optimize, n_inducing=self.approx_size)
            self._model = model
            self._kernel_theta = model.kernel.theta.copy()
            self._gp_noise = model.noise
            self._gp_jitter = model.jitter
            self.last_surrogate = self.approx
        except GPFitError:
            self._model = None

    def _fit_model_inner(
        self,
        *,
        optimize: bool,
        rng: np.random.Generator,
        records: Sequence[Evaluation] | None = None,
        full: bool = True,
    ) -> float:
        X, y, _ = self._training_set(records)
        n, d = X.shape
        self._fit_count += 1
        self.last_drift = None
        if self._approx_active(n):
            self._fit_approx_model(X, y, optimize=optimize, rng=rng)
            self.last_fit_mode = self.approx
            # The *simulated* ledger still charges the paper's exact-GP
            # O(N^3) accounting (Table III describes the full-refit
            # baseline); the real bounded-time win shows up in gp_fit
            # span durations and benchmarks/bench_bo_hotpath.py.
            return self.model_unit_cost * (
                n**3 + n * n * d + self.n_candidates * n * d
            )
        self.last_surrogate = "exact"
        if not full and not optimize and self._try_incremental(X, y):
            # Note: the *simulated* cost ledger deliberately keeps the
            # paper's O(N^3)-per-fit accounting model (Table III is a
            # statement about the GPTune-style full-refit baseline); the
            # real-wall-clock win of the fast path shows up in the gp_fit
            # span durations and benchmarks/bench_gp_incremental.py.
            return self.model_unit_cost * (
                n**3 + n * n * d + self.n_candidates * n * d
            )
        kernel = kernel_by_name(self.kernel_name, d)
        if self._kernel_theta is not None:
            kernel.theta = self._kernel_theta
        model = GaussianProcess(
            kernel=kernel,
            mean_function=self.mean_function,
            random_state=rng,
        )
        if self._gp_noise is not None:
            model.noise = self._gp_noise
        if self._gp_jitter is not None:
            model.jitter = self._gp_jitter
        try:
            model.fit(X, y, optimize=optimize)
            self.last_drift = self._measure_drift(self._model, model)
            self._model = model
            self._kernel_theta = model.kernel.theta.copy()
            self._gp_noise = model.noise
            self._gp_jitter = model.jitter
        except GPFitError:
            self._model = None
        self.last_fit_mode = "full"
        # O(N^3) Cholesky + O(N^2 d) kernel work, plus acquisition scoring
        # over the candidate batch: the simulated modeling overhead.
        return self.model_unit_cost * (n**3 + n * n * d + self.n_candidates * n * d)

    def _replay_model_state(self) -> None:
        """Reconstruct the surrogate from replayed records.

        Re-runs *every* fit of the pre-crash schedule — full and
        incremental alike, applying the exact decision logic of the live
        loop — on the same data prefixes and RNG streams the original
        process used.  Incremental state is therefore rebuilt
        deterministically from history (it is never serialized): the
        resulting Cholesky factor is the product of the identical sequence
        of floating-point operations, so the resumed search continues
        *bit-identically* to an uninterrupted run.  Replayed fits are not
        charged to this run's modeling overhead: that cost was paid before
        the crash.
        """
        records = self.database.records
        for idx in range(self.n_initial, len(records)):
            fit, optimize, full = self._fit_schedule(idx)
            if not (self._model is None or fit):
                continue
            self._fit_model(
                optimize=optimize, rng=self._iter_rng(idx),
                records=records[:idx], replay=True, full=full,
            )

    def _exclude_keys(self) -> set[tuple]:
        """Identity keys of every database record, maintained incrementally.

        Equivalent to rebuilding ``{tuple(r.config[k] for k in names)}``
        from scratch (same set contents, hence identical proposals), but
        O(records appended since the last call) instead of O(N d) per
        iteration — one of the Python-loop hot spots at N ~ 1000.
        """
        records = self.database.records
        if self._eval_keys_n > len(records):  # database was swapped/truncated
            self._eval_keys = set()
            self._eval_keys_n = 0
        names = self.space.names
        for r in records[self._eval_keys_n:]:
            self._eval_keys.add(tuple(r.config[k] for k in names))
        self._eval_keys_n = len(records)
        return self._eval_keys

    def _replay_acquisition_schedule(self) -> None:
        """Re-apply the acquisition's ``update`` schedule for replayed
        records, so schedule-dependent state (LCB's beta decay) matches an
        uninterrupted run exactly.  The live loop called ``update(it,
        total)`` once per iteration with ``it`` = the OK-count *before*
        that iteration's record; replaying the same sequence is
        correct-by-construction for any stateful acquisition.
        """
        records = self.database.records
        total = self.max_evaluations
        n_ok = sum(1 for r in records[: self.n_initial] if r.ok)
        for idx in range(self.n_initial, len(records)):
            self.acquisition.update(n_ok, total)
            if records[idx].ok:
                n_ok += 1

    def _persist_breaker(self) -> None:
        """Atomically snapshot breaker state into the checkpoint scope
        (``<checkpoint>.breaker.json``); no-op for in-memory databases."""
        if self.breaker is not None:
            persist_breaker(self.breaker, self.database.path)

    def _restore_breaker_state(self) -> bool:
        """Load the persisted breaker sidecar, if any.  Returns True when
        state was restored (the record replay must then be skipped —
        re-recording the same failures would double the counts)."""
        if self.breaker is None:
            return False
        return restore_breaker(self.breaker, self.database.path)

    def _record_failure(self, rec: Evaluation, *, persist: bool = True) -> None:
        """Feed a completed evaluation's classified failure (if any) to
        the circuit breaker, persisting changed state to the checkpoint
        scope so a resumed campaign keeps its quarantine."""
        if self.breaker is not None and not rec.ok:
            before = self.breaker.total_counted
            self.breaker.record(rec.config, failure_kind_of(rec))
            if persist and self.breaker.total_counted != before:
                self._persist_breaker()

    def _dequarantine(
        self, config: dict[str, Any], rng: np.random.Generator
    ) -> dict[str, Any] | None:
        """Replace a quarantined suggestion with an allowed sample.

        Pure pass-through while no cell has tripped (consumes no random
        state — the chaos-determinism guarantee).  Once regions are
        quarantined, draws replacement samples from the iteration's RNG
        stream; ``None`` when the reachable space appears fully
        quarantined, which ends the search gracefully.
        """
        if self.breaker is None or self.breaker.allows(config):
            return config
        self.quarantine_skips += 1
        for _ in range(64):
            cand = self.space.sample(rng)
            if self.breaker.allows(cand):
                return cand
        return None

    def _result_meta(self) -> dict[str, Any]:
        """Robustness annotations for the result (empty when clean)."""
        meta: dict[str, Any] = {}
        counts: dict[str, int] = {}
        for rec in self.database:
            kind = failure_kind_of(rec)
            if kind is not None:
                counts[kind.value] = counts.get(kind.value, 0) + 1
        if counts:
            meta["failure_counts"] = counts
        if self.breaker is not None and self.breaker.n_tripped:
            meta["quarantined"] = self.breaker.summary()
        if self.quarantine_skips:
            meta["quarantine_skipped"] = self.quarantine_skips
        warm = sum(
            1 for rec in self.database if rec.meta.get("warm_start")
        )
        if warm:
            # Seed history injected before the run (e.g. projected
            # Phase-1 observations): each such record consumed one unit
            # of budget without a fresh objective call.
            meta["warm_seeded"] = warm
        return meta

    # ------------------------------------------------------------------
    def run(self) -> BOResult:
        """Execute the BO loop to completion and return the result."""
        eval_cost = 0.0
        model_cost = 0.0
        n_new = 0

        if self.tracer is not None:
            # Re-emit eval events for replayed records: the persisted
            # evaluation stream of a resumed run must equal the stream of
            # an uninterrupted one (JsonlSink dedups by database index).
            for i, rec in enumerate(self.database):
                self._emit_eval(i, rec)

        if self.resume and len(self.database) > 0:
            self._replay_model_state()
            self._replay_acquisition_schedule()
            # Restore the circuit breaker from its checkpoint-scope
            # sidecar when one exists (exact pre-crash state, including
            # partial cell counts); otherwise rebuild it from the
            # checkpointed failure kinds.  Either way a resumed campaign
            # keeps its quarantine instead of re-paying failures in
            # already-quarantined cells.
            if not self._restore_breaker_state():
                for rec in self.database:
                    self._record_failure(rec, persist=False)
                if self.breaker is not None and self.breaker.total_counted:
                    self._persist_breaker()

        # --- initial design (partially replayed under crash recovery) ---
        # The full design is derived from a dedicated stream so a resumed
        # run regenerates the identical point set and evaluates only the
        # missing tail.
        if len(self.database) < self.n_initial:
            design = self.space.latin_hypercube(
                self.n_initial, np.random.default_rng(self._stream(self._INIT_STREAM))
            )
            for config in design[len(self.database):]:
                if self.breaker is not None and not self.breaker.allows(config):
                    # Design point landed in a quarantined cell: skip it
                    # (zero evaluations inside tripped regions).
                    self.quarantine_skips += 1
                    continue
                rec = self._traced_evaluate(config)
                self._record_failure(rec)
                self.database.append(rec)
                self._emit_eval(len(self.database) - 1, rec)
                eval_cost += rec.cost
                n_new += 1

        # --- sequential BO iterations -----------------------------------
        total_iters = self.max_evaluations
        tr = self.tracer if self.tracer is not None else NULL_TRACER
        while self.database.n_ok < self.max_evaluations:
            it = self.database.n_ok
            idx = len(self.database)  # index of the record this iteration adds
            stop = False
            with tr.span("bo_iteration", index=idx):
                rng = self._iter_rng(idx)
                self.acquisition.update(it, total_iters)
                fit, optimize, full = self._fit_schedule(idx)
                if self._model is None or fit:
                    model_cost += self._fit_model(
                        optimize=optimize, full=full, rng=rng
                    )
                if self._model is None:
                    # Degenerate data (e.g. constant objective): random fallback.
                    config = self.space.sample(rng)
                else:
                    best = self.database.best()
                    incumbent_cfg = {k: best.config[k] for k in self.space.names}
                    pool = self.candidate_pool
                    with tr.span("acquisition", n_candidates=self.n_candidates), \
                         tr.span(
                             "acquisition_batch",
                             pool=len(pool) if pool is not None else self.n_candidates,
                             backend=pool.backend if pool is not None else "sampled",
                             approx=self.last_surrogate,
                         ):
                        config = maximize_acquisition(
                            self.acquisition,
                            self._model,
                            self.space,
                            best.objective,
                            rng,
                            n_candidates=self.n_candidates,
                            incumbent_config=incumbent_cfg,
                            exclude_keys=self._exclude_keys(),
                            pool=pool,
                            acquisition_rng=rng,
                        )
                config = self._dequarantine(config, rng)
                if config is None:
                    # Every reachable cell is quarantined: degrade gracefully
                    # with whatever incumbents exist instead of burning the
                    # rest of the budget on guaranteed failures.
                    stop = True
                else:
                    rec = self._traced_evaluate(config)
                    self._record_failure(rec)
                    self.database.append(rec)
                    self._emit_eval(len(self.database) - 1, rec)
                    eval_cost += rec.cost
                    n_new += 1
                    if n_new > 4 * self.max_evaluations:
                        # Safety valve: a pathological objective failing
                        # every run must not loop forever.
                        stop = True
            if stop:
                break

        best = self.database.best()
        return BOResult(
            best_config=dict(best.config),
            best_objective=best.objective,
            database=self.database,
            n_evaluations=n_new,
            evaluation_cost=eval_cost,
            modeling_overhead=model_cost,
            meta=self._result_meta(),
        )
