"""The sequential Bayesian-optimization loop.

Implements the loop described in the paper's Section III-A:

1. train the surrogate on a small random (here: Latin-hypercube) initial
   design,
2. let the acquisition function suggest the next configuration, balancing
   exploration and exploitation,
3. evaluate it, retrain, repeat until the stopping criterion
   (``max_evaluations``, the paper uses ``10 x num_parameters``) is met.

Search-time accounting mirrors the paper's Table III: reported search time
is the sum of evaluation costs plus the surrogate/acquisition *modeling
overhead*, which grows O(N^3) with the number of observations and is what
makes the fully-joint 20-dim search with N=200 dramatically slower than the
decomposed searches.

Failure handling: objectives may raise (recorded as FAILED) or exceed
``evaluation_timeout`` (recorded as TIMEOUT, matching the paper's 15-minute
cap on suggested configurations); both are excluded from the GP training
set but remembered so the acquisition avoids re-suggesting them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Mapping

import numpy as np

from ..space import SearchSpace
from .acquisition import (
    AcquisitionFunction,
    acquisition_by_name,
    maximize_acquisition,
)
from .gp import GaussianProcess, GPFitError
from .history import Evaluation, EvaluationDatabase, EvaluationStatus
from .kernels import kernel_by_name

__all__ = ["BayesianOptimizer", "BOResult", "Objective"]

# An objective maps a configuration dict to either a float runtime or a
# (runtime, metadata) pair.
Objective = Callable[[Mapping[str, Any]], Any]


@dataclass
class BOResult:
    """Outcome of one BO search.

    Attributes
    ----------
    best_config / best_objective:
        The incumbent at termination.
    database:
        Full evaluation history (reusable for transfer learning).
    n_evaluations:
        Number of objective evaluations performed *in this run* (excludes
        replayed records from crash recovery).
    evaluation_cost:
        Sum of the objective evaluation costs (simulated seconds).
    modeling_overhead:
        Surrogate-fit + acquisition time accounted via the O(N^3) model
        (simulated seconds).
    search_time:
        ``evaluation_cost + modeling_overhead`` — the paper's "Time" column.
        BO evaluations are inherently sequential, so no parallel discount
        applies within a single search.
    """

    best_config: dict[str, Any]
    best_objective: float
    database: EvaluationDatabase
    n_evaluations: int
    evaluation_cost: float
    modeling_overhead: float

    @property
    def search_time(self) -> float:
        return self.evaluation_cost + self.modeling_overhead

    @property
    def trajectory(self) -> np.ndarray:
        """Best-so-far series (Figure 6 material)."""
        return self.database.best_so_far()


class BayesianOptimizer:
    """Constrained sequential BO over a :class:`SearchSpace`.

    Parameters
    ----------
    space:
        The (sub)space to search.  :class:`repro.space.PinnedSubspace`
        instances are completed with their pinned values before evaluation.
    objective:
        Black-box function ``config -> runtime`` or ``config -> (runtime,
        meta)``.  Raising marks the evaluation FAILED.
    n_initial:
        Random/LHS configurations used to seed the surrogate (paper: 5).
    max_evaluations:
        Stopping criterion; the paper uses ``10 x num_parameters``.  When
        ``None`` it defaults to exactly that.
    acquisition:
        Acquisition function instance or name ("ei", "pi", "lcb", "ts").
    kernel:
        Kernel name for the GP surrogate ("matern52" default).
    evaluation_timeout:
        Objective values above this threshold are recorded as TIMEOUT at the
        cap value (simulating the paper's 15-minute kill switch).
    database:
        Optional pre-loaded :class:`EvaluationDatabase` (crash recovery /
        warm start).  Existing OK records count toward ``max_evaluations``.
    model_unit_cost:
        Seconds per unit of the O(N^3 + N d) modeling-work estimate; the
        knob that lets the simulated Table III reproduce the wall-clock gap
        between 20-dim joint BO and the decomposed searches.
    """

    def __init__(
        self,
        space: SearchSpace,
        objective: Objective,
        *,
        n_initial: int = 5,
        max_evaluations: int | None = None,
        acquisition: AcquisitionFunction | str = "ei",
        kernel: str = "matern52",
        refit_every: int = 1,
        hyper_refit_every: int = 5,
        n_candidates: int = 512,
        evaluation_timeout: float | None = None,
        database: EvaluationDatabase | None = None,
        model_unit_cost: float = 5e-7,
        mean_function: Callable[[np.ndarray], np.ndarray] | None = None,
        random_state: int | np.random.Generator | None = None,
    ):
        if n_initial < 1:
            raise ValueError("n_initial must be >= 1")
        self.space = space
        self.objective = objective
        self.n_initial = int(n_initial)
        self.max_evaluations = (
            int(max_evaluations) if max_evaluations is not None else 10 * space.dimension
        )
        if self.max_evaluations < self.n_initial:
            raise ValueError("max_evaluations must be >= n_initial")
        self.acquisition = (
            acquisition_by_name(acquisition)
            if isinstance(acquisition, str)
            else acquisition
        )
        self.kernel_name = kernel
        self.refit_every = max(1, int(refit_every))
        self.hyper_refit_every = max(1, int(hyper_refit_every))
        self.n_candidates = int(n_candidates)
        self._fit_count = 0
        self._kernel_theta: np.ndarray | None = None
        self._gp_noise: float | None = None
        self.evaluation_timeout = evaluation_timeout
        self.database = database if database is not None else EvaluationDatabase()
        self.model_unit_cost = float(model_unit_cost)
        self.mean_function = mean_function
        self.rng = (
            random_state
            if isinstance(random_state, np.random.Generator)
            else np.random.default_rng(random_state)
        )
        self._model: GaussianProcess | None = None

    # ------------------------------------------------------------------
    @property
    def model(self) -> GaussianProcess | None:
        """The current surrogate (``None`` before the first fit)."""
        return self._model

    def _complete(self, config: Mapping[str, Any]) -> dict[str, Any]:
        complete = getattr(self.space, "complete", None)
        return complete(config) if complete is not None else dict(config)

    def _evaluate(self, config: Mapping[str, Any]) -> Evaluation:
        """Run the objective with failure/timeout capture."""
        full = self._complete(config)
        t0 = time.perf_counter()
        try:
            out = self.objective(full)
        except Exception as exc:  # objective crash -> FAILED record
            return Evaluation(
                config=full,
                objective=float("nan"),
                cost=time.perf_counter() - t0,
                status=EvaluationStatus.FAILED,
                meta={"error": repr(exc)},
            )
        if isinstance(out, tuple):
            value, meta = float(out[0]), dict(out[1])
        else:
            value, meta = float(out), {}
        # The objective's value *is* the simulated runtime, hence the cost
        # (clamped at zero: synthetic objectives may be negative logs).
        cost = max(value, 0.0) if np.isfinite(value) else time.perf_counter() - t0
        if self.evaluation_timeout is not None and (
            not np.isfinite(value) or value > self.evaluation_timeout
        ):
            return Evaluation(
                config=full,
                objective=float("nan"),
                cost=min(cost, self.evaluation_timeout)
                if np.isfinite(cost)
                else self.evaluation_timeout,
                status=EvaluationStatus.TIMEOUT,
                meta=meta,
            )
        if not np.isfinite(value):
            return Evaluation(
                config=full,
                objective=float("nan"),
                cost=time.perf_counter() - t0,
                status=EvaluationStatus.FAILED,
                meta=meta,
            )
        return Evaluation(config=full, objective=value, cost=cost, meta=meta)

    def _training_set(self) -> tuple[np.ndarray, np.ndarray, list[dict[str, Any]]]:
        ok = self.database.ok_records()
        configs = [
            {k: r.config[k] for k in self.space.names} for r in ok
        ]
        X = self.space.encode_batch(configs)
        y = np.array([r.objective for r in ok], dtype=float)
        return X, y, configs

    def _fit_model(self) -> float:
        """Fit the surrogate; returns the simulated modeling cost.

        Full MLE hyperparameter optimization runs every
        ``hyper_refit_every`` fits; in between, the previous
        hyperparameters are reused and only the Cholesky factorization is
        refreshed with the new data — the standard BO-in-practice
        economy that keeps per-iteration cost near O(N^3) alone.
        """
        X, y, _ = self._training_set()
        n, d = X.shape
        optimize = (self._fit_count % self.hyper_refit_every) == 0
        self._fit_count += 1
        kernel = kernel_by_name(self.kernel_name, d)
        if self._kernel_theta is not None:
            kernel.theta = self._kernel_theta
        model = GaussianProcess(
            kernel=kernel,
            mean_function=self.mean_function,
            random_state=self.rng,
        )
        if self._gp_noise is not None:
            model.noise = self._gp_noise
        try:
            model.fit(X, y, optimize=optimize)
            self._model = model
            self._kernel_theta = model.kernel.theta.copy()
            self._gp_noise = model.noise
        except GPFitError:
            self._model = None
        # O(N^3) Cholesky + O(N^2 d) kernel work, plus acquisition scoring
        # over the candidate batch: the simulated modeling overhead.
        return self.model_unit_cost * (n**3 + n * n * d + self.n_candidates * n * d)

    # ------------------------------------------------------------------
    def run(self) -> BOResult:
        """Execute the BO loop to completion and return the result."""
        eval_cost = 0.0
        model_cost = 0.0
        n_new = 0

        # --- initial design (skipped/shrunk under crash recovery) -------
        n_have = len(self.database.ok_records())
        n_seed = max(0, self.n_initial - n_have)
        if n_seed > 0:
            for config in self.space.latin_hypercube(n_seed, self.rng):
                rec = self._evaluate(config)
                self.database.append(rec)
                eval_cost += rec.cost
                n_new += 1

        # --- sequential BO iterations -----------------------------------
        total_iters = self.max_evaluations
        while len(self.database.ok_records()) < self.max_evaluations:
            it = len(self.database.ok_records())
            self.acquisition.update(it, total_iters)
            if self._model is None or (n_new % self.refit_every) == 0:
                model_cost += self._fit_model()
            if self._model is None:
                # Degenerate data (e.g. constant objective): random fallback.
                config = self.space.sample(self.rng)
            else:
                best = self.database.best()
                incumbent_cfg = {k: best.config[k] for k in self.space.names}
                config = maximize_acquisition(
                    self.acquisition,
                    self._model,
                    self.space,
                    best.objective,
                    self.rng,
                    n_candidates=self.n_candidates,
                    incumbent_config=incumbent_cfg,
                    exclude=[
                        {k: r.config[k] for k in self.space.names}
                        for r in self.database
                    ],
                )
            rec = self._evaluate(config)
            self.database.append(rec)
            eval_cost += rec.cost
            n_new += 1
            if n_new > 4 * self.max_evaluations:
                # Safety valve: a pathological objective failing every run
                # must not loop forever.
                break

        best = self.database.best()
        return BOResult(
            best_config=dict(best.config),
            best_objective=best.objective,
            database=self.database,
            n_evaluations=n_new,
            evaluation_cost=eval_cost,
            modeling_overhead=model_cost,
        )
