"""Evaluation records, databases, and crash recovery.

GPTune's selling points cited by the paper include *crash recovery* and a
reusable evaluation database for *transfer learning*.  This module provides
both:

:class:`Evaluation`
    one (configuration, objective, cost, status) record,
:class:`EvaluationDatabase`
    an append-only store with atomic JSON checkpointing.  A crashed search
    can be resumed by constructing the optimizer with ``database=`` pointing
    at the checkpoint file — completed evaluations are replayed instead of
    re-run, and failed evaluations are remembered so the search does not
    re-suggest configurations that crash the application.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

import numpy as np

__all__ = [
    "Evaluation",
    "EvaluationDatabase",
    "EvaluationStatus",
    "repair_torn_tail",
]


def repair_torn_tail(path: str | os.PathLike) -> bool:
    """Truncate a JSONL checkpoint whose final line was torn by a crash.

    Every complete append ends with a newline, so a line-oriented
    checkpoint that does not is carrying a partial record from a write
    that died mid-line.  Loaders tolerate the fragment, but a later
    append-mode write would concatenate the next record onto it, turning
    the recoverable torn *final* line into an unparsable *interior* one
    that invalidates the whole file.  Dropping the fragment at load time
    keeps the file line-oriented; the file is removed entirely when no
    complete line survives.  Returns True if the file was modified.
    """
    path = os.fspath(path)
    with open(path, "rb") as f:
        data = f.read()
    if not data or data.endswith(b"\n"):
        return False
    keep = data.rfind(b"\n") + 1
    if keep == 0:
        os.unlink(path)
        return True
    with open(path, "r+b") as f:
        f.truncate(keep)
        f.flush()
        os.fsync(f.fileno())
    return True


class EvaluationStatus:
    """Status labels for evaluation records."""

    OK = "ok"
    FAILED = "failed"     # objective raised
    TIMEOUT = "timeout"   # exceeded the evaluation timeout (paper: 15 min)

    ALL = (OK, FAILED, TIMEOUT)


def _jsonable(value: Any) -> Any:
    """Coerce numpy scalars to plain Python for JSON serialization."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


@dataclass(frozen=True)
class Evaluation:
    """One objective evaluation.

    Attributes
    ----------
    config:
        The full configuration dict that was evaluated.
    objective:
        Observed objective value (runtime); ``nan`` for failed/timeout runs.
    cost:
        Wall-clock cost of the evaluation in seconds.  Search-time
        accounting (paper Table III "Time" columns) sums these plus the
        modeling overhead.
    status:
        One of :class:`EvaluationStatus`.
    meta:
        Free-form extras (e.g. per-routine runtimes from the TDDFT app).
    """

    config: Mapping[str, Any]
    objective: float
    cost: float = 0.0
    status: str = EvaluationStatus.OK
    meta: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        if self.status not in EvaluationStatus.ALL:
            raise ValueError(f"unknown status {self.status!r}")
        if self.status == EvaluationStatus.OK and not np.isfinite(self.objective):
            raise ValueError("OK evaluations require a finite objective")

    @property
    def ok(self) -> bool:
        return self.status == EvaluationStatus.OK

    def to_dict(self) -> dict[str, Any]:
        return {
            "config": _jsonable(dict(self.config)),
            "objective": _jsonable(self.objective),
            "cost": float(self.cost),
            "status": self.status,
            "meta": _jsonable(dict(self.meta)),
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "Evaluation":
        return cls(
            config=dict(d["config"]),
            objective=float(d["objective"]),
            cost=float(d.get("cost", 0.0)),
            status=d.get("status", EvaluationStatus.OK),
            meta=dict(d.get("meta", {})),
        )


class EvaluationDatabase:
    """Append-only evaluation store with incremental checkpoints.

    Parameters
    ----------
    path:
        Optional checkpoint file.  When given and the file exists, records
        are loaded on construction (crash recovery).  Two on-disk formats
        are supported and auto-detected by :meth:`load`:

        * ``"json"`` — one atomic snapshot (``{"task": ..., "records":
          [...]}``); every :meth:`append` rewrites the whole file (O(N)
          per append — the legacy format, kept for backward
          compatibility).
        * ``"jsonl"`` — append-only JSON Lines: a header line followed by
          one record per line; every :meth:`append` writes exactly one
          line (O(1) per append), which is what keeps long checkpointed
          searches from degrading to O(N^2) total I/O.  A crash mid-write
          can at worst leave a partial *final* line, which the loader
          skips.
    task:
        Label identifying the tuning task (used by transfer learning to
        select source databases).
    format:
        ``"json"``, ``"jsonl"``, or ``None`` to infer from the path
        suffix (``.jsonl`` -> JSONL, anything else -> legacy JSON).
        Controls the *incremental* checkpoint format; :meth:`save` can
        still write either format explicitly.
    """

    _JSONL_HEADER = "repro-evaluation-db"

    def __init__(
        self,
        path: str | os.PathLike | None = None,
        task: str = "task",
        *,
        format: str | None = None,
    ):
        self.path = os.fspath(path) if path is not None else None
        if format is None:
            format = (
                "jsonl"
                if self.path is not None and self.path.endswith(".jsonl")
                else "json"
            )
        if format not in ("json", "jsonl"):
            raise ValueError("format must be 'json' or 'jsonl'")
        self.format = format
        self.task = task
        self._records: list[Evaluation] = []
        self._n_ok = 0
        if self.path and os.path.exists(self.path):
            self.load(self.path)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Evaluation]:
        return iter(self._records)

    def __getitem__(self, i: int) -> Evaluation:
        return self._records[i]

    @property
    def records(self) -> list[Evaluation]:
        return list(self._records)

    # ------------------------------------------------------------------
    def append(self, record: Evaluation) -> None:
        """Add a record and (when a path is set) checkpoint incrementally.

        JSONL checkpoints append one line; legacy JSON checkpoints rewrite
        the whole snapshot atomically.
        """
        self._records.append(record)
        if record.ok:
            self._n_ok += 1
        if self.path:
            if self.format == "jsonl":
                self._append_lines([record])
            else:
                self.save(self.path)

    def extend(self, records: Iterator[Evaluation] | list[Evaluation]) -> None:
        added = list(records)
        self._records.extend(added)
        self._n_ok += sum(1 for r in added if r.ok)
        if self.path:
            if self.format == "jsonl":
                self._append_lines(added)
            else:
                self.save(self.path)

    def _append_lines(self, records: list[Evaluation]) -> None:
        """Append records to the JSONL checkpoint, creating it on demand."""
        assert self.path is not None
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        fresh = not os.path.exists(self.path)
        with open(self.path, "a") as f:
            if fresh:
                f.write(
                    json.dumps({"format": self._JSONL_HEADER, "task": self.task})
                    + "\n"
                )
                # First write of this checkpoint: persist everything we
                # hold (covers in-memory records that predate the path).
                records = self._records
            for r in records:
                f.write(json.dumps(r.to_dict()) + "\n")
            f.flush()
            os.fsync(f.fileno())

    # ------------------------------------------------------------------
    @property
    def n_ok(self) -> int:
        """Number of successful records, maintained incrementally.

        The BO loop consults this every iteration (stopping criterion and
        acquisition schedule); the cached counter keeps that O(1) instead
        of an O(N) scan per iteration.
        """
        return self._n_ok

    def ok_records(self) -> list[Evaluation]:
        """Successful evaluations only (the GP training set)."""
        return [r for r in self._records if r.ok]

    def failed_configs(self) -> list[Mapping[str, Any]]:
        """Configurations that failed or timed out (to be avoided)."""
        return [r.config for r in self._records if not r.ok]

    def best(self) -> Evaluation:
        """The successful record with the smallest objective."""
        ok = self.ok_records()
        if not ok:
            raise LookupError("no successful evaluations in database")
        return min(ok, key=lambda r: r.objective)

    def total_cost(self) -> float:
        """Total evaluation wall-clock across all records."""
        return float(sum(r.cost for r in self._records))

    def objectives(self) -> np.ndarray:
        """Objective values of successful records, in insertion order."""
        return np.array([r.objective for r in self._records if r.ok], dtype=float)

    def best_so_far(self) -> np.ndarray:
        """Running minimum over successful evaluations — the series behind
        the paper's Figure 6 progression plots."""
        obj = self.objectives()
        if obj.size == 0:
            return obj
        return np.minimum.accumulate(obj)

    # ------------------------------------------------------------------
    def save(self, path: str | os.PathLike, *, format: str | None = None) -> None:
        """Atomic full snapshot: temp file in the same directory + replace.

        Writes the legacy JSON snapshot by default (backward compatible);
        pass ``format="jsonl"`` for a full rewrite in the append-friendly
        format (useful to compact or convert a checkpoint).
        """
        path = os.fspath(path)
        format = format if format is not None else "json"
        if format not in ("json", "jsonl"):
            raise ValueError("format must be 'json' or 'jsonl'")
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as f:
                if format == "jsonl":
                    f.write(
                        json.dumps({"format": self._JSONL_HEADER, "task": self.task})
                        + "\n"
                    )
                    for r in self._records:
                        f.write(json.dumps(r.to_dict()) + "\n")
                else:
                    payload = {
                        "task": self.task,
                        "records": [r.to_dict() for r in self._records],
                    }
                    json.dump(payload, f)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def load(self, path: str | os.PathLike) -> None:
        """Replace in-memory records with the checkpoint contents.

        Auto-detects the on-disk format: a JSON snapshot parses as one
        document; anything else is treated as JSON Lines, tolerating a
        partial final line (crash mid-append).
        """
        with open(os.fspath(path)) as f:
            text = f.read()
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            payload = None
        if isinstance(payload, dict) and "records" in payload:
            # Legacy single-document snapshot.
            self.task = payload.get("task", self.task)
            self._records = [
                Evaluation.from_dict(d) for d in payload.get("records", [])
            ]
            self._n_ok = sum(1 for r in self._records if r.ok)
            if self.format == "jsonl" and self.path == os.fspath(path):
                # Convert in place so future incremental appends produce a
                # consistent line-oriented file.
                self.save(path, format="jsonl")
            return
        records: list[Evaluation] = []
        lines = text.splitlines()
        if lines and not text.endswith("\n"):
            # Torn final line from a crash mid-append: drop the fragment
            # here and on disk, so the next append starts a fresh line
            # instead of concatenating onto it.
            repair_torn_tail(path)
            lines = lines[:-1]
        for i, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                d = json.loads(line)
            except json.JSONDecodeError:
                if i == len(lines) - 1:
                    continue  # torn final line from a crash mid-append
                raise
            if isinstance(d, dict) and d.get("format") == self._JSONL_HEADER:
                self.task = d.get("task", self.task)
                continue
            records.append(Evaluation.from_dict(d))
        self._records = records
        self._n_ok = sum(1 for r in self._records if r.ok)
