"""Evaluation records, databases, and crash recovery.

GPTune's selling points cited by the paper include *crash recovery* and a
reusable evaluation database for *transfer learning*.  This module provides
both:

:class:`Evaluation`
    one (configuration, objective, cost, status) record,
:class:`EvaluationDatabase`
    an append-only store with atomic JSON checkpointing.  A crashed search
    can be resumed by constructing the optimizer with ``database=`` pointing
    at the checkpoint file — completed evaluations are replayed instead of
    re-run, and failed evaluations are remembered so the search does not
    re-suggest configurations that crash the application.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

import numpy as np

__all__ = ["Evaluation", "EvaluationDatabase", "EvaluationStatus"]


class EvaluationStatus:
    """Status labels for evaluation records."""

    OK = "ok"
    FAILED = "failed"     # objective raised
    TIMEOUT = "timeout"   # exceeded the evaluation timeout (paper: 15 min)

    ALL = (OK, FAILED, TIMEOUT)


def _jsonable(value: Any) -> Any:
    """Coerce numpy scalars to plain Python for JSON serialization."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


@dataclass(frozen=True)
class Evaluation:
    """One objective evaluation.

    Attributes
    ----------
    config:
        The full configuration dict that was evaluated.
    objective:
        Observed objective value (runtime); ``nan`` for failed/timeout runs.
    cost:
        Wall-clock cost of the evaluation in seconds.  Search-time
        accounting (paper Table III "Time" columns) sums these plus the
        modeling overhead.
    status:
        One of :class:`EvaluationStatus`.
    meta:
        Free-form extras (e.g. per-routine runtimes from the TDDFT app).
    """

    config: Mapping[str, Any]
    objective: float
    cost: float = 0.0
    status: str = EvaluationStatus.OK
    meta: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        if self.status not in EvaluationStatus.ALL:
            raise ValueError(f"unknown status {self.status!r}")
        if self.status == EvaluationStatus.OK and not np.isfinite(self.objective):
            raise ValueError("OK evaluations require a finite objective")

    @property
    def ok(self) -> bool:
        return self.status == EvaluationStatus.OK

    def to_dict(self) -> dict[str, Any]:
        return {
            "config": _jsonable(dict(self.config)),
            "objective": _jsonable(self.objective),
            "cost": float(self.cost),
            "status": self.status,
            "meta": _jsonable(dict(self.meta)),
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "Evaluation":
        return cls(
            config=dict(d["config"]),
            objective=float(d["objective"]),
            cost=float(d.get("cost", 0.0)),
            status=d.get("status", EvaluationStatus.OK),
            meta=dict(d.get("meta", {})),
        )


class EvaluationDatabase:
    """Append-only evaluation store with atomic JSON checkpoints.

    Parameters
    ----------
    path:
        Optional checkpoint file.  When given and the file exists, records
        are loaded on construction (crash recovery); every :meth:`append`
        rewrites the checkpoint atomically (write-to-temp + ``os.replace``)
        so a crash mid-write never corrupts the database.
    task:
        Label identifying the tuning task (used by transfer learning to
        select source databases).
    """

    def __init__(self, path: str | os.PathLike | None = None, task: str = "task"):
        self.path = os.fspath(path) if path is not None else None
        self.task = task
        self._records: list[Evaluation] = []
        if self.path and os.path.exists(self.path):
            self.load(self.path)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Evaluation]:
        return iter(self._records)

    def __getitem__(self, i: int) -> Evaluation:
        return self._records[i]

    @property
    def records(self) -> list[Evaluation]:
        return list(self._records)

    # ------------------------------------------------------------------
    def append(self, record: Evaluation) -> None:
        """Add a record and (when a path is set) checkpoint atomically."""
        self._records.append(record)
        if self.path:
            self.save(self.path)

    def extend(self, records: Iterator[Evaluation] | list[Evaluation]) -> None:
        for r in records:
            self._records.append(r)
        if self.path:
            self.save(self.path)

    # ------------------------------------------------------------------
    def ok_records(self) -> list[Evaluation]:
        """Successful evaluations only (the GP training set)."""
        return [r for r in self._records if r.ok]

    def failed_configs(self) -> list[Mapping[str, Any]]:
        """Configurations that failed or timed out (to be avoided)."""
        return [r.config for r in self._records if not r.ok]

    def best(self) -> Evaluation:
        """The successful record with the smallest objective."""
        ok = self.ok_records()
        if not ok:
            raise LookupError("no successful evaluations in database")
        return min(ok, key=lambda r: r.objective)

    def total_cost(self) -> float:
        """Total evaluation wall-clock across all records."""
        return float(sum(r.cost for r in self._records))

    def objectives(self) -> np.ndarray:
        """Objective values of successful records, in insertion order."""
        return np.array([r.objective for r in self._records if r.ok], dtype=float)

    def best_so_far(self) -> np.ndarray:
        """Running minimum over successful evaluations — the series behind
        the paper's Figure 6 progression plots."""
        obj = self.objectives()
        if obj.size == 0:
            return obj
        return np.minimum.accumulate(obj)

    # ------------------------------------------------------------------
    def save(self, path: str | os.PathLike) -> None:
        """Atomic checkpoint: temp file in the same directory + replace."""
        path = os.fspath(path)
        payload = {
            "task": self.task,
            "records": [r.to_dict() for r in self._records],
        }
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as f:
                json.dump(payload, f)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def load(self, path: str | os.PathLike) -> None:
        """Replace in-memory records with the checkpoint contents."""
        with open(os.fspath(path)) as f:
            payload = json.load(f)
        self.task = payload.get("task", self.task)
        self._records = [Evaluation.from_dict(d) for d in payload.get("records", [])]
