"""Transfer learning across tuning tasks.

The paper tunes Case Study 2 "using transfer learning to benefit from Case
Study 1's configuration database" (Section VIII, Figure 6).  GPTune does
this with a linear-coregionalization multitask GP; we implement the widely
used *stacked-GP* equivalent, which preserves the behaviour that matters
here: the source database biases the search toward regions that were good
on the source task, while the target GP corrects the residual.

:class:`TransferLearner` fits a source GP on the source database, then
exposes a ``mean_function`` suitable for
:class:`repro.bo.GaussianProcess` / :class:`repro.bo.BayesianOptimizer`:
the target GP models ``y_target - scale * mu_source`` so that, with zero
target data, predictions fall back to the (scaled) source model, and as
target evidence accumulates the residual GP takes over.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from ..space import SearchSpace
from .gp import GaussianProcess, GPFitError
from .history import EvaluationDatabase
from .kernels import kernel_by_name
from .optimizer import BayesianOptimizer, BOResult, Objective

__all__ = ["TransferLearner", "transfer_bo"]


class TransferLearner:
    """Source-task prior for a target BO search.

    Parameters
    ----------
    space:
        The search space shared by source and target tasks.  Only the
        parameters present in the space are read from the source records,
        so a source database gathered on a superset space still transfers.
    source:
        Evaluation database(s) from previously tuned task(s).
    scale:
        Multiplier applied to the source prediction before it is used as
        the target prior mean.  ``"auto"`` rescales by the ratio of source
        and target objective medians once target data exists; a float pins
        it (1.0 = same machine/workload magnitude).
    """

    def __init__(
        self,
        space: SearchSpace,
        source: EvaluationDatabase | Sequence[EvaluationDatabase],
        *,
        kernel: str = "matern52",
        scale: float | str = 1.0,
        random_state: int | np.random.Generator | None = None,
    ):
        self.space = space
        self.sources = [source] if isinstance(source, EvaluationDatabase) else list(source)
        if not self.sources:
            raise ValueError("transfer learning requires at least one source database")
        self.scale_mode = scale
        self._scale = 1.0 if scale == "auto" else float(scale)
        rng = (
            random_state
            if isinstance(random_state, np.random.Generator)
            else np.random.default_rng(random_state)
        )
        self.source_model = self._fit_source(kernel, rng)

    # ------------------------------------------------------------------
    def _source_data(self) -> tuple[np.ndarray, np.ndarray]:
        configs: list[dict[str, Any]] = []
        values: list[float] = []
        for db in self.sources:
            for rec in db.ok_records():
                if all(name in rec.config for name in self.space.names):
                    configs.append({k: rec.config[k] for k in self.space.names})
                    values.append(rec.objective)
        if not configs:
            raise GPFitError(
                "no source records cover the target space parameters "
                f"{self.space.names}"
            )
        return self.space.encode_batch(configs), np.asarray(values, dtype=float)

    def _fit_source(self, kernel: str, rng: np.random.Generator) -> GaussianProcess:
        X, y = self._source_data()
        gp = GaussianProcess(kernel=kernel_by_name(kernel, self.space.dimension), random_state=rng)
        gp.fit(X, y)
        return gp

    # ------------------------------------------------------------------
    def calibrate(self, target_db: EvaluationDatabase) -> None:
        """Auto-rescale the prior against early target observations."""
        if self.scale_mode != "auto":
            return
        ok = target_db.ok_records()
        if not ok:
            return
        target_med = float(np.median([r.objective for r in ok]))
        X, y = self._source_data()
        source_med = float(np.median(y))
        if source_med > 0 and np.isfinite(target_med):
            self._scale = target_med / source_med

    def mean_function(self, X: np.ndarray) -> np.ndarray:
        """Prior mean for the target GP: scaled source-model prediction."""
        mu = self.source_model.predict(np.atleast_2d(X), return_std=False)
        return self._scale * np.asarray(mu, dtype=float).reshape(-1)

    def suggest_seed_configs(self, n: int) -> list[dict[str, Any]]:
        """The ``n`` best source configurations, decoded into this space.

        Warm-starting the initial design with source winners is the second
        mechanism (besides the prior mean) by which transfer "explores space
        regions that led to good minima" in the source task.
        """
        pairs: list[tuple[float, dict[str, Any]]] = []
        for db in self.sources:
            for rec in db.ok_records():
                if all(name in rec.config for name in self.space.names):
                    cfg = {k: rec.config[k] for k in self.space.names}
                    pairs.append((rec.objective, cfg))
        pairs.sort(key=lambda t: t[0])
        out, seen = [], set()
        for _, cfg in pairs:
            key = tuple(self.space.encode(cfg).tolist())
            if key in seen:
                continue
            seen.add(key)
            if self.space.is_valid(cfg):
                out.append(cfg)
            if len(out) >= n:
                break
        return out


def transfer_bo(
    space: SearchSpace,
    objective: Objective,
    source: EvaluationDatabase | Sequence[EvaluationDatabase],
    *,
    n_seed_from_source: int = 3,
    random_state: int | np.random.Generator | None = None,
    **bo_kwargs: Any,
) -> BOResult:
    """Run a BO search on ``objective`` warm-started from ``source``.

    Combines both transfer mechanisms: source-prior mean function and
    seeding the initial design with the best source configurations.
    """
    rng = (
        random_state
        if isinstance(random_state, np.random.Generator)
        else np.random.default_rng(random_state)
    )
    learner = TransferLearner(space, source, random_state=rng)
    opt = BayesianOptimizer(
        space,
        objective,
        mean_function=learner.mean_function,
        random_state=rng,
        **bo_kwargs,
    )
    # Pre-evaluate the transferred seeds so they land in the database before
    # the LHS design tops it up to n_initial.
    for cfg in learner.suggest_seed_configs(n_seed_from_source):
        rec = opt._evaluate(cfg)
        opt.database.append(rec)
    learner.calibrate(opt.database)
    return opt.run()
