"""Batch (parallel) Bayesian optimization via the constant-liar heuristic.

The paper's Table III notes that "inherent sequentiality made BO slower
than parallelizable Random Search" and cites Ginsbourger et al.'s
parallel-kriging work [17].  This module provides that capability: the
*constant liar* approximation of q-EI — suggest a point, pretend it
returned the incumbent ("lie"), refit, suggest the next — yields a batch
of ``q`` diverse candidates per round that can be evaluated concurrently.

:class:`BatchBayesianOptimizer` mirrors
:class:`repro.bo.BayesianOptimizer`'s interface but evaluates in rounds of
``batch_size``; its simulated search time charges each round at the
*maximum* evaluation cost in the round (the parallel wall-clock), closing
most of the gap to random search while keeping model guidance.
"""

from __future__ import annotations

import numpy as np

from ..space import SearchSpace
from .acquisition import assemble_candidates, score_candidates
from .gp import GaussianProcess, GPFitError
from .kernels import kernel_by_name
from .optimizer import BayesianOptimizer, BOResult, Objective
from .pool import EncodedPool

__all__ = ["BatchBayesianOptimizer"]


class BatchBayesianOptimizer(BayesianOptimizer):
    """Constant-liar batch BO.

    Parameters
    ----------
    batch_size:
        Suggestions per round (``q``); all are evaluated "in parallel"
        (cost accounting: max over the round).
    lie:
        The fantasy value assigned to pending suggestions: ``"min"``
        (optimistic — spreads the batch, the usual choice), ``"mean"``, or
        ``"max"`` (pessimistic — exploits harder).
    """

    def __init__(
        self,
        space: SearchSpace,
        objective: Objective,
        *,
        batch_size: int = 4,
        lie: str = "min",
        **kwargs,
    ):
        super().__init__(space, objective, **kwargs)
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if lie not in ("min", "mean", "max"):
            raise ValueError("lie must be 'min', 'mean', or 'max'")
        self.batch_size = int(batch_size)
        self.lie = lie

    # ------------------------------------------------------------------
    def _lie_value(self, y: np.ndarray) -> float:
        if self.lie == "min":
            return float(np.min(y))
        if self.lie == "max":
            return float(np.max(y))
        return float(np.mean(y))

    def suggest_batch(self) -> list[dict]:
        """One constant-liar round: ``batch_size`` diverse suggestions.

        The surrogate is fit (with MLE) exactly once per round; each liar
        step then absorbs its fantasy observation via an O(N^2) rank-1
        :meth:`GaussianProcess.update` instead of an O(N^3) refit.  All
        members score the *same* encoded candidate matrix, so the GP's
        kernel cross-column cache turns each re-scoring into one extra
        back-substitution row rather than a fresh (N x C) kernel product.
        """
        ok = self.database.ok_records()
        if len(ok) < 2:
            return self.space.sample_batch(self.batch_size, self.rng, unique=True)

        configs = [{k: r.config[k] for k in self.space.names} for r in ok]
        X = self.space.encode_batch(configs)
        y = np.array([r.objective for r in ok], dtype=float)
        incumbent = float(np.min(y))
        incumbent_cfg = configs[int(np.argmin(y))]
        lie = self._lie_value(y)

        gp = GaussianProcess(
            kernel=kernel_by_name(self.kernel_name, self.space.dimension),
            random_state=self.rng,
            n_restarts=1,
        )
        try:
            gp.fit(X, y, optimize=True)
        except GPFitError:
            return [self.space.sample(self.rng) for _ in range(self.batch_size)]

        if self.candidate_pool is not None and len(self.candidate_pool) > 0:
            pool = self.candidate_pool
        else:
            pool = EncodedPool.from_configs(
                self.space,
                assemble_candidates(
                    self.space,
                    self.rng,
                    n_candidates=self.n_candidates,
                    incumbent_config=incumbent_cfg,
                    exclude=configs,
                ),
            )
        Xp = pool.X
        keys = pool.keys
        evaluated = {tuple(c[k] for k in self.space.names) for c in configs}
        taken = np.fromiter(
            (k in evaluated for k in keys), dtype=bool, count=len(keys)
        )

        batch: list[dict] = []
        for _ in range(self.batch_size):
            scores = score_candidates(
                self.acquisition, gp, Xp, incumbent, self.rng
            )
            scores[taken] = -np.inf
            j = int(np.argmax(scores))
            if not np.isfinite(scores[j]):
                # Pool exhausted: pad the round with fresh random samples.
                batch.append(self.space.sample(self.rng))
                continue
            batch.append(dict(pool.configs[j]))
            taken[j] = True
            if len(batch) < self.batch_size:
                try:
                    # The lie: pretend the point already returned `lie`.
                    gp.update(Xp[j : j + 1], np.array([lie]))
                except GPFitError:
                    pass  # keep suggesting from the un-updated surrogate
        return batch

    # ------------------------------------------------------------------
    def run(self) -> BOResult:
        """Run the batched loop; rounds of ``batch_size`` evaluations
        are charged the max member cost (parallel wall-clock)."""
        eval_cost = 0.0
        model_cost = 0.0
        n_new = 0

        if self.tracer is not None:
            for i, rec in enumerate(self.database):
                self._emit_eval(i, rec)

        n_have = len(self.database.ok_records())
        n_seed = max(0, self.n_initial - n_have)
        if n_seed > 0:
            for config in self.space.latin_hypercube(n_seed, self.rng):
                if self.breaker is not None and not self.breaker.allows(config):
                    self.quarantine_skips += 1
                    continue
                rec = self._traced_evaluate(config)
                self._record_failure(rec)
                self.database.append(rec)
                self._emit_eval(len(self.database) - 1, rec)
                n_new += 1
            eval_cost += max(
                (r.cost for r in self.database.records[-n_seed:]), default=0.0
            )

        while len(self.database.ok_records()) < self.max_evaluations:
            room = self.max_evaluations - len(self.database.ok_records())
            batch = self.suggest_batch()[: max(1, min(self.batch_size, room))]
            n = len(self.database.ok_records())
            d = self.space.dimension
            # Simulated ledger: charged as one O(N^3) refit per batch
            # member, matching the paper's full-refit baseline accounting
            # (the real liar loop fits once and rank-1-updates per member).
            model_cost += self.model_unit_cost * len(batch) * (
                n**3 + n * n * d + self.n_candidates * n * d
            )
            round_costs = []
            exhausted = False
            for cfg in batch:
                cfg = self._dequarantine(cfg, self.rng)
                if cfg is None:
                    exhausted = True
                    break
                rec = self._traced_evaluate(cfg)
                self._record_failure(rec)
                self.database.append(rec)
                self._emit_eval(len(self.database) - 1, rec)
                round_costs.append(rec.cost)
                n_new += 1
            # Parallel round: wall-clock is the slowest member.
            eval_cost += max(round_costs, default=0.0)
            if exhausted or n_new > 4 * self.max_evaluations:
                break

        best = self.database.best()
        return BOResult(
            best_config=dict(best.config),
            best_objective=best.objective,
            database=self.database,
            n_evaluations=n_new,
            evaluation_cost=eval_cost,
            modeling_overhead=model_cost,
            meta=self._result_meta(),
        )
