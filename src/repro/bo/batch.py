"""Batch (parallel) Bayesian optimization via the constant-liar heuristic.

The paper's Table III notes that "inherent sequentiality made BO slower
than parallelizable Random Search" and cites Ginsbourger et al.'s
parallel-kriging work [17].  This module provides that capability: the
*constant liar* approximation of q-EI — suggest a point, pretend it
returned the incumbent ("lie"), refit, suggest the next — yields a batch
of ``q`` diverse candidates per round that can be evaluated concurrently.

:class:`BatchBayesianOptimizer` mirrors
:class:`repro.bo.BayesianOptimizer`'s interface but evaluates in rounds of
``batch_size``; its simulated search time charges each round at the
*maximum* evaluation cost in the round (the parallel wall-clock), closing
most of the gap to random search while keeping model guidance.
"""

from __future__ import annotations

import numpy as np

from ..space import SearchSpace
from .acquisition import assemble_candidates, score_candidates
from .gp import GaussianProcess, GPFitError
from .kernels import kernel_by_name
from .optimizer import BayesianOptimizer, BOResult, Objective
from .pool import EncodedPool

__all__ = ["BatchBayesianOptimizer"]


class BatchBayesianOptimizer(BayesianOptimizer):
    """Constant-liar batch BO.

    Parameters
    ----------
    batch_size:
        Suggestions per round (``q``); all are evaluated "in parallel"
        (cost accounting: max over the round).
    lie:
        The fantasy value assigned to pending suggestions: ``"min"``
        (optimistic — spreads the batch, the usual choice), ``"mean"``, or
        ``"max"`` (pessimistic — exploits harder).
    """

    def __init__(
        self,
        space: SearchSpace,
        objective: Objective,
        *,
        batch_size: int = 4,
        lie: str = "min",
        **kwargs,
    ):
        super().__init__(space, objective, **kwargs)
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if lie not in ("min", "mean", "max"):
            raise ValueError("lie must be 'min', 'mean', or 'max'")
        self.batch_size = int(batch_size)
        self.lie = lie

    # ------------------------------------------------------------------
    def _lie_value(self, y: np.ndarray) -> float:
        if self.lie == "min":
            return float(np.min(y))
        if self.lie == "max":
            return float(np.max(y))
        return float(np.mean(y))

    def suggest_batch(
        self,
        rng: np.random.Generator | None = None,
        history: list | None = None,
    ) -> list[dict]:
        """One constant-liar round: ``batch_size`` diverse suggestions.

        The surrogate is fit (with MLE) exactly once per round; each liar
        step then absorbs its fantasy observation via an O(N^2) rank-1
        :meth:`GaussianProcess.update` instead of an O(N^3) refit.  All
        members score the *same* encoded candidate matrix, so the GP's
        kernel cross-column cache turns each re-scoring into one extra
        back-substitution row rather than a fresh (N x C) kernel product.

        ``rng`` defaults to the optimizer's stream-0 generator; the run
        loop passes a per-round generator keyed on the round's database
        position so a killed-and-resumed run replays the identical round
        sequence.  ``history`` (default: the full database) is the
        record prefix the round is conditioned on — the run loop passes
        ``records[:round_start]`` so a round interrupted mid-batch is
        re-suggested from exactly the model state it originally saw.
        """
        rng = rng if rng is not None else self.rng
        history = history if history is not None else self.database.records
        ok = [r for r in history if r.ok]
        if len(ok) < 2:
            return self.space.sample_batch(self.batch_size, rng, unique=True)

        configs = [{k: r.config[k] for k in self.space.names} for r in ok]
        X = self.space.encode_batch(configs)
        y = np.array([r.objective for r in ok], dtype=float)
        incumbent = float(np.min(y))
        incumbent_cfg = configs[int(np.argmin(y))]
        lie = self._lie_value(y)

        gp = GaussianProcess(
            kernel=kernel_by_name(self.kernel_name, self.space.dimension),
            random_state=rng,
            n_restarts=1,
        )
        try:
            gp.fit(X, y, optimize=True)
        except GPFitError:
            return [self.space.sample(rng) for _ in range(self.batch_size)]

        if self.candidate_pool is not None and len(self.candidate_pool) > 0:
            pool = self.candidate_pool
        else:
            pool = EncodedPool.from_configs(
                self.space,
                assemble_candidates(
                    self.space,
                    rng,
                    n_candidates=self.n_candidates,
                    incumbent_config=incumbent_cfg,
                    exclude=configs,
                ),
            )
        Xp = pool.X
        keys = pool.keys
        evaluated = {tuple(c[k] for k in self.space.names) for c in configs}
        taken = np.fromiter(
            (k in evaluated for k in keys), dtype=bool, count=len(keys)
        )

        batch: list[dict] = []
        for _ in range(self.batch_size):
            scores = score_candidates(
                self.acquisition, gp, Xp, incumbent, rng
            )
            scores[taken] = -np.inf
            j = int(np.argmax(scores))
            if not np.isfinite(scores[j]):
                # Pool exhausted: pad the round with fresh random samples.
                batch.append(self.space.sample(rng))
                continue
            batch.append(dict(pool.configs[j]))
            taken[j] = True
            if len(batch) < self.batch_size:
                try:
                    # The lie: pretend the point already returned `lie`.
                    gp.update(Xp[j : j + 1], np.array([lie]))
                except GPFitError:
                    pass  # keep suggesting from the un-updated surrogate
        return batch

    # ------------------------------------------------------------------
    def run(self) -> BOResult:
        """Run the batched loop; rounds of ``batch_size`` evaluations
        are charged the max member cost (parallel wall-clock)."""
        eval_cost = 0.0
        model_cost = 0.0
        n_new = 0

        if self.tracer is not None:
            for i, rec in enumerate(self.database):
                self._emit_eval(i, rec)

        if self.resume and len(self.database) > 0:
            # Restore quarantine state exactly as the sequential loop
            # does: sidecar first, checkpointed failure kinds otherwise.
            if not self._restore_breaker_state():
                for rec in self.database:
                    self._record_failure(rec, persist=False)
                if self.breaker is not None and self.breaker.total_counted:
                    self._persist_breaker()

        # --- initial design (partially replayed under crash recovery) ---
        # Derived from the dedicated init stream, so a resumed run
        # regenerates the identical design and evaluates only the tail —
        # the same discipline as the sequential optimizer.
        if len(self.database) < self.n_initial:
            design = self.space.latin_hypercube(
                self.n_initial,
                np.random.default_rng(self._stream(self._INIT_STREAM)),
            )
            seed_costs = []
            for config in design[len(self.database):]:
                if self.breaker is not None and not self.breaker.allows(config):
                    self.quarantine_skips += 1
                    continue
                rec = self._traced_evaluate(config)
                self._record_failure(rec)
                self.database.append(rec)
                self._emit_eval(len(self.database) - 1, rec)
                seed_costs.append(rec.cost)
                n_new += 1
            # Seed round is embarrassingly parallel: charge the max.
            eval_cost += max(seed_costs, default=0.0)

        # --- batched rounds (replayed deterministically under resume) ---
        # Rounds are a pure function of the record prefix they started
        # from: each round draws its generator from the round-start
        # position and conditions its surrogate on ``records[:cursor]``.
        # A resumed run therefore re-derives the same round boundaries,
        # skips members the checkpoint already holds, and evaluates only
        # the missing tail — bit-identical to an uninterrupted run even
        # when the kill landed mid-round.
        records = self.database.records
        cursor = min(len(records), self.n_initial)
        exhausted = False
        while not exhausted:
            prefix = records[:cursor]
            n_ok = sum(1 for r in prefix if r.ok)
            if n_ok >= self.max_evaluations:
                break
            room = self.max_evaluations - n_ok
            round_len = max(1, min(self.batch_size, room))
            if cursor + round_len <= len(records):
                # Fully checkpointed round: advance without refitting.
                cursor += round_len
                continue
            rng = self._iter_rng(cursor)
            batch = self.suggest_batch(rng, history=prefix)[:round_len]
            n = n_ok
            d = self.space.dimension
            # Simulated ledger: charged as one O(N^3) refit per batch
            # member, matching the paper's full-refit baseline accounting
            # (the real liar loop fits once and rank-1-updates per member).
            model_cost += self.model_unit_cost * len(batch) * (
                n**3 + n * n * d + self.n_candidates * n * d
            )
            round_costs = []
            for cfg in batch:
                if cursor < len(records):
                    # Member already evaluated before the crash.
                    cursor += 1
                    continue
                cfg = self._dequarantine(cfg, rng)
                if cfg is None:
                    exhausted = True
                    break
                rec = self._traced_evaluate(cfg)
                self._record_failure(rec)
                self.database.append(rec)
                records.append(rec)
                cursor += 1
                self._emit_eval(len(self.database) - 1, rec)
                round_costs.append(rec.cost)
                n_new += 1
            # Parallel round: wall-clock is the slowest member.
            eval_cost += max(round_costs, default=0.0)
            if n_new > 4 * self.max_evaluations:
                break

        best = self.database.best()
        return BOResult(
            best_config=dict(best.config),
            best_objective=best.objective,
            database=self.database,
            n_evaluations=n_new,
            evaluation_cost=eval_cost,
            modeling_overhead=model_cost,
            meta=self._result_meta(),
        )
