"""Bayesian-optimization substrate (the GPTune stand-in).

Self-contained BO engine: Gaussian-process surrogates with MLE-fit ARD
kernels, the standard acquisition functions, constraint-aware candidate
generation, crash-recoverable evaluation databases, and stacked-GP transfer
learning.
"""

from .acquisition import (
    AcquisitionFunction,
    ExpectedImprovement,
    LowerConfidenceBound,
    ProbabilityOfImprovement,
    ThompsonSampling,
    acquisition_by_name,
    maximize_acquisition,
    score_candidates,
)
from .batch import BatchBayesianOptimizer
from .pool import EncodedPool, SharedMatrix
from .gp import GaussianProcess, GPFitError
from .highdim import AdditiveBO, DropoutBO, RandomEmbeddingBO
from .history import Evaluation, EvaluationDatabase, EvaluationStatus
from .kernels import RBF, Kernel, Matern32, Matern52, kernel_by_name
from .optimizer import BayesianOptimizer, BOResult
from .transfer import TransferLearner, transfer_bo

__all__ = [
    "Kernel",
    "RBF",
    "Matern32",
    "Matern52",
    "kernel_by_name",
    "GaussianProcess",
    "GPFitError",
    "AcquisitionFunction",
    "ExpectedImprovement",
    "ProbabilityOfImprovement",
    "LowerConfidenceBound",
    "ThompsonSampling",
    "acquisition_by_name",
    "maximize_acquisition",
    "score_candidates",
    "EncodedPool",
    "SharedMatrix",
    "Evaluation",
    "EvaluationDatabase",
    "EvaluationStatus",
    "BayesianOptimizer",
    "BatchBayesianOptimizer",
    "RandomEmbeddingBO",
    "DropoutBO",
    "AdditiveBO",
    "BOResult",
    "TransferLearner",
    "transfer_bo",
]
