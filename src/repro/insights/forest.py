"""Decision-tree and random-forest regressors, implemented from scratch.

The paper's feature-importance analysis "leverag[es] Random Forest trees";
scikit-learn is not a dependency of this reproduction, so this module
provides a compact CART implementation with the two pieces the methodology
consumes:

* :class:`RandomForestRegressor.feature_importances_` — mean-decrease-in-
  impurity (variance-reduction) importances, normalized to sum to 1, and
* out-of-bag R^2 (:attr:`RandomForestRegressor.oob_score_`) so the caller
  can judge whether the model is trustworthy before acting on importances
  (the paper's caution about "interpreting results made on top of data
  samples").

Implementation notes (per the HPC-Python guidelines): split search is
vectorized — for each feature the candidate thresholds are evaluated with
cumulative-sum prefix statistics in O(n log n) (sort) + O(n) (scan) rather
than an O(n^2) Python loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DecisionTreeRegressor", "RandomForestRegressor"]


@dataclass
class _Node:
    """Tree node; leaves carry a prediction, internal nodes a split."""

    prediction: float
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _best_split_for_feature(
    x: np.ndarray, y: np.ndarray, min_leaf: int
) -> tuple[float, float]:
    """Best (impurity_decrease, threshold) splitting on one feature.

    Uses prefix sums over the sort order: for a split after position k,
    ``SSE_total - SSE_left - SSE_right`` reduces to a closed form in the
    cumulative sums of ``y`` and ``y^2``.
    """
    order = np.argsort(x, kind="stable")
    xs, ys = x[order], y[order]
    n = xs.shape[0]
    csum = np.cumsum(ys)
    csum2 = np.cumsum(ys * ys)
    total_sum, total_sum2 = csum[-1], csum2[-1]

    ks = np.arange(min_leaf, n - min_leaf + 1)
    if ks.size == 0:
        return 0.0, 0.0
    left_n = ks.astype(float)
    right_n = n - left_n
    left_sum = csum[ks - 1]
    left_sum2 = csum2[ks - 1]
    right_sum = total_sum - left_sum
    right_sum2 = total_sum2 - left_sum2

    sse_left = left_sum2 - left_sum * left_sum / left_n
    sse_right = right_sum2 - right_sum * right_sum / right_n
    sse_total = total_sum2 - total_sum * total_sum / n
    gains = sse_total - (sse_left + sse_right)

    # A split is only real where consecutive x values differ.
    distinct = xs[ks - 1] < xs[np.minimum(ks, n - 1)]
    gains = np.where(distinct, gains, -np.inf)
    best = int(np.argmax(gains))
    if not np.isfinite(gains[best]) or gains[best] <= 1e-12:
        return 0.0, 0.0
    k = ks[best]
    threshold = 0.5 * (xs[k - 1] + xs[k])
    return float(gains[best]), float(threshold)


class DecisionTreeRegressor:
    """CART regression tree with variance-reduction splits.

    Parameters
    ----------
    max_depth:
        Depth cap (``None`` = unbounded).
    min_samples_split / min_samples_leaf:
        Pre-pruning controls.
    max_features:
        Features considered per split: ``None`` (all), an int, or
        ``"sqrt"`` / ``"third"`` (the forest default).
    """

    def __init__(
        self,
        *,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = None,
        random_state: int | np.random.Generator | None = None,
    ):
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = int(min_samples_split)
        self.min_samples_leaf = int(min_samples_leaf)
        self.max_features = max_features
        self.rng = (
            random_state
            if isinstance(random_state, np.random.Generator)
            else np.random.default_rng(random_state)
        )
        self._root: _Node | None = None
        self._n_features = 0
        self._importances: np.ndarray | None = None

    # ------------------------------------------------------------------
    def _n_split_features(self) -> int:
        mf = self.max_features
        if mf is None:
            return self._n_features
        if mf == "sqrt":
            return max(1, int(np.sqrt(self._n_features)))
        if mf == "third":
            return max(1, self._n_features // 3)
        return max(1, min(int(mf), self._n_features))

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).reshape(-1)
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y disagree on sample count")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on zero samples")
        self._n_features = X.shape[1]
        self._importances = np.zeros(self._n_features)
        self._root = self._build(X, y, depth=0)
        total = self._importances.sum()
        if total > 0:
            self._importances /= total
        return self

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(prediction=float(np.mean(y)))
        n = y.shape[0]
        if (
            n < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or np.ptp(y) < 1e-15
        ):
            return node

        k = self._n_split_features()
        features = (
            np.arange(self._n_features)
            if k >= self._n_features
            else self.rng.choice(self._n_features, size=k, replace=False)
        )
        best_gain, best_feat, best_thr = 0.0, -1, 0.0
        for f in features:
            gain, thr = _best_split_for_feature(X[:, f], y, self.min_samples_leaf)
            if gain > best_gain:
                best_gain, best_feat, best_thr = gain, int(f), thr
        if best_feat < 0:
            return node

        mask = X[:, best_feat] <= best_thr
        self._importances[best_feat] += best_gain
        node.feature = best_feat
        node.threshold = best_thr
        node.left = self._build(X[mask], y[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], depth + 1)
        return node

    # ------------------------------------------------------------------
    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("predict() before fit()")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        out = np.empty(X.shape[0])
        # Iterative descent per sample; trees are shallow so this is cheap
        # relative to the objective evaluations that produced the data.
        for i in range(X.shape[0]):
            node = self._root
            while not node.is_leaf:
                node = node.left if X[i, node.feature] <= node.threshold else node.right
            out[i] = node.prediction
        return out

    @property
    def feature_importances_(self) -> np.ndarray:
        if self._importances is None:
            raise RuntimeError("feature_importances_ before fit()")
        return self._importances.copy()

    def depth(self) -> int:
        """Actual depth of the fitted tree."""

        def d(node: _Node | None) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(d(node.left), d(node.right))

        if self._root is None:
            raise RuntimeError("depth() before fit()")
        return d(self._root)


class RandomForestRegressor:
    """Bagged ensemble of CART trees with MDI importances and OOB R^2.

    Parameters follow the scikit-learn names the paper's workflow implies.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        *,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = "third",
        bootstrap: bool = True,
        random_state: int | np.random.Generator | None = None,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = int(n_estimators)
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bool(bootstrap)
        self.rng = (
            random_state
            if isinstance(random_state, np.random.Generator)
            else np.random.default_rng(random_state)
        )
        self.trees_: list[DecisionTreeRegressor] = []
        self._importances: np.ndarray | None = None
        self.oob_score_: float | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).reshape(-1)
        n, d = X.shape
        if n != y.shape[0]:
            raise ValueError("X and y disagree on sample count")
        self.trees_ = []
        importances = np.zeros(d)
        oob_pred = np.zeros(n)
        oob_count = np.zeros(n)

        for _ in range(self.n_estimators):
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=self.rng,
            )
            if self.bootstrap:
                idx = self.rng.integers(0, n, size=n)
            else:
                idx = np.arange(n)
            tree.fit(X[idx], y[idx])
            self.trees_.append(tree)
            importances += tree.feature_importances_
            if self.bootstrap:
                oob = np.setdiff1d(np.arange(n), idx, assume_unique=False)
                if oob.size:
                    oob_pred[oob] += tree.predict(X[oob])
                    oob_count[oob] += 1

        self._importances = importances / self.n_estimators
        total = self._importances.sum()
        if total > 0:
            self._importances = self._importances / total

        if self.bootstrap:
            covered = oob_count > 0
            if covered.sum() >= 2 and np.var(y[covered]) > 0:
                pred = oob_pred[covered] / oob_count[covered]
                ss_res = float(np.sum((y[covered] - pred) ** 2))
                ss_tot = float(np.sum((y[covered] - np.mean(y[covered])) ** 2))
                self.oob_score_ = 1.0 - ss_res / ss_tot
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self.trees_:
            raise RuntimeError("predict() before fit()")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        acc = np.zeros(X.shape[0])
        for tree in self.trees_:
            acc += tree.predict(X)
        return acc / len(self.trees_)

    @property
    def feature_importances_(self) -> np.ndarray:
        if self._importances is None:
            raise RuntimeError("feature_importances_ before fit()")
        return self._importances.copy()
