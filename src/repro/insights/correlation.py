"""Correlation analyses over evaluation samples (paper Section IV-B).

The paper uses Pearson correlation to reveal linear relationships between
parameters ("threadblock size and active threadblocks per SM exhibit around
0.6 correlation due to the maximum number of active threads allowed per
SM") and notes that "more intricate analyses like partial correlation
exist, [but] they require larger samples" — both are provided here, with
the one-in-ten-rule sample check living in :mod:`repro.insights.importance`.

All functions operate on a plain ``(n_samples, n_features)`` design matrix
plus feature names, which :func:`design_matrix` builds from configuration
dicts via the space's unit encoding (so Ordinal/Categorical parameters are
handled consistently).
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from ..space import SearchSpace

__all__ = [
    "design_matrix",
    "pearson_matrix",
    "pearson_with_target",
    "partial_correlation_matrix",
    "correlated_pairs",
]


def design_matrix(
    space: SearchSpace, configs: Sequence[Mapping[str, Any]]
) -> tuple[np.ndarray, list[str]]:
    """Encode configurations into an ``(n, d)`` unit-cube design matrix."""
    if not configs:
        raise ValueError("need at least one configuration")
    return space.encode_batch(configs), space.names


def _standardize(X: np.ndarray) -> np.ndarray:
    Xc = X - X.mean(axis=0, keepdims=True)
    sd = Xc.std(axis=0, keepdims=True)
    sd[sd < 1e-12] = 1.0  # constant columns -> zero correlation, not NaN
    return Xc / sd


def pearson_matrix(X: np.ndarray) -> np.ndarray:
    """Pairwise Pearson correlation of the columns of ``X`` -> ``(d, d)``.

    Constant columns yield zero off-diagonal correlation (instead of NaN),
    and the diagonal is exactly 1.
    """
    X = np.atleast_2d(np.asarray(X, dtype=float))
    n = X.shape[0]
    if n < 2:
        raise ValueError("Pearson correlation needs at least 2 samples")
    Z = _standardize(X)
    C = (Z.T @ Z) / n
    np.fill_diagonal(C, 1.0)
    return np.clip(C, -1.0, 1.0)


def pearson_with_target(X: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Correlation of each column of ``X`` with the target ``y`` ->
    ``(d,)``."""
    X = np.atleast_2d(np.asarray(X, dtype=float))
    y = np.asarray(y, dtype=float).reshape(-1)
    if X.shape[0] != y.shape[0]:
        raise ValueError("X and y disagree on sample count")
    if X.shape[0] < 2:
        raise ValueError("Pearson correlation needs at least 2 samples")
    Zx = _standardize(X)
    yc = y - y.mean()
    sd = y.std()
    if sd < 1e-12:
        return np.zeros(X.shape[1])
    zy = yc / sd
    return np.clip((Zx.T @ zy) / X.shape[0], -1.0, 1.0)


def partial_correlation_matrix(X: np.ndarray, *, shrinkage: float = 1e-6) -> np.ndarray:
    """Partial correlations via the inverse correlation (precision) matrix.

    ``rho_ij.rest = -P_ij / sqrt(P_ii P_jj)`` where ``P = C^{-1}``.  A small
    ridge ``shrinkage`` keeps the inversion stable when n_samples is close
    to n_features — the "requires larger samples" caveat the paper raises.
    """
    C = pearson_matrix(X)
    d = C.shape[0]
    P = np.linalg.inv(C + shrinkage * np.eye(d))
    denom = np.sqrt(np.outer(np.diag(P), np.diag(P)))
    R = -P / denom
    np.fill_diagonal(R, 1.0)
    return np.clip(R, -1.0, 1.0)


def correlated_pairs(
    X: np.ndarray,
    names: Sequence[str],
    *,
    threshold: float = 0.5,
) -> list[tuple[str, str, float]]:
    """Feature pairs with ``|pearson| >= threshold``, strongest first.

    This is the analysis that surfaces the paper's (tb, tb_sm) ~ 0.6
    coupling induced by the occupancy constraint, "suggesting grouping them
    on the same search".
    """
    names = list(names)
    C = pearson_matrix(X)
    if C.shape[0] != len(names):
        raise ValueError("names length must match feature count")
    out = []
    for i in range(len(names)):
        for j in range(i + 1, len(names)):
            if abs(C[i, j]) >= threshold:
                out.append((names[i], names[j], float(C[i, j])))
    out.sort(key=lambda t: -abs(t[2]))
    return out
