"""Statistical insight substrate (paper Section IV-B).

Sensitivity analysis, Pearson/partial correlation, from-scratch random
forests for feature importance, and the one-in-ten sample-sufficiency rule.
"""

from .correlation import (
    correlated_pairs,
    design_matrix,
    partial_correlation_matrix,
    pearson_matrix,
    pearson_with_target,
)
from .forest import DecisionTreeRegressor, RandomForestRegressor
from .importance import (
    ParameterInsights,
    analyze_parameters,
    one_in_ten_ok,
    required_samples,
)
from .orthogonality import (
    OrthogonalityResult,
    PairwiseOrthogonalityAnalysis,
    observation_cost,
    sensitivity_observation_cost,
)
from .phase1 import (
    MeasureTask,
    Phase1Evaluator,
    Phase1Log,
    Phase1Observation,
    ProfiledMeasurer,
    TargetMeasurer,
    project_observations,
)
from .sensitivity import SensitivityAnalysis, SensitivityResult

__all__ = [
    "SensitivityAnalysis",
    "SensitivityResult",
    "MeasureTask",
    "Phase1Observation",
    "Phase1Log",
    "TargetMeasurer",
    "ProfiledMeasurer",
    "Phase1Evaluator",
    "project_observations",
    "PairwiseOrthogonalityAnalysis",
    "OrthogonalityResult",
    "observation_cost",
    "sensitivity_observation_cost",
    "pearson_matrix",
    "pearson_with_target",
    "partial_correlation_matrix",
    "correlated_pairs",
    "design_matrix",
    "DecisionTreeRegressor",
    "RandomForestRegressor",
    "ParameterInsights",
    "analyze_parameters",
    "one_in_ten_ok",
    "required_samples",
]
