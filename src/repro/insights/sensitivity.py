"""Sensitivity analysis (paper Section IV-B, used twice by the methodology).

Quantifies "the impact of a parameter on the runtime": establish one
baseline configuration, apply ``V`` individual variations to each parameter
(one-at-a-time, all others held at baseline), and score

.. math::

   s(p, r) = \\frac{1}{V} \\sum_{i=1}^{V}
             \\left| \\frac{t_{baseline} - t_i}{t_{baseline}} \\right|

per (parameter ``p``, target ``r``) pair.  Targets are routine runtimes
(or any scalar observable); evaluating all targets at one configuration
costs a single application run, which is why this analysis needs only
``1 + V x |parameters|`` observations — the paper's "cost-effective"
replacement for orthogonality analyses that need combinatorially many.

Variation strategies (``mode``):

``"relative"`` (paper default)
    value_i = value_{i-1} * (1 + variation), clipped to the domain —
    "increasing the variable value by 10% relative to the preceding
    iteration".  Zero baselines step by ``variation`` x domain-span / 10.
``"random"``
    independent uniform redraws of the parameter (the expert-suggested
    variation set of the RT-TDDFT study is closer to this).
``"unit"``
    compounding steps in the parameter's unit encoding (bound-safe for
    heavily skewed domains).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from ..core.routine import RoutineSet
from ..space import Categorical, Integer, Ordinal, Parameter, Real, SearchSpace
from .phase1 import (
    MeasureTask,
    Phase1Evaluator,
    Phase1Observation,
    ProfiledMeasurer,
    TargetMeasurer,
)

__all__ = ["SensitivityAnalysis", "SensitivityResult"]

_MODES = ("relative", "random", "unit")


@dataclass
class SensitivityResult:
    """Outcome of one sensitivity analysis.

    Attributes
    ----------
    baseline:
        The baseline configuration.
    baseline_values:
        Target values at the baseline.
    scores:
        ``{target: {parameter: variability}}`` — the influence scores that
        phase 2 of the methodology turns into DAG edges.
    n_evaluations:
        Number of distinct application configurations evaluated (the cost
        figure the paper's "reduces the required observations" claims are
        about).  Includes re-measurements of failed variation runs.
    warnings:
        Human-readable degradation notes: variation measurements that
        failed (raised or returned non-finite) even after one re-measure
        and were imputed at the mean of the surviving variations.  Empty
        for a clean analysis.
    """

    baseline: dict[str, Any]
    baseline_values: dict[str, float]
    scores: dict[str, dict[str, float]]
    n_evaluations: int
    warnings: list[str] = field(default_factory=list)

    def top(self, target: str, k: int = 10) -> list[tuple[str, float]]:
        """The ``k`` most influential parameters for ``target``
        (descending) — the paper's Tables II/V/VI rows."""
        items = sorted(self.scores[target].items(), key=lambda kv: -kv[1])
        return items[:k]

    def score(self, parameter: str, target: str) -> float:
        return self.scores[target][parameter]

    @property
    def targets(self) -> list[str]:
        return list(self.scores)

    @property
    def parameters(self) -> list[str]:
        first = next(iter(self.scores.values()), {})
        return list(first)

    def as_matrix(self) -> tuple[np.ndarray, list[str], list[str]]:
        """Scores as an array ``(n_targets, n_parameters)`` + row/col
        labels."""
        targets = self.targets
        params = self.parameters
        M = np.array(
            [[self.scores[t][p] for p in params] for t in targets], dtype=float
        )
        return M, targets, params

    def to_dict(self) -> dict:
        """JSON-compatible representation (for analysis checkpointing)."""
        out = {
            "baseline": dict(self.baseline),
            "baseline_values": dict(self.baseline_values),
            "scores": {t: dict(ps) for t, ps in self.scores.items()},
            "n_evaluations": self.n_evaluations,
        }
        if self.warnings:
            out["warnings"] = list(self.warnings)
        return out

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "SensitivityResult":
        """Inverse of :meth:`to_dict` (``warnings`` optional, so
        checkpoints written before degradation tracking still load)."""
        return cls(
            baseline=dict(d["baseline"]),
            baseline_values={k: float(v) for k, v in d["baseline_values"].items()},
            scores={t: {p: float(s) for p, s in ps.items()}
                    for t, ps in d["scores"].items()},
            n_evaluations=int(d["n_evaluations"]),
            warnings=list(d.get("warnings", [])),
        )

    def format_table(self, k: int = 10) -> str:
        """Human-readable top-``k`` table per target (Tables II/V/VI
        style)."""
        lines = []
        for t in self.targets:
            lines.append(f"== {t} ==")
            lines.append(f"{'Feature':<16} Variability")
            for p, s in self.top(t, k):
                lines.append(f"{p:<16} {100.0 * s:8.2f}%")
            lines.append("")
        return "\n".join(lines)


class SensitivityAnalysis:
    """One-at-a-time sensitivity analysis over a search space.

    Parameters
    ----------
    space:
        Defines domains and validity; variations that leave the feasible
        region are clipped (numeric) or skipped (when constraints reject
        the varied configuration entirely).
    targets:
        ``{name: objective}`` scalar observables, each evaluated on a full
        configuration.  Use :meth:`from_routines` to build targets from a
        :class:`repro.core.RoutineSet`.
    n_variations:
        The paper's ``V`` (100 for the synthetic study, 5 for RT-TDDFT).
    variation:
        Relative step size (0.10 = the paper's 10%).
    mode:
        Variation strategy; see module docstring.
    """

    def __init__(
        self,
        space: SearchSpace,
        targets: Mapping[str, Callable[[Mapping[str, Any]], float]],
        *,
        n_variations: int = 5,
        variation: float = 0.10,
        mode: str = "relative",
        random_state: int | np.random.Generator | None = None,
    ):
        if not targets:
            raise ValueError("sensitivity analysis needs at least one target")
        if n_variations < 1:
            raise ValueError("n_variations must be >= 1")
        if variation <= 0:
            raise ValueError("variation must be positive")
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}")
        self.space = space
        self.targets = dict(targets)
        self.n_variations = int(n_variations)
        self.variation = float(variation)
        self.mode = mode
        self.rng = (
            random_state
            if isinstance(random_state, np.random.Generator)
            else np.random.default_rng(random_state)
        )
        #: Set by :meth:`from_routines` when profiled measurement applies.
        self.routines: RoutineSet | None = None

    @classmethod
    def from_routines(
        cls,
        space: SearchSpace,
        routines: RoutineSet,
        *,
        profiled: bool = True,
        **kwargs: Any,
    ) -> "SensitivityAnalysis":
        """Build with one target per routine (the phase-1 configuration of
        the methodology).

        When the routine set carries a profiler (one application run
        yields all routine timings) and ``profiled`` is left on, the
        analysis measures every target from a **single** profiled run per
        configuration — ``1 + V x d`` application runs instead of ``t x``
        that — with the per-target retry/imputation semantics preserved.
        ``profiled=False`` forces the legacy one-call-per-target path.
        """
        targets = {r.name: r.objective for r in routines}
        inst = cls(space, targets, **kwargs)
        if profiled and routines.has_profiler:
            inst.routines = routines
        return inst

    # ------------------------------------------------------------------
    def _variation_values(self, param: Parameter, base_value: Any) -> list[Any]:
        """The V varied values of one parameter (others at baseline)."""
        vals: list[Any] = []
        if self.mode == "random" or isinstance(param, Categorical):
            for _ in range(self.n_variations):
                v = param.sample(self.rng)
                if v == base_value:
                    v = param.perturb(base_value, self.variation, self.rng)
                vals.append(v)
            return vals

        if self.mode == "unit":
            current = base_value
            for _ in range(self.n_variations):
                current = param.perturb(current, self.variation, self.rng)
                vals.append(current)
            return vals

        # mode == "relative": multiplicative compounding on the raw value.
        if isinstance(param, Real):
            current = float(base_value)
            if current == 0.0:
                current = self.variation * (param.high - param.low) / 10.0
            for _ in range(self.n_variations):
                current = current * (1.0 + self.variation)
                vals.append(float(np.clip(current, param.low, param.high)))
            return vals
        if isinstance(param, Integer):
            current = float(base_value)
            if current == 0.0:
                current = max(1.0, self.variation * (param.high - param.low) / 10.0)
            for _ in range(self.n_variations):
                current = current * (1.0 + self.variation)
                nxt = int(np.clip(round(current), param.low, param.high))
                if nxt == (vals[-1] if vals else base_value):
                    neigh = param.neighbors(nxt)
                    ups = [n for n in neigh if n > nxt]
                    nxt = ups[0] if ups else nxt
                vals.append(nxt)
            return vals
        if isinstance(param, Ordinal):
            # Walk up the grid one step per variation, wrapping at the top
            # back toward the bottom so all V variations are distinct moves.
            idx = param.values.index(base_value)
            out = []
            for j in range(1, self.n_variations + 1):
                out.append(param.values[(idx + j) % len(param.values)])
            return out
        # Unknown parameter type: fall back to unit-space perturbation.
        current = base_value
        for _ in range(self.n_variations):
            current = param.perturb(current, self.variation, self.rng)
            vals.append(current)
        return vals

    # ------------------------------------------------------------------
    def run_averaged(
        self,
        n_baselines: int,
        baselines: Sequence[Mapping[str, Any]] | None = None,
        *,
        evaluator: Phase1Evaluator | None = None,
    ) -> SensitivityResult:
        """Run the analysis from several baselines and average the scores.

        One-at-a-time sensitivity from a single random baseline is a
        high-variance estimator (a lucky baseline can over- or understate
        a parameter); averaging over ``n_baselines`` independent baselines
        multiplies the observation cost but stabilizes the influence
        ranking the planner's drop decisions depend on.

        An ``evaluator`` is shared by all per-baseline runs (labels
        ``sensitivity-b0``, ``sensitivity-b1``, ...), so each baseline's
        observation log resumes independently.
        """
        if n_baselines < 1:
            raise ValueError("n_baselines must be >= 1")
        if baselines is not None and len(baselines) != n_baselines:
            raise ValueError("baselines length must equal n_baselines")
        results = [
            self.run(
                baselines[i] if baselines is not None else None,
                evaluator=evaluator,
                label=f"sensitivity-b{i}",
            )
            for i in range(n_baselines)
        ]
        first = results[0]
        avg: dict[str, dict[str, float]] = {}
        for t in first.scores:
            avg[t] = {
                p: float(np.mean([r.scores[t][p] for r in results]))
                for p in first.scores[t]
            }
        merged_warnings: list[str] = []
        for i, r in enumerate(results):
            merged_warnings.extend(f"baseline {i}: {w}" for w in r.warnings)
        return SensitivityResult(
            baseline=first.baseline,
            baseline_values=first.baseline_values,
            scores=avg,
            n_evaluations=sum(r.n_evaluations for r in results),
            warnings=merged_warnings,
        )

    # ------------------------------------------------------------------
    # Plan -> evaluate -> assemble
    # ------------------------------------------------------------------
    def plan(
        self, baseline: Mapping[str, Any] | None = None
    ) -> tuple[dict[str, Any], list[MeasureTask]]:
        """Plan every configuration the analysis needs to measure.

        Task 0 is the baseline; the rest are the (feasible) one-at-a-time
        variations in parameter order.  Planning consumes *all* of the
        analysis's random state — the baseline sample, variation values,
        and random-mode redraws of infeasible variations — exactly as the
        pre-engine interleaved loop did, so evaluation is free to run out
        of order (process pools) or resume from a log without perturbing
        any random stream.
        """
        base = dict(baseline) if baseline is not None else self.space.sample(self.rng)
        self.space.validate(base)
        tasks = [MeasureTask(0, "baseline", None, dict(base))]
        for param in self.space.parameters:
            for v in self._variation_values(param, base[param.name]):
                cfg = dict(base)
                cfg[param.name] = v
                if not self.space.is_valid(cfg):
                    # Constraint-violating variation.  In random mode an
                    # expert would simply propose a different valid value;
                    # retry a few redraws before giving up on this slot.
                    if self.mode == "random":
                        for _ in range(20):
                            cfg[param.name] = param.sample(self.rng)
                            if cfg[param.name] != base[param.name] and self.space.is_valid(cfg):
                                break
                        else:
                            continue
                    else:
                        continue  # deterministic sequence: skip this step
                tasks.append(
                    MeasureTask(len(tasks), "variation", param.name, cfg)
                )
        return base, tasks

    def measurer(self):
        """The measurer matching this analysis's configuration.

        Profiled (one application run observes every target) when
        :meth:`from_routines` attached a profiler-carrying routine set;
        otherwise the legacy one-objective-call-per-target path, which
        issues its calls in exactly the order the pre-engine loop did.
        """
        if self.routines is not None:
            return ProfiledMeasurer(self.routines)
        return TargetMeasurer(self.targets)

    def run(
        self,
        baseline: Mapping[str, Any] | None = None,
        *,
        evaluator: Phase1Evaluator | None = None,
        label: str = "sensitivity",
    ) -> SensitivityResult:
        """Execute the analysis.

        ``baseline`` defaults to a random feasible configuration
        ("a baseline configuration was randomly selected").

        ``evaluator`` controls *how* the planned configurations are
        measured: in parallel, resumably (append-only observation log
        under ``label``), and with telemetry — see
        :class:`repro.insights.Phase1Evaluator`.  ``None`` measures
        sequentially in-process.  Results are identical either way for
        deterministic targets: planning consumes all random state first.

        Failed variation measurements (exceptions or non-finite values)
        degrade gracefully: each is re-measured once, and slots that fail
        twice are imputed at the mean of the surviving variations for
        that (parameter, target) pair — recorded in
        :attr:`SensitivityResult.warnings` — instead of poisoning the
        influence scores with NaN or aborting the whole
        ``1 + V x d``-observation analysis.
        """
        base, tasks = self.plan(baseline)
        if evaluator is None:
            evaluator = Phase1Evaluator()
        observations = evaluator.run(tasks, self.measurer(), label=label)
        return self._assemble(base, tasks, observations)

    def _assemble(
        self,
        base: dict[str, Any],
        tasks: Sequence[MeasureTask],
        observations: Mapping[int, Phase1Observation],
    ) -> SensitivityResult:
        """Turn raw observations back into a :class:`SensitivityResult`.

        Reproduces the pre-engine bookkeeping exactly: warning order
        (baseline failures in target order; per-variation failures with
        targets innermost; imputation notes per parameter last),
        ``n_evaluations`` (one per measured configuration plus
        re-measurements), and the imputed/zeroed score rules.
        """
        warns: list[str] = []
        base_obs = observations[0]
        n_evals = 1 + base_obs.extra_runs
        base_vals: dict[str, float] = {}
        for name in self.targets:
            y = base_obs.values.get(name)
            if y is None:
                warns.append(
                    f"baseline[{name}]: measurement failed twice "
                    f"({base_obs.errors.get(name, '')})"
                )
                # No baseline -> no denominator for any relative delta of
                # this target; degradation cannot help here.
                raise RuntimeError(
                    f"baseline measurement of target {name!r} failed twice; "
                    "sensitivity analysis needs a finite baseline"
                )
            base_vals[name] = y

        by_param: dict[str, list[Phase1Observation]] = {}
        for task in tasks[1:]:
            by_param.setdefault(task.param, []).append(observations[task.index])

        scores: dict[str, dict[str, float]] = {t: {} for t in self.targets}
        for param in self.space.parameters:
            deltas: dict[str, list[float]] = {t: [] for t in self.targets}
            failed: dict[str, int] = {t: 0 for t in self.targets}
            for obs in by_param.get(param.name, ()):
                n_evals += 1 + obs.extra_runs
                for t in self.targets:
                    y = obs.values.get(t)
                    if y is None:
                        warns.append(
                            f"{t}/{param.name}: measurement failed twice "
                            f"({obs.errors.get(t, '')})"
                        )
                        failed[t] += 1
                        continue
                    denom = base_vals[t]
                    if abs(denom) < 1e-12:
                        denom = 1e-12 if denom >= 0 else -1e-12
                    deltas[t].append(abs((denom - y) / denom))
            for t in self.targets:
                # Mean over the *attempted* V variations: skipped
                # (infeasible) variations contribute zero, which matches
                # treating them as "no observable change within budget".
                # Twice-failed slots are imputed at the mean of the
                # surviving variations so a flaky node neither zeroes nor
                # NaNs the influence score.
                d = deltas[t]
                total = float(np.sum(d))
                if failed[t] and d:
                    total += failed[t] * float(np.mean(d))
                    warns.append(
                        f"{t}/{param.name}: imputed {failed[t]} of "
                        f"{self.n_variations} variations at the mean of "
                        f"{len(d)} surviving measurements"
                    )
                elif failed[t] and not d:
                    warns.append(
                        f"{t}/{param.name}: all {failed[t]} feasible "
                        "variations failed; score set to 0"
                    )
                scores[t][param.name] = (
                    total / self.n_variations if d else 0.0
                )
        return SensitivityResult(
            baseline=base,
            baseline_values=base_vals,
            scores=scores,
            n_evaluations=n_evals,
            warnings=warns,
        )
