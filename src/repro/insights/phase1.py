"""Phase-1 evaluation engine: profiled, parallel, resumable, reusable.

Phase 1 of the methodology (sensitivity analysis + the optional insight
sample) is the observation-expensive part of the pipeline: ``1 + V x d``
application runs per baseline plus 100-200 insight runs.  This module
makes those runs as cheap as the hardware allows and keeps their results
around for reuse:

* **Cross-target profiled measurement** — one profiled application run
  returns *all* routine timings (:meth:`repro.core.RoutineSet.profile`),
  collapsing the ``t x`` per-configuration redundancy of measuring each
  target with its own objective call (:class:`ProfiledMeasurer` vs the
  per-target :class:`TargetMeasurer`).
* **Plan/evaluate/assemble split** — the analysis first *plans* every
  configuration it needs (:class:`MeasureTask`), consuming all random
  state up front, then evaluates the plan through a
  :class:`Phase1Evaluator`.  Evaluation consumes no random state, so
  tasks can be fanned across a process pool and reassembled by index with
  results bit-identical to a sequential run.
* **Append-only observation log** — with a checkpoint directory every
  completed observation is appended to a JSONL log
  (:class:`Phase1Log`); a killed analysis resumes mid-``V x d`` instead
  of restarting from the all-or-nothing sensitivity JSON checkpoint.
* **Warm-start projection** — :func:`project_observations` projects the
  accumulated observations onto a planned search's pinned subspace and
  turns matches into :class:`~repro.bo.history.Evaluation` seed records,
  so the search's BO engine starts from Phase-1 history instead of cold
  random initialization (the BoGraph/Gramacy observation-reuse idea).
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from ..bo.history import Evaluation, repair_torn_tail
from ..log import get_logger
from ..search.cache import canonical_key
from ..telemetry.core import NULL_TRACER

__all__ = [
    "MeasureTask",
    "Phase1Observation",
    "Phase1Log",
    "TargetMeasurer",
    "ProfiledMeasurer",
    "Phase1Evaluator",
    "project_observations",
]

logger = get_logger("insights")


def config_fingerprint(config: Mapping[str, Any]) -> int:
    """Stable fingerprint of a configuration (for log/plan validation)."""
    return zlib.crc32(canonical_key(config).encode("utf-8"))


@dataclass(frozen=True)
class MeasureTask:
    """One planned Phase-1 measurement.

    Attributes
    ----------
    index:
        Position in the plan; observations are reassembled by it.
    kind:
        ``"baseline"``, ``"variation"``, or ``"insight"``.
    param:
        The varied parameter (``None`` for baseline/insight tasks).
    config:
        The full application configuration to measure.
    """

    index: int
    kind: str
    param: str | None
    config: dict[str, Any]


@dataclass
class Phase1Observation:
    """Outcome of one measured task: all target values at one config.

    ``values[t]`` is ``None`` when target ``t`` failed both attempts
    (``errors[t]`` holds the last error); ``extra_runs`` counts the
    re-measurements performed (for ``n_evaluations`` accounting).
    """

    index: int
    kind: str
    param: str | None
    config: dict[str, Any]
    values: dict[str, float | None]
    errors: dict[str, str] = field(default_factory=dict)
    extra_runs: int = 0

    @property
    def ok(self) -> bool:
        return all(v is not None for v in self.values.values())

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "index": self.index,
            "kind": self.kind,
            "config": dict(self.config),
            "values": dict(self.values),
            "cfg": config_fingerprint(self.config),
        }
        if self.param is not None:
            out["param"] = self.param
        if self.errors:
            out["errors"] = dict(self.errors)
        if self.extra_runs:
            out["extra_runs"] = self.extra_runs
        return out

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "Phase1Observation":
        return cls(
            index=int(d["index"]),
            kind=str(d["kind"]),
            param=d.get("param"),
            config=dict(d["config"]),
            values={
                k: (None if v is None else float(v))
                for k, v in d["values"].items()
            },
            errors=dict(d.get("errors", {})),
            extra_runs=int(d.get("extra_runs", 0)),
        )


# ----------------------------------------------------------------------
# Measurers: how one task is turned into an observation
# ----------------------------------------------------------------------
class TargetMeasurer:
    """Measure every target with its own objective call (the legacy,
    unprofiled path): per-target single re-measure on failure, exactly
    the semantics of the pre-engine ``SensitivityAnalysis._measure``.

    Picklable when the target callables are, so tasks can cross a
    process-pool boundary.
    """

    profiled = False

    def __init__(self, targets: Mapping[str, Callable[[Mapping[str, Any]], float]]):
        self.targets = dict(targets)

    def measure(self, task: MeasureTask) -> Phase1Observation:
        values: dict[str, float | None] = {}
        errors: dict[str, str] = {}
        extra = 0
        for name, fn in self.targets.items():
            last = ""
            value: float | None = None
            for attempt in range(2):
                try:
                    y = float(fn(task.config))
                except Exception as exc:
                    last = repr(exc)
                else:
                    if np.isfinite(y):
                        value = y
                        extra += attempt
                        break
                    last = f"non-finite value {y!r}"
            else:
                extra += 1
            values[name] = value
            if value is None:
                errors[name] = last
        return Phase1Observation(
            index=task.index,
            kind=task.kind,
            param=task.param,
            config=dict(task.config),
            values=values,
            errors=errors,
            extra_runs=extra,
        )


class ProfiledMeasurer:
    """Measure all targets from **one** profiled application run.

    A raised profile (or any non-finite target value) triggers a single
    shared re-profile; targets still failing after it are reported
    ``None`` per target, preserving the per-target imputation semantics
    downstream.  ``extra_runs`` is at most 1 per configuration — the
    whole point of profiling: retries, like measurements, are paid per
    *run*, not per target.
    """

    profiled = True

    def __init__(self, routines):
        # Duck-typed: anything with .profile(config) -> {name: value} and
        # iterable members exposing .name (repro.core.RoutineSet).
        self.routines = routines
        self.target_names = [r.name for r in routines]

    def _profile_once(self) -> None:  # pragma: no cover - doc helper
        raise NotImplementedError

    def measure(self, task: MeasureTask) -> Phase1Observation:
        attempts: list[dict[str, float] | None] = []
        errors_raised: list[str] = []
        extra = 0
        for attempt in range(2):
            try:
                out = {
                    k: float(v)
                    for k, v in self.routines.profile(task.config).items()
                }
            except Exception as exc:
                attempts.append(None)
                errors_raised.append(repr(exc))
            else:
                attempts.append(out)
                if all(
                    np.isfinite(out.get(t, float("nan")))
                    for t in self.target_names
                ):
                    if attempt:
                        extra = 1
                    break
                errors_raised.append("")
            if attempt:
                extra = 1
        values: dict[str, float | None] = {}
        errors: dict[str, str] = {}
        for t in self.target_names:
            value: float | None = None
            last = ""
            for run, out in enumerate(attempts):
                if out is None:
                    last = errors_raised[run]
                    continue
                y = out.get(t, float("nan"))
                if np.isfinite(y):
                    value = y
                    break
                last = f"non-finite value {y!r}"
            values[t] = value
            if value is None:
                errors[t] = last
        return Phase1Observation(
            index=task.index,
            kind=task.kind,
            param=task.param,
            config=dict(task.config),
            values=values,
            errors=errors,
            extra_runs=extra,
        )


# ----------------------------------------------------------------------
# Append-only observation log (mid-analysis crash recovery)
# ----------------------------------------------------------------------
class Phase1Log:
    """Append-only JSONL log of Phase-1 observations.

    One header line (label + plan size) followed by one observation per
    line — O(1) I/O per observation, the same format discipline as the
    search evaluation checkpoints.  On load, each record is validated
    against the *current* plan by index and configuration fingerprint; a
    log written by a different plan (changed seed, V, baseline, space) is
    detected as stale, discarded with a warning, and overwritten.  A torn
    final line (crash mid-append) is dropped and truncated from the file,
    so the interrupted task is simply re-measured and the next append
    starts on a fresh line.
    """

    _HEADER = "repro-phase1-log"

    def __init__(self, path: str | os.PathLike, *, label: str, n_tasks: int):
        self.path = os.fspath(path)
        self.label = label
        self.n_tasks = int(n_tasks)
        self._header_written = os.path.exists(self.path)

    # ------------------------------------------------------------------
    def load(self, tasks: Sequence[MeasureTask]) -> dict[int, Phase1Observation]:
        """Observations matching the planned tasks, keyed by index."""
        if not os.path.exists(self.path):
            return {}
        with open(self.path) as f:
            text = f.read()
        by_task = {t.index: t for t in tasks}
        out: dict[int, Phase1Observation] = {}
        lines = text.splitlines()
        if lines and not text.endswith("\n"):
            # Torn final line from a crash mid-append: drop the fragment
            # here and on disk, so the next append starts a fresh line
            # instead of concatenating onto it (which would make the log
            # unparsable — and discarded as stale — on every later load).
            repair_torn_tail(self.path)
            self._header_written = os.path.exists(self.path)
            lines = lines[:-1]
        for i, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                d = json.loads(line)
            except json.JSONDecodeError:
                if i == len(lines) - 1:
                    continue  # torn final line from a crash mid-append
                return self._stale("unparsable line")
            if isinstance(d, dict) and d.get("format") == self._HEADER:
                if d.get("label") != self.label or int(
                    d.get("n_tasks", -1)
                ) != self.n_tasks:
                    return self._stale("header does not match the plan")
                continue
            try:
                obs = Phase1Observation.from_dict(d)
            except (KeyError, TypeError, ValueError):
                if i == len(lines) - 1:
                    continue
                return self._stale("malformed record")
            task = by_task.get(obs.index)
            if task is None or config_fingerprint(task.config) != d.get("cfg"):
                return self._stale(f"record {obs.index} diverges from the plan")
            out[obs.index] = obs
        return out

    def _stale(self, why: str) -> dict[int, Phase1Observation]:
        logger.warning(
            "phase-1 log %s is stale (%s); discarding and re-measuring",
            self.path, why,
        )
        os.unlink(self.path)
        self._header_written = False
        return {}

    def append(self, obs: Phase1Observation) -> None:
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        with open(self.path, "a") as f:
            if not self._header_written:
                f.write(
                    json.dumps(
                        {
                            "format": self._HEADER,
                            "label": self.label,
                            "n_tasks": self.n_tasks,
                        }
                    )
                    + "\n"
                )
                self._header_written = True
            f.write(json.dumps(obs.to_dict()) + "\n")
            f.flush()
            os.fsync(f.fileno())


# ----------------------------------------------------------------------
# The evaluator: sequential or pooled, checkpointed, traced
# ----------------------------------------------------------------------
class Phase1Evaluator:
    """Drive a list of :class:`MeasureTask` through a measurer.

    Parameters
    ----------
    parallel:
        Fan pending tasks across a process pool (the PR-1 campaign
        executor's pool machinery).  Planning consumed all random state,
        so pooled results are bit-identical to sequential ones; tasks
        whose measurer cannot be pickled fall back in-process with
        identical results.
    n_workers:
        Pool width (``None`` -> ``os.cpu_count()``).
    checkpoint_dir:
        Directory for per-run :class:`Phase1Log` files
        (``<dir>/<label>.jsonl``).  Logged observations are replayed, not
        re-measured — a killed analysis resumes mid-``V x d``.
    telemetry:
        Optional :class:`repro.telemetry.Telemetry`.  Each run emits a
        ``search_start`` event (budget = number of planned tasks), one
        ``sensitivity_eval`` / ``insight_eval`` span and one ``eval``
        event per task (keyed by task index, so resumed runs re-emit a
        byte-identical eval channel), wrapped in a ``search`` span on the
        ``phase1/<label>`` scope — the same progress/trace surface the
        searches have.

    Every completed run's observations are accumulated on
    :attr:`observations` (in plan order) for warm-start projection.
    """

    def __init__(
        self,
        *,
        parallel: bool = False,
        n_workers: int | None = None,
        checkpoint_dir: str | os.PathLike | None = None,
        telemetry=None,
    ):
        self.parallel = bool(parallel)
        self.n_workers = n_workers
        self.checkpoint_dir = (
            os.fspath(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self.telemetry = telemetry
        self.observations: list[Phase1Observation] = []

    # ------------------------------------------------------------------
    def _tracer(self, label: str):
        if self.telemetry is None:
            return NULL_TRACER
        return self.telemetry.tracer(f"phase1/{label}")

    def run(
        self,
        tasks: Sequence[MeasureTask],
        measurer,
        *,
        label: str = "phase1",
    ) -> dict[int, Phase1Observation]:
        """Measure every task; return observations keyed by task index.

        When the plan starts with a ``baseline`` task whose every target
        fails both attempts, measurement stops there (the analysis cannot
        proceed without a finite baseline) and the partial mapping is
        returned for the caller to diagnose.
        """
        tasks = list(tasks)
        log = (
            Phase1Log(
                os.path.join(self.checkpoint_dir, f"{_slug(label)}.jsonl"),
                label=label,
                n_tasks=len(tasks),
            )
            if self.checkpoint_dir is not None
            else None
        )
        done = log.load(tasks) if log is not None else {}

        tracer = self._tracer(label)
        tracer.event(
            "search_start",
            budget=len(tasks),
            engine=(
                "phase1-profiled"
                if getattr(measurer, "profiled", False)
                else "phase1"
            ),
            space=label,
            strategy="phase1",
            resumed=len(done),
        )
        results: dict[int, Phase1Observation] = {}
        with tracer.span("search", engine="phase1", space=label):
            pooled = self._pooled_results(tasks, measurer, done)
            for task in tasks:
                name = (
                    "insight_eval" if task.kind == "insight" else "sensitivity_eval"
                )
                with tracer.span(
                    name,
                    index=task.index,
                    kind=task.kind,
                    param=task.param or "",
                ) as sp:
                    obs = done.get(task.index)
                    fresh = obs is None
                    if obs is None:
                        obs = pooled.get(task.index)
                    if obs is None:
                        obs = measurer.measure(task)
                    if fresh and log is not None and not (
                        task.kind == "baseline" and not any(
                            v is not None for v in obs.values.values()
                        )
                    ):
                        # Fully-failed baselines are not persisted: a
                        # resume should re-measure them (the failure may
                        # have been transient).
                        log.append(obs)
                    sp.attrs.update(ok=obs.ok, extra_runs=obs.extra_runs)
                results[task.index] = obs
                finite = [v for v in obs.values.values() if v is not None]
                tracer.eval_event(
                    task.index,
                    objective=float(sum(finite)) if finite else float("nan"),
                    cost=float(1 + obs.extra_runs),
                    status="ok" if obs.ok else "failed",
                    best=None,
                    cfg_hash=config_fingerprint(task.config),
                )
                if fresh and self.telemetry is not None:
                    m = self.telemetry.metrics
                    m.counter("phase1_evaluations", kind=task.kind).inc()
                    if obs.extra_runs:
                        m.counter("phase1_retries").inc(obs.extra_runs)
                if (
                    task.kind == "baseline"
                    and not any(v is not None for v in obs.values.values())
                ):
                    break  # no finite baseline -> the analysis cannot proceed
        if self.telemetry is not None:
            tracer.metrics_event(self.telemetry.metrics)
        self.observations.extend(results[t.index] for t in tasks
                                 if t.index in results)
        return results

    def _pooled_results(
        self,
        tasks: Sequence[MeasureTask],
        measurer,
        done: Mapping[int, Phase1Observation],
    ) -> dict[int, Phase1Observation]:
        """Measure pending non-baseline tasks in a process pool (or not).

        Baseline tasks are always measured in-process first by the main
        loop so a dead baseline aborts before the ``V x d`` fan-out.
        """
        if not self.parallel:
            return {}
        pending = [
            t for t in tasks if t.index not in done and t.kind != "baseline"
        ]
        if len(pending) < 2:
            return {}
        from ..search.executor import run_measure_tasks

        measured = run_measure_tasks(
            measurer, pending, n_workers=self.n_workers
        )
        if measured is None:
            logger.info(
                "phase-1 tasks not picklable; measuring in-process "
                "(results are identical)"
            )
            return {}
        return {obs.index: obs for obs in measured}


def _slug(name: str) -> str:
    import re

    return re.sub(r"[^A-Za-z0-9._-]+", "_", name).strip("_") or "phase1"


# ----------------------------------------------------------------------
# Warm-start projection
# ----------------------------------------------------------------------
def _is_number(v: Any) -> bool:
    return isinstance(v, (int, float, np.integer, np.floating)) and not isinstance(
        v, bool
    )


def _pin_matches(value: Any, pin: Any, tolerance: float) -> tuple[bool, bool]:
    """``(matches, exact)`` for one pinned parameter."""
    if _is_number(value) and _is_number(pin):
        exact = float(value) == float(pin)
        if exact:
            return True, True
        if tolerance > 0.0:
            ok = abs(float(value) - float(pin)) <= tolerance * max(
                1.0, abs(float(pin))
            )
            return ok, False
        return False, False
    return (value == pin), (value == pin)


def project_observations(
    observations: Iterable[Phase1Observation],
    members: Sequence[Any],
    subspace,
    *,
    tolerance: float = 0.0,
    max_records: int | None = None,
) -> list[Evaluation]:
    """Project Phase-1 observations onto one planned search's subspace.

    An observation matches when every parameter the subspace pins sits at
    its pinned value (exactly for non-numeric pins; within a relative
    ``tolerance`` for numeric ones) and every member routine's value is
    finite.  Matches become :class:`~repro.bo.history.Evaluation` records
    whose objective is the member-weighted sum **in member order** — the
    same summation the materialized search objective performs, so exact
    matches reconstruct the objective bit-for-bit.  Tolerance-matched
    records are tagged ``meta["warm_inexact"]`` so the memoization cache
    refuses to serve them for the (slightly different) exact
    configuration.

    Records are deduplicated on the canonical tuned configuration and the
    best ``max_records`` (lowest objective, ties by observation order)
    are returned, best first.  Costs are zero: these observations were
    already paid for in Phase 1.
    """
    pinned = dict(getattr(subspace, "pinned", {}))
    names = list(subspace.names)
    matches: list[tuple[float, int, Evaluation]] = []
    seen: set[str] = set()
    for ordinal, obs in enumerate(observations):
        if any(n not in obs.config for n in names):
            continue
        values = obs.values
        vs = [values.get(m.name) for m in members]
        if any(v is None for v in vs):
            continue
        exact = True
        ok = True
        for p, pin in pinned.items():
            if p not in obs.config:
                ok = False
                break
            m, ex = _pin_matches(obs.config[p], pin, tolerance)
            if not m:
                ok = False
                break
            exact = exact and ex
        if not ok:
            continue
        config = subspace.complete({n: obs.config[n] for n in names})
        if not subspace.is_valid({n: obs.config[n] for n in names}):
            continue
        key = canonical_key(config)
        if key in seen:
            continue
        seen.add(key)
        objective = float(
            sum(m.weight * values[m.name] for m in members)
        )
        if not np.isfinite(objective):
            continue
        meta: dict[str, Any] = {
            "warm_start": True,
            "phase1_index": obs.index,
            "phase1_kind": obs.kind,
        }
        if not exact:
            meta["warm_inexact"] = True
        matches.append(
            (
                objective,
                ordinal,
                Evaluation(
                    config=config, objective=objective, cost=0.0, meta=meta
                ),
            )
        )
    matches.sort(key=lambda t: (t[0], t[1]))
    if max_records is not None:
        matches = matches[: max(0, int(max_records))]
    return [rec for _, _, rec in matches]
