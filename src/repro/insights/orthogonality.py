"""Pairwise orthogonality analysis — the expensive baseline.

The paper's phase 1 exists because "conducting an orthogonality analysis
for an HPC application can be resource-intensive, requiring numerous
observations [Kandasamy et al.]".  To quantify that claim, this module
implements the classical alternative the literature would use: a
pairwise-interaction analysis in the spirit of factorial/Sobol interaction
screening.

For every *pair* of parameters ``(p, q)`` the analysis measures the
non-additivity of the objective:

.. math::

   I(p, q) = \\frac{1}{V^2} \\sum_{i,j}
             \\left| \\frac{f(x^{p_i q_j}) - f(x^{p_i}) - f(x^{q_j}) + f(x)}
                          {f(x)} \\right|

where ``x`` is the baseline, ``x^{p_i}`` varies only ``p``, and
``x^{p_i q_j}`` varies both.  ``I = 0`` for additively separable pairs;
large ``I`` flags interaction.  Routine-level interdependence is the
maximum interaction between parameters owned by different routines.

Observation cost: ``1 + dV + C(d,2) V^2`` evaluations versus the
sensitivity analysis' ``1 + dV`` — for the paper's d = 20, V = 5 that is
4,851 versus 101, the gap
:func:`repro.insights.orthogonality.observation_cost` makes explicit and
``benchmarks/bench_orthogonality_cost.py`` regenerates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Mapping

import numpy as np

from ..core.routine import RoutineSet
from ..space import SearchSpace

__all__ = [
    "PairwiseOrthogonalityAnalysis",
    "OrthogonalityResult",
    "observation_cost",
    "sensitivity_observation_cost",
]


def observation_cost(n_parameters: int, n_variations: int) -> int:
    """Evaluations a full pairwise analysis needs: 1 + dV + C(d,2) V^2."""
    if n_parameters < 1 or n_variations < 1:
        raise ValueError("n_parameters and n_variations must be >= 1")
    d, v = n_parameters, n_variations
    return 1 + d * v + math.comb(d, 2) * v * v


def sensitivity_observation_cost(n_parameters: int, n_variations: int) -> int:
    """Evaluations the paper's sensitivity analysis needs: 1 + dV."""
    if n_parameters < 1 or n_variations < 1:
        raise ValueError("n_parameters and n_variations must be >= 1")
    return 1 + n_parameters * n_variations


@dataclass
class OrthogonalityResult:
    """Outcome of a pairwise orthogonality analysis.

    ``interactions`` maps frozenset({p, q}) -> mean relative
    non-additivity; ``n_evaluations`` counts objective evaluations.
    """

    baseline: dict[str, Any]
    interactions: dict[frozenset, float]
    n_evaluations: int

    def interaction(self, p: str, q: str) -> float:
        return self.interactions[frozenset((p, q))]

    def top(self, k: int = 10) -> list[tuple[tuple[str, str], float]]:
        items = sorted(self.interactions.items(), key=lambda kv: -kv[1])
        return [(tuple(sorted(pair)), score) for pair, score in items[:k]]

    def routine_interdependence(
        self, routines: RoutineSet
    ) -> dict[frozenset, float]:
        """Max parameter-pair interaction between each routine pair."""
        out: dict[frozenset, float] = {}
        for a in routines.names:
            for b in routines.names:
                if a >= b:
                    continue
                pa = set(routines[a].parameters)
                pb = set(routines[b].parameters)
                best = 0.0
                for pair, score in self.interactions.items():
                    p, q = tuple(pair)
                    if (p in pa and q in pb) or (p in pb and q in pa):
                        best = max(best, score)
                out[frozenset((a, b))] = best
        return out


class PairwiseOrthogonalityAnalysis:
    """The expensive baseline: full pairwise interaction screening.

    Parameters mirror :class:`repro.insights.SensitivityAnalysis` where
    applicable; only a single scalar objective is analyzed (running it per
    routine would multiply the already-quadratic cost further).
    """

    def __init__(
        self,
        space: SearchSpace,
        objective: Callable[[Mapping[str, Any]], float],
        *,
        n_variations: int = 3,
        random_state: int | np.random.Generator | None = None,
    ):
        if n_variations < 1:
            raise ValueError("n_variations must be >= 1")
        self.space = space
        self.objective = objective
        self.n_variations = int(n_variations)
        self.rng = (
            random_state
            if isinstance(random_state, np.random.Generator)
            else np.random.default_rng(random_state)
        )

    def _variations(self, base: Mapping[str, Any]) -> dict[str, list[Any]]:
        out: dict[str, list[Any]] = {}
        for p in self.space.parameters:
            vals = []
            for _ in range(self.n_variations):
                for _try in range(20):
                    v = p.sample(self.rng)
                    if v != base[p.name]:
                        break
                vals.append(v)
            out[p.name] = vals
        return out

    def run(self, baseline: Mapping[str, Any] | None = None) -> OrthogonalityResult:
        """Execute the full pairwise screening.

        WARNING: cost is quadratic in dimensionality —
        ``observation_cost(d, V)`` evaluations.  This is the baseline the
        methodology replaces, provided for the cost comparison, not for
        production use on expensive objectives.
        """
        base = dict(baseline) if baseline is not None else self.space.sample(self.rng)
        self.space.validate(base)
        f0 = float(self.objective(base))
        denom = f0 if abs(f0) > 1e-12 else 1e-12
        n_evals = 1

        variations = self._variations(base)
        names = self.space.names

        # Individual effects f(x^{p_i}).
        single: dict[str, list[float]] = {}
        for p in names:
            vals = []
            for v in variations[p]:
                cfg = dict(base)
                cfg[p] = v
                if not self.space.is_valid(cfg):
                    vals.append(float("nan"))
                    continue
                vals.append(float(self.objective(cfg)))
                n_evals += 1
            single[p] = vals

        interactions: dict[frozenset, float] = {}
        for i, p in enumerate(names):
            for q in names[i + 1:]:
                deltas = []
                for a, vp in enumerate(variations[p]):
                    for b, vq in enumerate(variations[q]):
                        if math.isnan(single[p][a]) or math.isnan(single[q][b]):
                            continue
                        cfg = dict(base)
                        cfg[p] = vp
                        cfg[q] = vq
                        if not self.space.is_valid(cfg):
                            continue
                        fpq = float(self.objective(cfg))
                        n_evals += 1
                        deltas.append(
                            abs((fpq - single[p][a] - single[q][b] + f0) / denom)
                        )
                interactions[frozenset((p, q))] = (
                    float(np.mean(deltas)) if deltas else 0.0
                )
        return OrthogonalityResult(
            baseline=base, interactions=interactions, n_evaluations=n_evals
        )
