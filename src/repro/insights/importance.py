"""Feature importance and data-sufficiency checks (paper Section IV-B).

Combines the three data-driven analyses the methodology runs before its
interdependence phase:

* **one-in-ten rule** — "building regression models would need at least 10
  observations for each independent variable" (Harrell); violated analyses
  are flagged, not blocked,
* **random-forest feature importance** — parameters that drive modeling
  accuracy should be conserved in searches; unimportant ones are candidates
  for dropping under the dimension cap,
* **Pearson correlation screening** — parameter pairs with strong linear
  coupling (the paper's tb/tb_sm ~ 0.6) are suggested for grouping in the
  same search.

:class:`ParameterInsights` bundles them over one evaluation sample
(configurations + objective values) into a single report object consumed by
the planner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

from ..space import SearchSpace
from .correlation import correlated_pairs, design_matrix, pearson_with_target
from .forest import RandomForestRegressor

__all__ = [
    "one_in_ten_ok",
    "required_samples",
    "ParameterInsights",
    "analyze_parameters",
]


def required_samples(n_features: int, *, per_feature: int = 10) -> int:
    """Minimum sample count the one-in-ten rule asks for."""
    if n_features < 1:
        raise ValueError("n_features must be >= 1")
    return per_feature * n_features


def one_in_ten_ok(n_samples: int, n_features: int, *, per_feature: int = 10) -> bool:
    """True when ``n_samples`` satisfies the one-in-ten rule."""
    return n_samples >= required_samples(n_features, per_feature=per_feature)


@dataclass
class ParameterInsights:
    """Aggregated statistical insights over one evaluation sample.

    Attributes
    ----------
    importances:
        ``{parameter: normalized forest importance}`` (sums to 1).
    target_correlations:
        ``{parameter: pearson(parameter, objective)}``.
    correlated_parameter_pairs:
        ``(a, b, rho)`` with ``|rho|`` above the screening threshold —
        grouping hints for the planner.
    one_in_ten_satisfied:
        Whether the sample met the rule; when ``False`` the report is
        still produced but flagged as under-sampled.
    oob_r2:
        Out-of-bag R^2 of the forest (``None`` when unavailable) — the
        sanity signal for trusting the importances.
    n_samples:
        Size of the evaluation sample used.
    """

    importances: dict[str, float]
    target_correlations: dict[str, float]
    correlated_parameter_pairs: list[tuple[str, str, float]]
    one_in_ten_satisfied: bool
    oob_r2: float | None
    n_samples: int

    def top_important(self, k: int = 10) -> list[tuple[str, float]]:
        """The ``k`` parameters with highest modeling importance."""
        return sorted(self.importances.items(), key=lambda kv: -kv[1])[:k]

    def least_important(self, k: int = 10) -> list[tuple[str, float]]:
        """The ``k`` parameters with lowest importance — drop candidates."""
        return sorted(self.importances.items(), key=lambda kv: kv[1])[:k]

    def importance_rank(self) -> list[str]:
        """All parameters, most important first (ties broken by name for
        determinism)."""
        return [
            name
            for name, _ in sorted(
                self.importances.items(), key=lambda kv: (-kv[1], kv[0])
            )
        ]

    def format_report(self, k: int = 10) -> str:
        lines = [
            f"samples: {self.n_samples}"
            + ("" if self.one_in_ten_satisfied else "  [WARNING: one-in-ten rule violated]"),
            f"forest OOB R^2: {self.oob_r2:.3f}" if self.oob_r2 is not None else "forest OOB R^2: n/a",
            "",
            f"{'Parameter':<16} {'Importance':>10} {'Corr(target)':>13}",
        ]
        for name, imp in self.top_important(k):
            lines.append(
                f"{name:<16} {100 * imp:9.1f}% {self.target_correlations[name]:13.2f}"
            )
        if self.correlated_parameter_pairs:
            lines.append("")
            lines.append("correlated parameter pairs (grouping hints):")
            for a, b, rho in self.correlated_parameter_pairs:
                lines.append(f"  {a} ~ {b}: rho={rho:.2f}")
        return "\n".join(lines)


def analyze_parameters(
    space: SearchSpace,
    configs: Sequence[Mapping[str, Any]],
    objectives: Sequence[float],
    *,
    n_estimators: int = 100,
    correlation_threshold: float = 0.5,
    random_state: int | np.random.Generator | None = None,
) -> ParameterInsights:
    """Run the full Section IV-B statistical battery on a sample.

    Parameters
    ----------
    configs / objectives:
        The evaluation sample — in the paper, 100+100 application runs per
        case study; here, any list of (configuration, runtime) pairs such
        as a :class:`repro.bo.EvaluationDatabase`'s OK records.
    """
    y = np.asarray(objectives, dtype=float).reshape(-1)
    if len(configs) != y.shape[0]:
        raise ValueError("configs and objectives disagree on sample count")
    if y.shape[0] < 2:
        raise ValueError("need at least 2 samples for parameter insights")
    X, names = design_matrix(space, configs)

    forest = RandomForestRegressor(
        n_estimators=n_estimators, random_state=random_state
    ).fit(X, y)
    importances = dict(zip(names, forest.feature_importances_.tolist()))
    corr = dict(zip(names, pearson_with_target(X, y).tolist()))
    pairs = correlated_pairs(X, names, threshold=correlation_threshold)

    return ParameterInsights(
        importances=importances,
        target_correlations=corr,
        correlated_parameter_pairs=pairs,
        one_in_ten_satisfied=one_in_ten_ok(y.shape[0], space.dimension),
        oob_r2=forest.oob_score_,
        n_samples=int(y.shape[0]),
    )
