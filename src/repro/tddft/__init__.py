"""Simulated GPU-offloaded RT-TDDFT application (the paper's Sections V-VIII).

Physical systems, the A100 architecture model, GPU-kernel cost models, the
batched/streamed Slater-determinant pipeline, and the
:class:`RTTDDFTApplication` facade exposing the 20-parameter tuning
problem to the methodology.
"""

from .app import KERNEL_KEYS, UNROLL_VALUES, RTTDDFTApplication
from .cpu import CpuProfile, CpuRTTDDFT
from .gpu import GpuSpec, Occupancy, a100
from .kernels import (
    SLATER_KERNELS,
    KernelSpec,
    fft3d_time,
    memcpy_time,
    pair_cache_pollution,
)
from .groundstate import GroundStateResult, ImaginaryTimeSolver
from .numeric import NumericResult, NumericSlaterApp
from .propagator import PropagationResult, SplitOperatorPropagator
from .slater import GROUP_KERNELS, SlaterPipeline
from .wavefunction import DistributedWavefunction, LocalBlock
from .systems import (
    PhysicalSystem,
    boron_nitride_slab,
    case_study,
    magnesium_porphyrin,
)

__all__ = [
    "RTTDDFTApplication",
    "KERNEL_KEYS",
    "UNROLL_VALUES",
    "CpuRTTDDFT",
    "CpuProfile",
    "GpuSpec",
    "Occupancy",
    "a100",
    "KernelSpec",
    "SLATER_KERNELS",
    "fft3d_time",
    "memcpy_time",
    "pair_cache_pollution",
    "SlaterPipeline",
    "NumericSlaterApp",
    "NumericResult",
    "ImaginaryTimeSolver",
    "GroundStateResult",
    "SplitOperatorPropagator",
    "PropagationResult",
    "GROUP_KERNELS",
    "PhysicalSystem",
    "magnesium_porphyrin",
    "boron_nitride_slab",
    "case_study",
    "DistributedWavefunction",
    "LocalBlock",
]
