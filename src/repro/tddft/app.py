"""The GPU-offloaded RT-TDDFT application (simulated QBox, Sections V-VI).

:class:`RTTDDFTApplication` binds a physical system, a cluster, and a GPU
model into the 20-parameter tuning problem of the paper's Table IV:

====================  =========================================
MPI grid              ``nstb, nkpb, nspb`` (ngb = 1 in the GPU port)
per-kernel (x5)       ``u_K, tb_K, tb_sm_K`` for K in
                      {dscal, pair, zcopy, vec, zvec}
band loop             ``nstreams, nbatches``
====================  =========================================

with the paper's validity constraints (``tb_K * tb_sm_K`` within the SM
thread bound; the MPI grid within the allocation) and, optionally, the
expert constraints of Section VIII (grid factors restricted to divisors of
the system extents; degenerate dimensions pinned).

The observables — total application runtime, Slater-determinant region
runtime, and per-group single-invocation runtimes — are exactly the four
regions the paper's sensitivity analysis probes, exposed as a
:class:`repro.core.RoutineSet` (plus the region hierarchy) so the
methodology runs on this application unchanged.

Runtimes carry multiplicative log-normal noise ("runtime uncertainty in
HPC applications"); set ``noise_scale=0`` for deterministic values.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from ..core.routine import Routine, RoutineSet
from ..mpisim.cluster import ClusterSpec, perlmutter_gpu
from ..mpisim.collectives import allreduce_time
from ..mpisim.comm import CartGrid
from ..space import Constant, Constraint, Integer, Ordinal, Parameter, SearchSpace
from .gpu import GpuSpec, a100
from .slater import SlaterPipeline
from .systems import PhysicalSystem

__all__ = ["RTTDDFTApplication", "KERNEL_KEYS", "UNROLL_VALUES"]

KERNEL_KEYS = ("dscal", "pair", "zcopy", "vec", "zvec")
UNROLL_VALUES = [1, 2, 4, 8]


class RTTDDFTApplication:
    """The paper's tuning target as a black-box objective suite.

    Parameters
    ----------
    system:
        Physical input (:func:`repro.tddft.systems.case_study`).
    cluster:
        Allocation (paper: "a maximum of 10 computing nodes", 4 MPI
        tasks/GPUs each).
    gpu:
        GPU model (A100 by default).
    expert_constraints:
        Apply the Section-VIII expert space reduction: MPI grid factors
        restricted to divisors of the system extents (work balance),
        degenerate dimensions pinned to 1.
    noise_scale:
        Sigma of the multiplicative log-normal runtime noise.
    random_state:
        Noise stream seed.
    """

    def __init__(
        self,
        system: PhysicalSystem,
        *,
        cluster: ClusterSpec | None = None,
        gpu: GpuSpec | None = None,
        expert_constraints: bool = True,
        noise_scale: float = 0.02,
        random_state: int | np.random.Generator | None = None,
    ):
        self.system = system
        self.cluster = cluster if cluster is not None else perlmutter_gpu()
        self.gpu = gpu if gpu is not None else a100()
        self.expert_constraints = bool(expert_constraints)
        if noise_scale < 0:
            raise ValueError("noise_scale must be >= 0")
        self.noise_scale = float(noise_scale)
        self.rng = (
            random_state
            if isinstance(random_state, np.random.Generator)
            else np.random.default_rng(random_state)
        )
        self.pipeline = SlaterPipeline(system, self.gpu)

    # ------------------------------------------------------------------
    # Noise
    # ------------------------------------------------------------------
    def _noisy(self, t: float) -> float:
        if self.noise_scale == 0.0:
            return t
        return t * float(np.exp(self.rng.normal(0.0, self.noise_scale)))

    # ------------------------------------------------------------------
    # Search space (Table IV)
    # ------------------------------------------------------------------
    def _mpi_parameter(self, name: str, extent: int) -> Parameter:
        max_ranks = self.cluster.total_ranks
        if self.expert_constraints:
            if extent == 1:
                return Constant(name, 1)
            values = [d for d in range(1, extent + 1) if extent % d == 0 and d <= max_ranks]
            if len(values) < 2:
                return Constant(name, values[0] if values else 1)
            return Ordinal(name, values, default=values[0])
        high = min(extent, max_ranks)
        if high <= 1:
            return Constant(name, 1)
        return Integer(name, 1, high, default=1)

    def search_space(self) -> SearchSpace:
        """The full 20-parameter constrained space of Table IV."""
        params: list[Parameter] = [
            self._mpi_parameter("nstb", self.system.nbands),
            self._mpi_parameter("nkpb", self.system.nkpoints),
            self._mpi_parameter("nspb", self.system.nspin),
        ]
        tb_vals = self.gpu.tb_values()
        tb_sm_vals = self.gpu.tb_sm_values()
        for k in KERNEL_KEYS:
            params.append(Ordinal(f"u_{k}", UNROLL_VALUES, default=1))
            params.append(Ordinal(f"tb_{k}", tb_vals, default=256))
            params.append(Integer(f"tb_sm_{k}", tb_sm_vals[0], tb_sm_vals[-1], default=4))
        params.append(Integer("nstreams", 1, 32, default=1))
        params.append(Integer("nbatches", 1, 32, default=4))

        constraints: list[Constraint] = []
        limit = self.gpu.max_threads_per_sm
        for k in KERNEL_KEYS:
            constraints.append(
                Constraint(
                    lambda c, _k=k, _lim=limit: c[f"tb_{_k}"] * c[f"tb_sm_{_k}"] <= _lim,
                    names=(f"tb_{k}", f"tb_sm_{k}"),
                    name=f"occupancy_{k}",
                )
            )
        constraints.append(
            Constraint(
                lambda c, _r=self.cluster.total_ranks: c["nstb"] * c["nkpb"] * c["nspb"] <= _r,
                names=("nstb", "nkpb", "nspb"),
                name="mpi_grid_fits_allocation",
            )
        )
        return SearchSpace(params, constraints, name=f"rt-tddft-{self.system.name}")

    def defaults(self) -> dict[str, Any]:
        """The untuned default configuration (the paper's baseline where
        kernels 'use default tuning values')."""
        return self.search_space().defaults()

    # ------------------------------------------------------------------
    # Workload decomposition
    # ------------------------------------------------------------------
    def grid(self, config: Mapping[str, Any]) -> CartGrid:
        return CartGrid(
            nspb=int(config["nspb"]),
            nkpb=int(config["nkpb"]),
            nstb=int(config["nstb"]),
            ngb=1,
        )

    def local_work(self, config: Mapping[str, Any]) -> tuple[int, int, int]:
        """(spins_loc, kpoints_loc, bands_loc) of the busiest rank."""
        return self.grid(config).local_counts(
            self.system.nspin, self.system.nkpoints, self.system.nbands
        )

    # ------------------------------------------------------------------
    # Observables (the methodology's targets)
    # ------------------------------------------------------------------
    def group_runtime(self, group: str, config: Mapping[str, Any]) -> float:
        """Runtime of one batched invocation of a kernel group.

        The batch is the tuned ``nbatches`` capped by the system's band
        count (one invocation can never pack more bands than exist); the
        *local* band count only shapes how many invocations the Slater
        loop issues, not the cost of one.
        """
        batch = self.pipeline.effective_batch(self.system.nbands, int(config["nbatches"]))
        return self._noisy(self.pipeline.group_time(group, batch, config))

    def slater_runtime(self, config: Mapping[str, Any]) -> float:
        """The Slater-determinant region: the full streamed band loop over
        every local spin and k-point of the busiest rank."""
        spins_loc, kpts_loc, bands_loc = self.local_work(config)
        per_kpoint = self.pipeline.slater_time(bands_loc, config)
        return self._noisy(spins_loc * kpts_loc * per_kpoint)

    def communication_time(self, config: Mapping[str, Any]) -> float:
        """End-of-iteration accumulations: allreduce of the potential over
        all active ranks (Figure 4's 'accumulations and MPI reductions')."""
        grid = self.grid(config)
        return allreduce_time(
            self.cluster, self.system.band_bytes, min(grid.size, self.cluster.total_ranks)
        )

    def total_runtime(self, config: Mapping[str, Any]) -> float:
        """One rt-iteration of the application on the busiest rank:
        Slater region + daxpy accumulation + MPI reductions."""
        slater = self.slater_runtime(config)
        _, _, bands_loc = self.local_work(config)
        # daxpy over the local wavefunction block (host-side, bandwidth bound)
        daxpy = (
            2.0 * bands_loc * self.system.band_bytes
            / self.cluster.node.memory_bandwidth
        )
        return slater + daxpy + self.communication_time(config)

    def profile(self, config: Mapping[str, Any]) -> dict[str, float]:
        """All five region runtimes from **one** simulated application run.

        A real profiled run times every instrumented region at once; here
        it is accounted as a single run by the Phase-1 engine.  Each
        observable keeps its own independent measurement-noise draw, in
        the same order the per-target path issues them, so a profiled
        analysis produces bit-identical observations to the legacy
        one-call-per-target path at every seed — only the *run count*
        changes.
        """
        return {
            "MPI Grid": self.total_runtime(config),
            "Slater Determinant": self.slater_runtime(config),
            "Group 1": self.group_runtime("Group 1", config),
            "Group 2": self.group_runtime("Group 2", config),
            "Group 3": self.group_runtime("Group 3", config),
        }

    def gpu_profile(self, config: Mapping[str, Any] | None = None) -> dict[str, float]:
        """Per-kernel share of GPU compute time (Section V-A's profile).

        Returns fractions summing to 1, excluding memory transfers.
        """
        cfg = dict(self.defaults())
        if config:
            cfg.update(config)
        _, _, bands_loc = self.local_work(cfg)
        batch = self.pipeline.effective_batch(bands_loc, int(cfg["nbatches"]))
        breakdown = self.pipeline.kernel_breakdown(batch, cfg)
        total = sum(breakdown.values())
        return {k: v / total for k, v in breakdown.items()}

    # ------------------------------------------------------------------
    # Methodology plumbing
    # ------------------------------------------------------------------
    def routines(self) -> RoutineSet:
        """The five tunable regions with ownership and impact weights.

        Weights are the deterministic default-configuration runtimes of
        each region (noise suppressed), giving the planner's rule 5 its
        "highest impact" signal.
        """
        saved = self.noise_scale
        self.noise_scale = 0.0
        try:
            d = self.defaults()
            weights = {
                "MPI Grid": self.total_runtime(d),
                "Slater Determinant": self.slater_runtime(d),
                "Group 1": self.group_runtime("Group 1", d),
                "Group 2": self.group_runtime("Group 2", d),
                "Group 3": self.group_runtime("Group 3", d),
            }
        finally:
            self.noise_scale = saved

        kernel_params = lambda k: (f"u_{k}", f"tb_{k}", f"tb_sm_{k}")  # noqa: E731
        return RoutineSet(
            [
                Routine(
                    "MPI Grid",
                    ("nstb", "nkpb", "nspb"),
                    self.total_runtime,
                    weight=weights["MPI Grid"],
                ),
                Routine(
                    "Slater Determinant",
                    ("nbatches", "nstreams"),
                    self.slater_runtime,
                    weight=weights["Slater Determinant"],
                ),
                Routine(
                    "Group 1",
                    kernel_params("vec") + kernel_params("zcopy"),
                    lambda c: self.group_runtime("Group 1", c),
                    weight=weights["Group 1"],
                ),
                Routine(
                    "Group 2",
                    kernel_params("pair"),
                    lambda c: self.group_runtime("Group 2", c),
                    weight=weights["Group 2"],
                ),
                Routine(
                    "Group 3",
                    kernel_params("zcopy") + kernel_params("dscal") + kernel_params("zvec"),
                    lambda c: self.group_runtime("Group 3", c),
                    weight=weights["Group 3"],
                ),
            ],
            profiler=self.profile,
        )

    def hierarchy(self) -> dict[str, list[str]]:
        """Region nesting for the planner's staged execution: the MPI grid
        encloses the Slater region, which encloses the kernel groups."""
        return {
            "MPI Grid": ["Slater Determinant"],
            "Slater Determinant": ["Group 1", "Group 2", "Group 3"],
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RTTDDFTApplication(system={self.system.name!r}, "
            f"ranks={self.cluster.total_ranks})"
        )
