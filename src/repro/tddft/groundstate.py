"""Imaginary-time ground-state solver — the SCF-loop analog.

The paper's Figure 4 wraps the Slater-determinant pattern in a
``while !SCF_converged`` loop: RT-TDDFT "starts from an initial DFT ground
state calculation".  This module supplies that starting point numerically
with the standard imaginary-time (diffusion) method: replacing
``t -> -i tau`` turns the unitary propagator into ``exp(-H tau)``, which
damps every component by ``exp(-E tau)`` — repeated application plus
re-orthonormalization converges the band set to the lowest eigenstates of
``H = T + V``.

Each iteration is, computationally, exactly the tuned pipeline again:
backward FFT -> pointwise potential -> forward FFT -> pointwise kinetic
-> back, batched over bands, plus a band-basis orthonormalization (the
dense-linear-algebra reduction QBox's loop performs).

Tested invariants:

* the total energy decreases monotonically (up to roundoff),
* the converged bands are orthonormal,
* converged bands satisfy the eigenvalue equation (small residual
  ``||H psi - E psi||``),
* for a constant potential the ground state is the uniform G = 0 mode
  with energy exactly ``V``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from ..profiling import RegionTimer
from .numeric import NumericSlaterApp
from .propagator import SplitOperatorPropagator

__all__ = ["ImaginaryTimeSolver", "GroundStateResult"]


@dataclass
class GroundStateResult:
    """Outcome of an imaginary-time relaxation.

    Attributes
    ----------
    coefficients:
        Converged G-sphere band coefficients (orthonormal).
    band_energies:
        Rayleigh quotients ``<psi_b|H|psi_b>`` per band, ascending.
    energy_history:
        Total energy per iteration (monotone decreasing).
    residuals:
        Per-band eigenvalue residuals ``||H psi - E psi||`` at the end.
    iterations:
        Imaginary-time steps taken.
    converged:
        Whether the energy tolerance was met before the iteration cap.
    """

    coefficients: np.ndarray
    band_energies: np.ndarray
    energy_history: np.ndarray
    residuals: np.ndarray
    iterations: int
    converged: bool
    timings: Any


class ImaginaryTimeSolver:
    """Ground-state solver on top of the split-operator machinery.

    Parameters
    ----------
    app:
        The numeric workload (grid, potential, initial coefficients —
        used as the starting guess).
    dtau:
        Imaginary-time step.  Larger converges faster but the
        second-order Trotter splitting degrades; 0.05-0.2 works for the
        toy grids used here.
    """

    def __init__(self, app: NumericSlaterApp, *, dtau: float = 0.1):
        if dtau <= 0:
            raise ValueError("dtau must be positive")
        self.app = app
        self.dtau = float(dtau)
        prop = SplitOperatorPropagator(app, dt=dtau)
        self.kinetic = prop.kinetic
        # Imaginary time: the phases become real decay factors.
        self._kin_decay = np.exp(-dtau * self.kinetic)
        self._pot_half_decay = np.exp(-(dtau / 2.0) * app.potential)

    # ------------------------------------------------------------------
    def _apply_step(self, boxes: np.ndarray, batch: int, timer: RegionTimer) -> np.ndarray:
        """exp(-H dtau) via Strang splitting, batched over bands."""
        out = np.empty_like(boxes)
        for lo in range(0, boxes.shape[0], batch):
            g = boxes[lo : lo + batch]
            with timer.region("fft_backward"):
                psi_r = np.fft.ifftn(g, axes=(1, 2, 3))
            with timer.region("potential_half"):
                psi_r *= self._pot_half_decay
            with timer.region("fft_forward"):
                psi_g = np.fft.fftn(psi_r, axes=(1, 2, 3))
            with timer.region("kinetic"):
                psi_g *= self._kin_decay
            with timer.region("fft_backward"):
                psi_r = np.fft.ifftn(psi_g, axes=(1, 2, 3))
            with timer.region("potential_half"):
                psi_r *= self._pot_half_decay
            with timer.region("fft_forward"):
                out[lo : lo + batch] = np.fft.fftn(psi_r, axes=(1, 2, 3))
        return out

    def _orthonormalize(self, boxes: np.ndarray) -> np.ndarray:
        """Löwdin (symmetric) orthonormalization in the band basis."""
        nb = boxes.shape[0]
        flat = boxes.reshape(nb, -1)
        overlap = flat @ flat.conj().T  # (nb, nb) Gram matrix
        evals, evecs = np.linalg.eigh(overlap)
        evals = np.maximum(evals, 1e-300)
        inv_sqrt = (evecs * (evals ** -0.5)) @ evecs.conj().T
        return (inv_sqrt @ flat).reshape(boxes.shape)

    def _apply_h(self, boxes: np.ndarray) -> np.ndarray:
        """H|psi> on the full grid (for energies and residuals)."""
        psi_r = np.fft.ifftn(boxes, axes=(1, 2, 3))
        vpsi = np.fft.fftn(psi_r * self.app.potential, axes=(1, 2, 3))
        return self.kinetic[None] * boxes + vpsi

    def band_energies(self, boxes: np.ndarray) -> np.ndarray:
        """Rayleigh quotients per band (assumes normalized bands)."""
        h = self._apply_h(boxes)
        nb = boxes.shape[0]
        flat, hflat = boxes.reshape(nb, -1), h.reshape(nb, -1)
        return np.real(np.sum(flat.conj() * hflat, axis=1))

    def _rayleigh_ritz(self, boxes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Subspace diagonalization: rotate the bands into the eigenbasis
        of the projected Hamiltonian ``<i|H|j>``.

        Imaginary time + orthonormalization converges the *span* of the
        bands to the lowest eigenspace but leaves an arbitrary rotation
        within it; this step (what plane-wave DFT codes run as "subspace
        diagonalization") resolves the individual eigenstates.
        """
        h = self._apply_h(boxes)
        nb = boxes.shape[0]
        flat, hflat = boxes.reshape(nb, -1), h.reshape(nb, -1)
        h_band = flat.conj() @ hflat.T
        h_band = (h_band + h_band.conj().T) / 2.0
        evals, evecs = np.linalg.eigh(h_band)
        rotated = (evecs.T.conj() @ flat).reshape(boxes.shape)
        return rotated, evals

    # ------------------------------------------------------------------
    def solve(
        self,
        *,
        max_iterations: int = 200,
        tol: float = 1e-8,
        config: Mapping[str, Any] | int | None = None,
    ) -> GroundStateResult:
        """Relax the band set to the lowest eigenstates.

        ``config`` carries the tuned ``nbatches`` as everywhere else.
        Convergence: relative total-energy change below ``tol``.
        """
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if config is None:
            batch = 1
        elif isinstance(config, int):
            batch = config
        else:
            batch = int(config["nbatches"])
        batch = max(1, min(batch, self.app.nbands))

        timer = RegionTimer()
        boxes = self.app._scatter(self.app.coefficients)
        boxes = self._orthonormalize(boxes)

        history = []
        converged = False
        for it in range(max_iterations):
            boxes = self._apply_step(boxes, batch, timer)
            with timer.region("orthonormalize"):
                boxes = self._orthonormalize(boxes)
            energy = float(np.sum(self.band_energies(boxes)))
            history.append(energy)
            if it > 0 and abs(history[-2] - energy) <= tol * max(1.0, abs(energy)):
                converged = True
                break

        with timer.region("rayleigh_ritz"):
            boxes, energies = self._rayleigh_ritz(boxes)

        h = self._apply_h(boxes)
        nb = boxes.shape[0]
        res = np.linalg.norm(
            (h - energies[:, None, None, None] * boxes).reshape(nb, -1), axis=1
        )
        return GroundStateResult(
            coefficients=boxes[:, self.app.g_mask],
            band_energies=energies,
            energy_history=np.array(history),
            residuals=res,
            iterations=len(history),
            converged=converged,
            timings=timer.report(),
        )
