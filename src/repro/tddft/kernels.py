"""Analytic cost models for the Slater-determinant GPU kernels.

The GPU offload introduces five tunable CUDA kernels plus the (untunable)
cuFFT library call and the PCIe memcpys.  Per the paper, "each kernel can
be tuned with three different parameters ... loop unrolling factor,
threadblock size, and number of active threadblocks per SM"; the default-
configuration profile is cuFFT 61.4% of GPU compute, cuZcopy 14.2%,
cuVec2Zvec 12.4%, cuPairwise 4.9%, cuDscal 4.2%, cuZvec2Vec 2.9%.  The
``bytes_per_element`` coefficients below reproduce those shares at the
default configuration.

Model for a tunable, bandwidth-bound elementwise kernel over ``n``
elements:

.. code-block:: text

   t = launch + max(t_mem, t_flop) * quantization * (1 + cache_penalty)
   t_mem  = bytes_per_element * n / (BW * occ_eff * unroll_eff * tb_eff)

* ``occ_eff``      — occupancy-dependent achievable bandwidth fraction
  (:meth:`repro.tddft.gpu.Occupancy.memory_efficiency`),
* ``unroll_eff``   — ILP gain up to the kernel's preferred unroll, then a
  register-pressure penalty (quadratic in log2 distance),
* ``tb_eff``       — block-size efficiency peaked at the kernel's
  preferred threadblock size (scheduling overhead below it, tail effects
  above),
* ``quantization`` — wave rounding: ``ceil(blocks / blocks_per_wave)``
  full waves must run even when the last is nearly empty,
* ``cache_penalty``— L2 pollution inflicted by a *concurrent* kernel's
  footprint, scaled by this kernel's ``cache_sensitivity``.  This term is
  the paper's "GPU-cache effects" coupling through which Group 2's
  cuPairwise threadblock parameters degrade Group 3's transpose kernels.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .gpu import GpuSpec

__all__ = [
    "KernelSpec",
    "SLATER_KERNELS",
    "fft3d_time",
    "memcpy_time",
    "pair_cache_pollution",
]


@dataclass(frozen=True)
class KernelSpec:
    """Cost-model coefficients for one tunable GPU kernel.

    Attributes
    ----------
    bytes_per_element:
        DRAM traffic per wavefunction element (reads + writes).
    flops_per_element:
        FP64 operations per element (these kernels are memory-bound, so
        this rarely binds).
    u_opt / tb_opt:
        Preferred unroll factor and threadblock size (kernel-specific
        sweet spots the tuner must find).
    unroll_penalty / tb_penalty:
        Quadratic (in log2 distance) efficiency-loss coefficients.
    cache_sensitivity:
        How strongly L2 pollution degrades this kernel (strided/transpose
        access patterns suffer; pure streaming ones do not).
    """

    name: str
    bytes_per_element: float
    flops_per_element: float
    u_opt: int
    tb_opt: int
    unroll_penalty: float = 0.08
    tb_penalty: float = 0.035
    cache_sensitivity: float = 0.0

    def __post_init__(self):
        if self.bytes_per_element <= 0:
            raise ValueError("bytes_per_element must be positive")
        if self.u_opt < 1 or self.tb_opt < 1:
            raise ValueError("u_opt and tb_opt must be >= 1")
        if min(self.unroll_penalty, self.tb_penalty, self.cache_sensitivity) < 0:
            raise ValueError("penalty coefficients must be >= 0")

    # ------------------------------------------------------------------
    def unroll_efficiency(self, u: int) -> float:
        """ILP/register-pressure efficiency of unroll factor ``u``."""
        if u < 1:
            raise ValueError("unroll factor must be >= 1")
        d = math.log2(u) - math.log2(self.u_opt)
        return 1.0 / (1.0 + self.unroll_penalty * d * d)

    def tb_efficiency(self, tb: int) -> float:
        """Block-size efficiency of threadblock size ``tb``."""
        if tb < 1:
            raise ValueError("threadblock size must be >= 1")
        d = math.log2(tb) - math.log2(self.tb_opt)
        return 1.0 / (1.0 + self.tb_penalty * d * d)

    def runtime(
        self,
        gpu: GpuSpec,
        n_elements: int,
        u: int,
        tb: int,
        tb_sm: int,
        *,
        cache_pollution: float = 0.0,
    ) -> float:
        """Seconds for one launch over ``n_elements`` elements.

        ``cache_pollution`` in [0, 1] is the fraction of L2 occupied by a
        concurrent kernel's working set (see
        :func:`pair_cache_pollution`).
        """
        if n_elements < 1:
            raise ValueError("n_elements must be >= 1")
        if not (0.0 <= cache_pollution <= 1.0):
            raise ValueError("cache_pollution must be in [0, 1]")
        occ = gpu.occupancy(tb, tb_sm)
        eff = (
            occ.memory_efficiency()
            * self.unroll_efficiency(u)
            * self.tb_efficiency(tb)
        )
        t_mem = self.bytes_per_element * n_elements / (gpu.memory_bandwidth * eff)
        t_flop = self.flops_per_element * n_elements / (gpu.fp64_tflops * 1e12 * eff)

        # Wave quantization: elements/thread = u, threads/block = tb.
        blocks = math.ceil(n_elements / (tb * u))
        blocks_per_wave = tb_sm * gpu.sms
        waves = math.ceil(blocks / blocks_per_wave)
        quant = waves * blocks_per_wave / max(blocks, 1)

        penalty = 1.0 + self.cache_sensitivity * cache_pollution
        return gpu.kernel_launch_overhead + max(t_mem, t_flop) * quant * penalty


# Coefficients calibrated so the default configuration reproduces the
# paper's GPU-time profile (cuFFT 61.4 / cuZcopy 14.2 / cuVec2Zvec 12.4 /
# cuPairwise 4.9 / cuDscal 4.2 / cuZvec2Vec 2.9, Section V-A).  ZCOPY's
# figure covers its two call sites (backward transpose in Group 1, forward
# transpose&padding in Group 3 — the padded forward pass moves more bytes);
# DSCAL's covers its two scaling passes in Group 3.
SLATER_KERNELS: dict[str, KernelSpec] = {
    "vec": KernelSpec(
        name="cuVec2Zvec",
        bytes_per_element=48.0,
        flops_per_element=2.0,
        u_opt=4,
        tb_opt=256,
        cache_sensitivity=0.0,
    ),
    "zcopy": KernelSpec(
        name="cuZcopy",
        bytes_per_element=18.0,
        flops_per_element=0.0,
        u_opt=2,
        tb_opt=128,
        # Transpose & padding: strided accesses, badly hurt by pollution.
        cache_sensitivity=2.8,
    ),
    "pair": KernelSpec(
        name="cuPairwise",
        bytes_per_element=20.0,
        flops_per_element=6.0,
        u_opt=2,
        tb_opt=512,
        cache_sensitivity=0.0,
    ),
    "dscal": KernelSpec(
        name="cuDscal",
        bytes_per_element=7.0,
        flops_per_element=1.0,
        u_opt=8,
        tb_opt=256,
        cache_sensitivity=2.2,
    ),
    "zvec": KernelSpec(
        name="cuZvec2Vec",
        bytes_per_element=4.0,
        flops_per_element=2.0,
        u_opt=4,
        tb_opt=256,
        cache_sensitivity=1.2,
    ),
}


def fft3d_time(gpu: GpuSpec, fft_size: int, batch: int) -> float:
    """One batched cuFFT 3D Z2Z transform: ``batch`` transforms of
    ``fft_size`` double-complex points.

    ``5 N log2 N`` flops per transform at an effective FP64 FFT
    throughput of ~2 TFLOP/s, with a mild batching ramp (plan reuse and
    better SM utilization).  Per the paper, "the only tuning parameters
    impacting the cuFFT routine are nbatches and nstreams" — no u/tb/tb_sm
    dependence.
    """
    if fft_size < 2 or batch < 1:
        raise ValueError("fft_size must be >= 2 and batch >= 1")
    flops = 5.0 * fft_size * math.log2(fft_size) * batch
    batch_eff = (batch + 1.0) / (batch + 2.0)  # 0.67 at b=1 -> ~1 large b
    throughput = 2.0e12 * batch_eff
    return gpu.kernel_launch_overhead + flops / throughput


def memcpy_time(
    bytes_total: float, *, bandwidth: float = 21.0e9, latency: float = 10e-6
) -> float:
    """One PCIe transfer (H2D or D2H)."""
    if bytes_total < 0:
        raise ValueError("bytes_total must be >= 0")
    if bytes_total == 0:
        return 0.0
    return latency + bytes_total / bandwidth


def pair_cache_pollution(
    gpu: GpuSpec, tb_pair: int, tb_sm_pair: int, *, bytes_per_thread: float = 256.0
) -> float:
    """Fraction of L2 the cuPairwise working set occupies, in [0, 1].

    ``tb_pair * tb_sm_pair`` active threads per SM, each touching
    ``bytes_per_thread`` of resident data across all SMs.  Because the
    pairwise product runs back-to-back with the Group-3 forward-FFT
    kernels (its output is their input, still resident in L2), a large
    footprint evicts the transpose kernels' tiles — the unexpected
    Group 2 -> Group 3 interdependence of Tables V/VI.
    """
    if tb_pair < 1 or tb_sm_pair < 1:
        raise ValueError("threadblock parameters must be >= 1")
    footprint = tb_pair * tb_sm_pair * gpu.sms * bytes_per_thread
    return min(1.0, footprint / gpu.l2_bytes)
