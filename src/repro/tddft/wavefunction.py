"""The 4-D wavefunction and its distribution over the QBox MPI grid.

Paper Figure 3: "this framework represents each wavefunction by a
4-dimensional, double-complex matrix, which is defined by spin, k-point,
state-bands, and plane-wave (G-vector) dimensions ... The parallelization
in QBox involves distributing the wavefunction computation among MPI
tasks, which creates a four-dimensional MPI grid of
``nspb x nkpb x nstb x ngb``".

:class:`DistributedWavefunction` implements that mapping: block
distribution of every dimension over the corresponding grid factor, owner
lookup, per-rank local extents (including the ragged tail blocks of
non-divisible partitions), and memory accounting.  A rank's local block
can be materialized as a numpy array for numeric experiments; the
distribution arithmetic itself never allocates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..mpisim.comm import CartGrid
from .systems import PhysicalSystem

__all__ = ["DistributedWavefunction", "LocalBlock"]

_BYTES_PER_ELEMENT = 16  # double complex


def _block_bounds(extent: int, parts: int, index: int) -> tuple[int, int]:
    """[lo, hi) bounds of block ``index`` when ``extent`` elements are
    block-distributed over ``parts`` (first blocks one larger on
    remainders — the standard ragged block distribution)."""
    if parts < 1 or not (0 <= index < parts):
        raise ValueError(f"invalid block index {index} of {parts}")
    base, rem = divmod(extent, parts)
    lo = index * base + min(index, rem)
    hi = lo + base + (1 if index < rem else 0)
    return lo, hi


@dataclass(frozen=True)
class LocalBlock:
    """One rank's share of the wavefunction: slices per dimension."""

    spin: slice
    kpoint: slice
    band: slice
    gvector: slice

    @property
    def shape(self) -> tuple[int, int, int, int]:
        def length(s: slice) -> int:
            return max(0, s.stop - s.start)

        return (
            length(self.spin),
            length(self.kpoint),
            length(self.band),
            length(self.gvector),
        )

    @property
    def n_elements(self) -> int:
        return int(np.prod(self.shape))

    @property
    def nbytes(self) -> int:
        return self.n_elements * _BYTES_PER_ELEMENT


class DistributedWavefunction:
    """Block distribution of a physical system's wavefunction over a grid.

    Parameters
    ----------
    system:
        Fixes the four dimension extents (spin, k-point, band, G-vector).
    grid:
        The ``nspb x nkpb x nstb x ngb`` process grid.  Grid factors may
        exceed their extent (idle ranks own empty blocks), matching the
        work-unbalance cases the paper's expert constraints exclude.
    """

    def __init__(self, system: PhysicalSystem, grid: CartGrid):
        self.system = system
        self.grid = grid

    # ------------------------------------------------------------------
    @property
    def global_shape(self) -> tuple[int, int, int, int]:
        s = self.system
        return (s.nspin, s.nkpoints, s.nbands, s.fft_size)

    @property
    def global_nbytes(self) -> int:
        return int(np.prod(self.global_shape)) * _BYTES_PER_ELEMENT

    # ------------------------------------------------------------------
    def local_block(self, rank: int) -> LocalBlock:
        """The block of the wavefunction owned by ``rank``."""
        s, k, b, g = self.grid.coords_of(rank)
        extents = self.global_shape
        parts = (self.grid.nspb, self.grid.nkpb, self.grid.nstb, self.grid.ngb)
        bounds = [
            _block_bounds(extent, p, i)
            for extent, p, i in zip(extents, parts, (s, k, b, g))
        ]
        return LocalBlock(*(slice(lo, hi) for lo, hi in bounds))

    def owner_of(self, spin: int, kpoint: int, band: int, gvector: int = 0) -> int:
        """Rank owning a global wavefunction coordinate."""
        extents = self.global_shape
        coords = (spin, kpoint, band, gvector)
        parts = (self.grid.nspb, self.grid.nkpb, self.grid.nstb, self.grid.ngb)
        idx = []
        for c, extent, p in zip(coords, extents, parts):
            if not (0 <= c < extent):
                raise ValueError(f"coordinate {c} outside extent {extent}")
            base, rem = divmod(extent, p)
            # Invert the ragged block bounds.
            cut = rem * (base + 1)
            if c < cut:
                idx.append(c // (base + 1) if base + 1 > 0 else 0)
            else:
                idx.append(rem + (c - cut) // base if base > 0 else p - 1)
        return self.grid.rank_of(*idx)

    def iter_blocks(self) -> Iterator[tuple[int, LocalBlock]]:
        for rank in range(self.grid.size):
            yield rank, self.local_block(rank)

    # ------------------------------------------------------------------
    def is_complete_partition(self) -> bool:
        """Every element owned exactly once (volume check + ownership
        consistency on the block corners)."""
        total = sum(block.n_elements for _, block in self.iter_blocks())
        if total != int(np.prod(self.global_shape)):
            return False
        for rank, block in self.iter_blocks():
            if block.n_elements == 0:
                continue
            corner = (
                block.spin.start,
                block.kpoint.start,
                block.band.start,
                block.gvector.start,
            )
            if self.owner_of(*corner) != rank:
                return False
        return True

    def max_local_nbytes(self) -> int:
        """Memory footprint of the busiest rank."""
        return max(block.nbytes for _, block in self.iter_blocks())

    def imbalance(self) -> float:
        """max/mean local element count (1.0 = perfectly balanced)."""
        counts = [block.n_elements for _, block in self.iter_blocks()]
        mean = float(np.mean(counts))
        return max(counts) / mean if mean > 0 else math.inf

    def allocate_local(self, rank: int, *, fill: complex = 0.0) -> np.ndarray:
        """Materialize ``rank``'s local block as a complex array."""
        return np.full(self.local_block(rank).shape, fill, dtype=complex)
