"""Numeric RT-TDDFT mini-app: the Slater-determinant pattern, for real.

Everything else in :mod:`repro.tddft` is a *performance model*; this module
actually computes the dominant numerical pattern of Figure 4 with numpy —
a miniature of QBox's energy-potential evaluation:

1. scatter each band's G-vector coefficients into the 3D FFT box
   (the ``cuVec2Zvec`` analog),
2. backward 3D FFT to real space,
3. pairwise multiply with the local potential ``V(r)``
   (``cuPairwise``),
4. forward 3D FFT and normalization (``cuFFT`` + ``cuDscal``),
5. gather back to G-space (``cuZvec2Vec``),
6. accumulate the energy expectation and density (``daxpy`` +
   reductions).

Bands are processed in batches (the ``nbatches`` tuning parameter) using
vectorized numpy over a leading batch axis — per the HPC-Python guidance,
no Python loop over grid points, views instead of copies where possible.
Real wall-clock per region is collected with
:class:`repro.profiling.RegionTimer`, so this mini-app doubles as a
*measured* (not simulated) tuning objective for the examples.

Physics sanity properties (tested):
* Parseval: the density integrates to the number of bands (normalized
  orbitals),
* the energy expectation matches the direct real-space integral,
* a constant potential yields exactly ``V * nbands``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from ..profiling import RegionTimer

__all__ = ["NumericSlaterApp", "NumericResult"]


@dataclass
class NumericResult:
    """Output of one numeric Slater evaluation.

    Attributes
    ----------
    energy:
        ``sum_b <psi_b | V | psi_b>`` (real part).
    density:
        Real-space density ``sum_b |psi_b(r)|^2`` on the grid.
    hpsi_g:
        ``V |psi_b>`` back in G-space, per band (the quantity the real
        code feeds into the time propagator).
    wall_time:
        Measured seconds for the full pipeline.
    timings:
        Per-region timing report.
    """

    energy: float
    density: np.ndarray
    hpsi_g: np.ndarray
    wall_time: float
    timings: "Any"


class NumericSlaterApp:
    """A real (computed, not simulated) Slater-determinant workload.

    Parameters
    ----------
    grid_shape:
        3D FFT box, e.g. ``(24, 24, 24)``.  Keep modest: the objective is
        evaluated many times during tuning demos.
    nbands:
        Number of wavefunction bands.
    random_state:
        Seed for the synthetic wavefunctions and potential.

    The tunable surface is ``nbatches`` (bands per vectorized batch) —
    small batches pay Python/FFT-setup overhead per invocation, large
    batches blow past cache capacity; the sweet spot is machine-dependent,
    which is exactly what makes it a legitimate (mini) tuning target.
    """

    def __init__(
        self,
        grid_shape: tuple[int, int, int] = (24, 24, 24),
        nbands: int = 16,
        *,
        random_state: int | np.random.Generator | None = None,
    ):
        if len(grid_shape) != 3 or any(g < 2 for g in grid_shape):
            raise ValueError("grid_shape must be three dimensions >= 2")
        if nbands < 1:
            raise ValueError("nbands must be >= 1")
        self.grid_shape = tuple(int(g) for g in grid_shape)
        self.nbands = int(nbands)
        self.npoints = int(np.prod(self.grid_shape))
        rng = (
            random_state
            if isinstance(random_state, np.random.Generator)
            else np.random.default_rng(random_state)
        )

        # G-sphere mask: keep the low-|G| eighth of the box (the compact
        # plane-wave representation; everything outside is zero padding).
        freqs = [np.fft.fftfreq(g) for g in self.grid_shape]
        g2 = (
            freqs[0][:, None, None] ** 2
            + freqs[1][None, :, None] ** 2
            + freqs[2][None, None, :] ** 2
        )
        cutoff = np.quantile(g2, 0.125)
        self.g_mask = g2 <= cutoff
        self.n_gvectors = int(self.g_mask.sum())

        # Normalized random band coefficients on the sphere.
        coeffs = rng.normal(size=(self.nbands, self.n_gvectors)) + 1j * rng.normal(
            size=(self.nbands, self.n_gvectors)
        )
        coeffs /= np.linalg.norm(coeffs, axis=1, keepdims=True)
        self.coefficients = coeffs

        # A smooth positive local potential V(r).
        x, y, z = np.meshgrid(
            *[np.linspace(0, 2 * np.pi, g, endpoint=False) for g in self.grid_shape],
            indexing="ij",
        )
        self.potential = 1.5 + np.cos(x) * np.sin(y) + 0.5 * np.cos(z)

    # ------------------------------------------------------------------
    def set_constant_potential(self, value: float) -> None:
        """Replace V(r) with a constant (used by the physics sanity
        tests)."""
        self.potential = np.full(self.grid_shape, float(value))

    # ------------------------------------------------------------------
    def _scatter(self, batch_coeffs: np.ndarray) -> np.ndarray:
        """G-sphere coefficients -> zero-padded FFT boxes (vec2zvec)."""
        boxes = np.zeros((batch_coeffs.shape[0],) + self.grid_shape, dtype=complex)
        boxes[:, self.g_mask] = batch_coeffs
        return boxes

    def _gather(self, boxes: np.ndarray) -> np.ndarray:
        """FFT boxes -> G-sphere coefficients (zvec2vec)."""
        return boxes[:, self.g_mask]

    def run(self, config: Mapping[str, Any] | int | None = None) -> NumericResult:
        """Execute one Slater evaluation.

        ``config`` may be a configuration dict with an ``nbatches`` key
        (so the app plugs into the tuning engines directly) or a plain
        int batch size; ``None`` means one band per invocation.
        """
        if config is None:
            nbatches = 1
        elif isinstance(config, int):
            nbatches = config
        else:
            nbatches = int(config["nbatches"])
        if nbatches < 1:
            raise ValueError("nbatches must be >= 1")
        nbatches = min(nbatches, self.nbands)

        timer = RegionTimer()
        # Unitary FFT scaling: ifftn carries 1/N, so multiply by sqrt(N)
        # going backward and divide by sqrt(N) going forward.  With this
        # convention the discrete inner products need no extra factors.
        sqrt_n = math.sqrt(self.npoints)
        density = np.zeros(self.grid_shape)
        hpsi = np.empty_like(self.coefficients)
        energy = 0.0

        import time as _time

        start = _time.perf_counter()
        for lo in range(0, self.nbands, nbatches):
            batch = self.coefficients[lo : lo + nbatches]
            with timer.region("vec2zvec"):
                boxes = self._scatter(batch)
            with timer.region("fft_backward"):
                psi_r = np.fft.ifftn(boxes, axes=(1, 2, 3)) * sqrt_n
            with timer.region("density"):
                density += np.sum(np.abs(psi_r) ** 2, axis=0)
            with timer.region("pairwise"):
                vpsi_r = psi_r * self.potential  # broadcast over bands
            with timer.region("energy"):
                energy += float(np.real(np.sum(np.conj(psi_r) * vpsi_r)))
            with timer.region("fft_forward"):
                vpsi_g = np.fft.fftn(vpsi_r, axes=(1, 2, 3)) / sqrt_n
            with timer.region("zvec2vec"):
                hpsi[lo : lo + nbatches] = self._gather(vpsi_g)
        wall = _time.perf_counter() - start

        return NumericResult(
            energy=energy,
            density=density,
            hpsi_g=hpsi,
            wall_time=wall,
            timings=timer.report(),
        )

    # ------------------------------------------------------------------
    def objective(self, config: Mapping[str, Any]) -> float:
        """Tuning objective: measured wall-clock of one evaluation."""
        return self.run(config).wall_time
