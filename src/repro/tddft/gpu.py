"""GPU architecture model (NVIDIA A100) and occupancy calculator.

The paper's GPU tuning parameters are constrained by the A100: "up to 32
active threadblocks per SM and up to 32 warps per threadblock", with the
validity rule ``tb * tb_sm <= max active threads per SM``.  This module
encodes the architecture as data and provides the occupancy arithmetic the
kernel cost models (:mod:`repro.tddft.kernels`) build on.

The occupancy model is the standard CUDA one restricted to the resources
our tuning space exposes: threads and blocks per SM (register/shared-memory
pressure enters indirectly through the unroll-factor penalty in the kernel
models).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GpuSpec", "a100", "Occupancy"]


@dataclass(frozen=True)
class GpuSpec:
    """One GPU's architectural limits and throughputs.

    Attributes
    ----------
    sms:
        Streaming multiprocessors (A100: 108).
    warp_size:
        Threads per warp (32).
    max_threads_per_sm:
        Hardware active-thread bound per SM (A100: 2048).
    max_blocks_per_sm:
        Active-threadblock bound per SM (A100: 32).
    max_warps_per_block:
        Per-block warp bound (A100: 32 -> 1024 threads/block).
    memory_bandwidth:
        HBM2e bandwidth (1555 GB/s).
    l2_bytes:
        L2 cache size (40 MB) — the resource behind the paper's
        "GPU-cache effects" interdependence between kernel groups.
    fp64_tflops:
        Peak FP64 (9.7 TFLOP/s; 19.5 with tensor cores, not used here).
    kernel_launch_overhead:
        Host-side cost per kernel launch — the term batching amortizes.
    memory_bytes:
        Device memory (40 GB HBM on the Perlmutter A100s).
    """

    name: str = "gpu"
    sms: int = 108
    warp_size: int = 32
    max_threads_per_sm: int = 2048
    max_blocks_per_sm: int = 32
    max_warps_per_block: int = 32
    memory_bandwidth: float = 1555.0e9
    l2_bytes: int = 40 * 1024 * 1024
    fp64_tflops: float = 9.7
    kernel_launch_overhead: float = 5.0e-6
    memory_bytes: int = 40 * 1024**3

    def __post_init__(self):
        if min(self.sms, self.warp_size, self.max_threads_per_sm, self.max_blocks_per_sm) < 1:
            raise ValueError("invalid GPU limits")
        if self.memory_bandwidth <= 0 or self.fp64_tflops <= 0:
            raise ValueError("throughputs must be positive")

    # ------------------------------------------------------------------
    @property
    def max_threads_per_block(self) -> int:
        return self.warp_size * self.max_warps_per_block

    def threadblock_valid(self, tb: int, tb_sm: int) -> bool:
        """The paper's validity rule: ``tb * tb_sm`` must not exceed the
        max active threads per SM, tb must be a positive warp multiple
        within the per-block bound, and tb_sm within the block bound."""
        return (
            tb >= self.warp_size
            and tb % self.warp_size == 0
            and tb <= self.max_threads_per_block
            and 1 <= tb_sm <= self.max_blocks_per_sm
            and tb * tb_sm <= self.max_threads_per_sm
        )

    def occupancy(self, tb: int, tb_sm: int) -> "Occupancy":
        """Occupancy achieved by ``tb`` threads/block x ``tb_sm``
        blocks/SM."""
        if not self.threadblock_valid(tb, tb_sm):
            raise ValueError(
                f"invalid threadblock configuration tb={tb}, tb_sm={tb_sm} "
                f"for {self.name}"
            )
        active = tb * tb_sm
        return Occupancy(
            active_threads_per_sm=active,
            fraction=active / self.max_threads_per_sm,
            active_blocks_per_sm=tb_sm,
            warps_per_block=tb // self.warp_size,
        )

    def tb_values(self) -> list[int]:
        """Legal threadblock sizes: warp multiples up to the block bound
        (the paper's 32 values for the A100)."""
        return [self.warp_size * w for w in range(1, self.max_warps_per_block + 1)]

    def tb_sm_values(self) -> list[int]:
        """Legal blocks-per-SM values (the paper's 32 values)."""
        return list(range(1, self.max_blocks_per_sm + 1))


@dataclass(frozen=True)
class Occupancy:
    """Result of the occupancy calculation.

    ``fraction`` in (0, 1]; ``memory_efficiency`` maps it onto achievable
    memory throughput with the usual saturating shape — bandwidth-bound
    kernels reach near-peak at roughly half occupancy, and very low
    occupancy cannot cover DRAM latency.
    """

    active_threads_per_sm: int
    fraction: float
    active_blocks_per_sm: int
    warps_per_block: int

    def memory_efficiency(self) -> float:
        """Fraction of peak memory bandwidth this occupancy sustains.

        Saturating curve ``f = x / (x + c)`` normalized to 1 at full
        occupancy, with ``c = 0.18`` putting ~80% of peak at 50%
        occupancy — the empirically typical shape for streaming kernels.
        """
        c = 0.18
        return (self.fraction / (self.fraction + c)) * (1.0 + c)


def a100() -> GpuSpec:
    """The NVIDIA A100-40GB as installed in Perlmutter GPU nodes."""
    return GpuSpec(name="a100")
