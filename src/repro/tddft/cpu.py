"""The CPU MPI path of QBox — the baseline the GPU offload replaces.

The paper motivates the GPU port by profiling the CPU code: "around
40-50% of the runtime is attributed to communication primitives.  Notably,
most of this overhead is incurred during a matrix transpose&padding step
when calculating 3D-FFTs among ngb MPI tasks".  This module models that
CPU path so the motivation is reproducible:

* each band's 3D FFT is distributed over the ``ngb`` ranks of the QBox
  grid: local 2D FFTs on slabs, a transpose&padding alltoall among the
  ``ngb`` group (:func:`repro.mpisim.transpose_padding_time`), local 1D
  FFTs, and the reverse on the way back,
* elementwise work (vec2zvec, pairwise, scaling) runs at the per-rank
  share of node memory bandwidth,
* end-of-iteration reductions are allreduces over the whole grid.

Setting ``ngb = 1`` reproduces the GPU port's key structural change — the
distributed transpose degenerates to a local repack, which is exactly why
"the MPI nqb parameter is set to nqb = 1 in the GPU version".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from ..mpisim.cluster import ClusterSpec
from ..mpisim.collectives import allreduce_time, transpose_padding_time
from ..mpisim.comm import CartGrid
from .systems import PhysicalSystem

__all__ = ["CpuRTTDDFT", "CpuProfile"]

# Effective per-core throughput for the FFT butterflies (FP64, cache
# resident): a few GFLOP/s on an EPYC core.
_CORE_FFT_GFLOPS = 3.0e9
# Elementwise traffic per element per pass through the pipeline (bytes).
_ELEMENTWISE_BYTES = 110.0


@dataclass(frozen=True)
class CpuProfile:
    """Runtime decomposition of one Slater pass on the CPU path."""

    compute: float
    communication: float

    @property
    def total(self) -> float:
        return self.compute + self.communication

    @property
    def communication_fraction(self) -> float:
        return self.communication / self.total if self.total > 0 else 0.0


class CpuRTTDDFT:
    """Performance model of the CPU (pre-offload) QBox RT-TDDFT path.

    Parameters
    ----------
    system:
        Physical input.
    cluster:
        Machine model.  The CPU path packs many MPI ranks per node
        (``ranks_per_node`` of the spec; the paper's CPU runs use all 64
        cores, unlike the 4-GPU-rank layout).
    """

    def __init__(self, system: PhysicalSystem, cluster: ClusterSpec):
        self.system = system
        self.cluster = cluster

    # ------------------------------------------------------------------
    def _per_rank_bandwidth(self) -> float:
        return self.cluster.node.memory_bandwidth / self.cluster.ranks_per_node

    def fft_compute_time(self, bands: int) -> float:
        """Local FFT flops for ``bands`` bands, split over the ngb group
        (each rank transforms its slab)."""
        flops = 4 * 5.0 * self.system.fft_size * math.log2(self.system.fft_size)
        return bands * flops / _CORE_FFT_GFLOPS

    def elementwise_time(self, bands: int) -> float:
        """Memory-bound elementwise passes for ``bands`` bands."""
        traffic = bands * self.system.fft_size * _ELEMENTWISE_BYTES
        return traffic / self._per_rank_bandwidth()

    def transpose_time(self, bands: int, ngb: int) -> float:
        """The transpose&padding steps (4 per band round trip) among the
        ``ngb`` FFT ranks."""
        slab_bytes = self.system.band_bytes
        per_band = 4 * transpose_padding_time(self.cluster, slab_bytes, ngb)
        return bands * per_band

    # ------------------------------------------------------------------
    def slater_profile(self, config: Mapping[str, int]) -> CpuProfile:
        """Compute/communication split of the Slater loop on the busiest
        rank for a QBox grid configuration (needs ``nspb, nkpb, nstb,
        ngb`` keys)."""
        grid = CartGrid(
            nspb=int(config["nspb"]),
            nkpb=int(config["nkpb"]),
            nstb=int(config["nstb"]),
            ngb=int(config.get("ngb", 1)),
        )
        if grid.size > self.cluster.total_ranks:
            raise ValueError(
                f"grid of {grid.size} ranks exceeds the allocation of "
                f"{self.cluster.total_ranks}"
            )
        spins, kpts, bands = grid.local_counts(
            self.system.nspin, self.system.nkpoints, self.system.nbands
        )
        work_units = spins * kpts
        # Each rank of the ngb group holds 1/ngb of every band's slab.
        compute = work_units * (
            self.fft_compute_time(bands) / grid.ngb
            + self.elementwise_time(bands) / grid.ngb
        )
        comm = work_units * self.transpose_time(bands, grid.ngb)
        comm += allreduce_time(
            self.cluster, self.system.band_bytes, min(grid.size, self.cluster.total_ranks)
        )
        return CpuProfile(compute=compute, communication=comm)

    def total_runtime(self, config: Mapping[str, int]) -> float:
        return self.slater_profile(config).total

    def best_balanced_grid(self, *, max_ranks: int | None = None) -> dict[str, int]:
        """Exhaustively pick the fastest balanced grid (small space:
        the CPU tuning baseline QBox users would run)."""
        limit = max_ranks if max_ranks is not None else self.cluster.total_ranks
        best_cfg, best_t = None, math.inf
        for nspb, nkpb, nstb in self.system.balanced_grids(limit):
            for ngb in (1, 2, 4, 8, 16, 32, 64):
                cfg = {"nspb": nspb, "nkpb": nkpb, "nstb": nstb, "ngb": ngb}
                if nspb * nkpb * nstb * ngb > limit:
                    continue
                t = self.total_runtime(cfg)
                if t < best_t:
                    best_cfg, best_t = cfg, t
        if best_cfg is None:
            raise RuntimeError("no feasible grid fits the allocation")
        return best_cfg
