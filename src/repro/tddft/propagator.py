"""Real-time propagation for the numeric mini-app.

RT-TDDFT "calculates the time-dependent wavefunction under the influence
of an external perturbation" by repeatedly applying the Slater-determinant
computational pattern (paper Figure 4's ``rtiterations`` outer loop).
This module closes that loop numerically with the standard split-operator
(Trotter) propagator for ``H = T + V``:

.. math::

   \\psi(t + dt) \\approx e^{-i V dt / 2}\\, e^{-i T dt}\\,
                          e^{-i V dt / 2}\\, \\psi(t)

* the kinetic factor runs in G-space (``T`` is diagonal there:
  ``T_k = |k|^2 / 2``),
* the potential halves run in real space (``V(r)`` diagonal),
* each step therefore exercises exactly the backward-FFT -> pointwise ->
  forward-FFT pattern the tuning study optimizes, with the same
  ``nbatches`` batching.

During propagation the state lives on the **full FFT grid** (each factor
is then an exact diagonal phase), so the propagator is exactly unitary:
norm is conserved to machine precision and the energy of a static
Hamiltonian is constant up to the O(dt^2) Trotter wobble — both are
tested invariants.  Only the *final* coefficients are projected back to
the compact G-sphere representation (the usual plane-wave truncation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from ..profiling import RegionTimer
from .numeric import NumericSlaterApp

__all__ = ["SplitOperatorPropagator", "PropagationResult"]


@dataclass
class PropagationResult:
    """Outcome of a real-time run.

    Attributes
    ----------
    coefficients:
        Final G-sphere band coefficients (projected from the grid).
    norms:
        Per-step total norm (stays at the initial value).
    energies:
        Per-step total energy ``<T> + <V>`` (conserved for static H).
    dipole:
        Per-step dipole-like observable ``sum_r x(r) n(r)`` — the signal
        RT-TDDFT extracts optical spectra from.
    wall_time:
        Measured seconds for the whole propagation.
    """

    coefficients: np.ndarray
    norms: np.ndarray
    energies: np.ndarray
    dipole: np.ndarray
    wall_time: float
    timings: Any

    @property
    def n_steps(self) -> int:
        return len(self.norms) - 1


class SplitOperatorPropagator:
    """Split-operator time stepper on top of :class:`NumericSlaterApp`.

    Parameters
    ----------
    app:
        The numeric workload (grid, potential, initial coefficients).
    dt:
        Time step.
    kick:
        Optional initial momentum kick ``exp(i kick x)`` applied to every
        band — the delta perturbation that starts an absorption-spectrum
        run.
    """

    def __init__(self, app: NumericSlaterApp, *, dt: float = 0.05, kick: float = 0.0):
        if dt <= 0:
            raise ValueError("dt must be positive")
        self.app = app
        self.dt = float(dt)

        # Kinetic phases on the full grid: k = 2*pi*fftfreq(n) per axis.
        freqs = [2.0 * math.pi * np.fft.fftfreq(g) for g in app.grid_shape]
        k2 = (
            freqs[0][:, None, None] ** 2
            + freqs[1][None, :, None] ** 2
            + freqs[2][None, None, :] ** 2
        )
        self.kinetic = 0.5 * k2
        self._kin_phase = np.exp(-1j * self.dt * self.kinetic)

        # Potential half-step phase in real space.
        self._pot_half_phase = np.exp(-1j * (self.dt / 2.0) * app.potential)

        # Dipole operator x(r) (first box coordinate, zero-mean).
        x = np.linspace(0, 2 * math.pi, app.grid_shape[0], endpoint=False)
        self._xgrid = np.broadcast_to(
            (x - x.mean())[:, None, None], app.grid_shape
        ).copy()

        self.kick = float(kick)

    # ------------------------------------------------------------------
    def initial_state(self) -> np.ndarray:
        """Initial full-grid G-space state (kicked if requested)."""
        boxes = self.app._scatter(self.app.coefficients)
        if self.kick == 0.0:
            return boxes
        psi_r = np.fft.ifftn(boxes, axes=(1, 2, 3))
        psi_r *= np.exp(1j * self.kick * self._xgrid)
        return np.fft.fftn(psi_r, axes=(1, 2, 3))

    def observables(self, boxes: np.ndarray) -> tuple[float, float, float]:
        """(norm, energy, dipole) of a full-grid G-space state."""
        psi_r = np.fft.ifftn(boxes, axes=(1, 2, 3)) * math.sqrt(self.app.npoints)
        dens = np.sum(np.abs(psi_r) ** 2, axis=0)
        norm = float(np.sum(np.abs(boxes) ** 2))
        e_pot = float(np.sum(self.app.potential * dens))
        e_kin = float(np.sum(self.kinetic[None] * np.abs(boxes) ** 2))
        dip = float(np.sum(self._xgrid * dens))
        return norm, e_kin + e_pot, dip

    # ------------------------------------------------------------------
    def step(self, boxes: np.ndarray, batch: int, timer: RegionTimer) -> np.ndarray:
        """One split-operator step over all bands, batched."""
        out = np.empty_like(boxes)
        for lo in range(0, boxes.shape[0], batch):
            g = boxes[lo : lo + batch]
            with timer.region("fft_backward"):
                psi_r = np.fft.ifftn(g, axes=(1, 2, 3))
            with timer.region("potential_half"):
                psi_r *= self._pot_half_phase
            with timer.region("fft_forward"):
                psi_g = np.fft.fftn(psi_r, axes=(1, 2, 3))
            with timer.region("kinetic"):
                psi_g *= self._kin_phase
            with timer.region("fft_backward"):
                psi_r = np.fft.ifftn(psi_g, axes=(1, 2, 3))
            with timer.region("potential_half"):
                psi_r *= self._pot_half_phase
            with timer.region("fft_forward"):
                out[lo : lo + batch] = np.fft.fftn(psi_r, axes=(1, 2, 3))
        return out

    def propagate(
        self,
        n_steps: int,
        *,
        config: Mapping[str, Any] | int | None = None,
    ) -> PropagationResult:
        """Run ``n_steps`` of real-time propagation.

        ``config`` carries the tuned ``nbatches`` (dict or int), exactly
        as for :meth:`NumericSlaterApp.run`.
        """
        if n_steps < 1:
            raise ValueError("n_steps must be >= 1")
        if config is None:
            batch = 1
        elif isinstance(config, int):
            batch = config
        else:
            batch = int(config["nbatches"])
        batch = max(1, min(batch, self.app.nbands))

        import time as _time

        timer = RegionTimer()
        boxes = self.initial_state()
        norms = np.empty(n_steps + 1)
        energies = np.empty(n_steps + 1)
        dipole = np.empty(n_steps + 1)
        norms[0], energies[0], dipole[0] = self.observables(boxes)

        start = _time.perf_counter()
        for i in range(n_steps):
            boxes = self.step(boxes, batch, timer)
            norms[i + 1], energies[i + 1], dipole[i + 1] = self.observables(boxes)
        wall = _time.perf_counter() - start

        return PropagationResult(
            coefficients=boxes[:, self.app.g_mask],
            norms=norms,
            energies=energies,
            dipole=dipole,
            wall_time=wall,
            timings=timer.report(),
        )
