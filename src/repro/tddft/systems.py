"""Physical systems (the paper's two case studies, Section VII).

* **Case Study 1** — a magnesium-porphyrin molecule (0D molecular system:
  1 Mg, 20 C, 4 N, 12 H): 1 spin, 1 k-point, 64 bands, FFT size of
  3 million double-complex elements.
* **Case Study 2** — a periodic 2D slab of 4x4 hexagonal boron nitride
  (32 atoms per supercell): 1 spin, 36 k-points, 64 bands, FFT size of
  620k double-complex elements.

A :class:`PhysicalSystem` fixes the wavefunction extents that, combined
with the MPI grid, determine each rank's local workload (Figure 3's
mapping) and hence the search constraints: Case Study 1's single k-point
pins ``nkpb = 1``; 64 bands restrict ``nstb`` to divisors of 64; Case
Study 2 constrains the grid to divisors of (36, 64).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "PhysicalSystem",
    "magnesium_porphyrin",
    "boron_nitride_slab",
    "case_study",
]

_BYTES_PER_DOUBLE_COMPLEX = 16


@dataclass(frozen=True)
class PhysicalSystem:
    """Wavefunction extents of one material input.

    Attributes
    ----------
    nspin / nkpoints / nbands:
        Extents of the spin, k-point, and state-band dimensions.
    fft_size:
        Plane-wave (G-vector) grid points per band — the 3D-FFT length in
        double-complex elements.
    """

    name: str
    nspin: int
    nkpoints: int
    nbands: int
    fft_size: int
    gvector_fraction: float = 0.125

    def __post_init__(self):
        if min(self.nspin, self.nkpoints, self.nbands, self.fft_size) < 1:
            raise ValueError("all system extents must be >= 1")
        if not (0.0 < self.gvector_fraction <= 1.0):
            raise ValueError("gvector_fraction must be in (0, 1]")

    # ------------------------------------------------------------------
    @property
    def band_bytes(self) -> int:
        """Bytes of one band's full FFT-box slab (double complex)."""
        return self.fft_size * _BYTES_PER_DOUBLE_COMPLEX

    @property
    def transfer_bytes_per_band(self) -> int:
        """Bytes actually moved over PCIe per band.

        Plane-wave codes store each wavefunction as G-vector coefficients
        on a sphere inside the FFT box (``gvector_fraction`` of the grid);
        the zero-padding into the full box happens on the GPU — that is
        precisely the transpose&padding step the cuZcopy kernel performs.
        Only the compact sphere crosses the PCIe link.
        """
        return int(self.band_bytes * self.gvector_fraction)

    @property
    def wavefunction_bytes(self) -> int:
        """Total wavefunction storage across all dimensions."""
        return self.nspin * self.nkpoints * self.nbands * self.band_bytes

    def divisors(self, extent: int) -> list[int]:
        """Divisors of one extent — the balanced grid values the paper's
        experts constrain searches to ("only divisors of this value are
        tested for the nstb MPI dimension to ensure work balance")."""
        if extent not in (self.nspin, self.nkpoints, self.nbands):
            raise ValueError(f"{extent} is not a dimension of {self.name}")
        return [d for d in range(1, extent + 1) if extent % d == 0]

    def balanced_grids(self, max_ranks: int) -> list[tuple[int, int, int]]:
        """All (nspb, nkpb, nstb) with every factor dividing its extent
        and total ranks within the allocation."""
        out = []
        for s in self.divisors(self.nspin):
            for k in self.divisors(self.nkpoints):
                for b in self.divisors(self.nbands):
                    if s * k * b <= max_ranks:
                        out.append((s, k, b))
        return out


def magnesium_porphyrin() -> PhysicalSystem:
    """Case Study 1: MgC20N4H12 molecule (0D)."""
    return PhysicalSystem(
        name="magnesium-porphyrin",
        nspin=1,
        nkpoints=1,
        nbands=64,
        fft_size=3_000_000,
    )


def boron_nitride_slab() -> PhysicalSystem:
    """Case Study 2: 4x4 hexagonal BN slab, 32 atoms/supercell (2D)."""
    return PhysicalSystem(
        name="hexagonal-boron-nitride",
        nspin=1,
        nkpoints=36,
        nbands=64,
        fft_size=620_000,
    )


def case_study(n: int) -> PhysicalSystem:
    """Look up a case study by the paper's numbering (1 or 2)."""
    if n == 1:
        return magnesium_porphyrin()
    if n == 2:
        return boron_nitride_slab()
    raise ValueError(f"case study must be 1 or 2, got {n}")
