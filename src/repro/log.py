"""The ``repro``-namespaced logging hierarchy.

Every subsystem logs under a child of the ``repro`` logger —
``repro.search`` (executor, retries, cache), ``repro.faults``
(injection, watchdog, circuit breaker), ``repro.telemetry`` (sinks,
progress), ``repro.insights`` (sensitivity degradation) — replacing the
bare stderr prints and silent failure paths the robustness layers used
to have.  Libraries attach no handlers; :func:`configure_logging` wires
a stderr handler for the CLI's ``--verbose/-v`` flag.
"""

from __future__ import annotations

import logging
import sys
from typing import TextIO

__all__ = ["get_logger", "configure_logging"]

ROOT = "repro"


def get_logger(subsystem: str) -> logging.Logger:
    """Logger for one subsystem, e.g. ``get_logger("faults")``."""
    if not subsystem:
        return logging.getLogger(ROOT)
    return logging.getLogger(f"{ROOT}.{subsystem}")


def configure_logging(
    verbosity: int = 0, *, stream: TextIO | None = None
) -> logging.Logger:
    """Attach a stderr handler to the ``repro`` root logger.

    ``verbosity`` 0 -> WARNING, 1 (``-v``) -> INFO, >=2 (``-vv``) ->
    DEBUG.  Idempotent: re-configuring replaces the handler installed by
    a previous call instead of stacking duplicates.
    """
    root = logging.getLogger(ROOT)
    level = (
        logging.WARNING
        if verbosity <= 0
        else logging.INFO if verbosity == 1 else logging.DEBUG
    )
    root.setLevel(level)
    for h in list(root.handlers):
        if getattr(h, "_repro_cli", False):
            root.removeHandler(h)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(
        logging.Formatter("%(levelname)s %(name)s: %(message)s")
    )
    handler._repro_cli = True  # type: ignore[attr-defined]
    root.addHandler(handler)
    root.propagate = False
    return root
