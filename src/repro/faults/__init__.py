"""Fault injection, failure taxonomy, watchdog, and circuit breaker.

The robustness layer that makes the campaign executor's fault tolerance
*testable and complete* (the role GPTune's crash recovery plays for the
paper's long HPC campaigns):

:mod:`repro.faults.taxonomy`
    :class:`FailureKind` (TRANSIENT / PERMANENT / TIMEOUT / NUMERIC /
    WORKER_LOST), self-classifying fault exceptions, and the
    :func:`classify_exception` hook.  Kinds are persisted in
    ``Evaluation.meta["failure_kind"]`` and round-trip through JSONL
    checkpoints.
:mod:`repro.faults.injection`
    :class:`FaultPlan` + :class:`FaultyObjective`: deterministic,
    seed-driven fault injection (transient bursts, poison regions, NaN
    results, hangs, runtime noise) for chaos-testing campaigns.
:mod:`repro.faults.watchdog`
    :class:`WatchdogObjective`: real wall-clock deadlines on in-process
    evaluations (thread-based; abandons hung objectives).
:mod:`repro.faults.breaker`
    :class:`CircuitBreaker`: quarantine regions of the space after K
    permanently-classified failures.
"""

from .taxonomy import (
    FAILURE_KIND_KEY,
    RETRYABLE_KINDS,
    EvaluationTimeoutError,
    FailureKind,
    FaultError,
    NumericFault,
    PermanentFault,
    TransientFault,
    WorkerLostError,
    classify_exception,
    failure_kind_of,
)
from .breaker import CircuitBreaker
from .injection import FaultPlan, FaultyObjective, PoisonRegion
from .watchdog import WatchdogObjective

__all__ = [
    "FailureKind",
    "RETRYABLE_KINDS",
    "FAILURE_KIND_KEY",
    "FaultError",
    "TransientFault",
    "PermanentFault",
    "NumericFault",
    "EvaluationTimeoutError",
    "WorkerLostError",
    "classify_exception",
    "failure_kind_of",
    "FaultPlan",
    "PoisonRegion",
    "FaultyObjective",
    "WatchdogObjective",
    "CircuitBreaker",
]
