"""Wall-clock watchdog for in-process objective evaluations.

The engines' ``evaluation_timeout`` compares the *returned simulated
runtime* against a cap — it models the paper's 15-minute kill switch but
cannot catch an objective that actually hangs (``time.sleep(3600)``, a
deadlocked MPI collective, an NFS stall).  :class:`WatchdogObjective`
enforces a real deadline: the objective runs in a worker thread and the
caller waits at most ``timeout`` seconds before raising
:class:`~repro.faults.EvaluationTimeoutError`, which the engines record
as a TIMEOUT evaluation with ``failure_kind = "timeout"``.

CPython cannot forcibly kill a thread, so a timed-out evaluation is
*abandoned*: its daemon thread keeps running in the background until the
objective returns (or the process exits), and its eventual result is
discarded.  That is the honest in-process trade-off — genuine
termination needs a process boundary, which the campaign executor
provides at member granularity (future timeouts + worker resubmission).
The watchdog guarantees the *search* makes progress within
``timeout`` per evaluation regardless of objective behavior.
"""

from __future__ import annotations

import threading
from typing import Any, Mapping

from ..log import get_logger
from .taxonomy import EvaluationTimeoutError

__all__ = ["WatchdogObjective"]

logger = get_logger("faults")


class WatchdogObjective:
    """Enforce a real wall-clock deadline on each objective call.

    Parameters
    ----------
    objective:
        The wrapped callable (``config -> value`` or ``config ->
        (value, meta)``).
    timeout:
        Deadline in real seconds per evaluation.

    Picklable (threads are created per call, never stored), so
    watchdogged specs cross process-pool boundaries.  Exceptions raised
    by the objective inside the worker thread are re-raised in the
    caller with their original type, preserving classifier behavior.
    """

    def __init__(self, objective, timeout: float):
        if timeout <= 0:
            raise ValueError("timeout must be > 0")
        self.objective = objective
        self.timeout = float(timeout)
        self.timeouts = 0

    def __getstate__(self):
        return {
            "objective": self.objective,
            "timeout": self.timeout,
            "timeouts": self.timeouts,
        }

    def __setstate__(self, state):
        self.__dict__.update(state)

    def __call__(self, config: Mapping[str, Any]) -> Any:
        box: dict[str, Any] = {}

        def target() -> None:
            try:
                box["result"] = self.objective(config)
            except BaseException as exc:  # re-raised in the caller
                box["error"] = exc

        worker = threading.Thread(
            target=target, name="repro-watchdog-eval", daemon=True
        )
        worker.start()
        worker.join(self.timeout)
        if worker.is_alive():
            self.timeouts += 1
            logger.warning(
                "watchdog fired: evaluation exceeded %gs wall-clock "
                "deadline; abandoning worker thread", self.timeout,
            )
            raise EvaluationTimeoutError(
                f"evaluation exceeded wall-clock deadline of "
                f"{self.timeout:g}s (worker thread abandoned)"
            )
        if "error" in box:
            raise box["error"]
        return box["result"]
