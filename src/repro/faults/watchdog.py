"""Wall-clock watchdog for in-process objective evaluations.

The engines' ``evaluation_timeout`` compares the *returned simulated
runtime* against a cap — it models the paper's 15-minute kill switch but
cannot catch an objective that actually hangs (``time.sleep(3600)``, a
deadlocked MPI collective, an NFS stall).  :class:`WatchdogObjective`
enforces a real deadline: the objective runs in a worker thread and the
caller waits at most ``timeout`` seconds before raising
:class:`~repro.faults.EvaluationTimeoutError`, which the engines record
as a TIMEOUT evaluation with ``failure_kind = "timeout"``.

CPython cannot forcibly kill a thread, so a timed-out evaluation is
*abandoned*: its daemon thread keeps running in the background until the
objective returns (or the process exits), and its eventual result is
discarded.  That is the honest in-process trade-off — genuine
termination needs a process boundary, which the campaign executor
provides at member granularity (future timeouts + worker resubmission).
The watchdog guarantees the *search* makes progress within
``timeout`` per evaluation regardless of objective behavior.

Abandoned threads are *fenced* with a generation token: every call
advances the watchdog's generation, and a timed-out call advances it
again before raising, so a zombie thread that eventually completes finds
its token stale and discards its result instead of publishing it.
Without the fence, a slow evaluation that finishes *after* the timeout
verdict was recorded could race a later evaluation of the same wrapper
and leak its (already-reported-as-timeout) value into shared state.
"""

from __future__ import annotations

import threading
from typing import Any, Mapping

from ..log import get_logger
from .taxonomy import EvaluationTimeoutError

__all__ = ["WatchdogObjective"]

logger = get_logger("faults")


class WatchdogObjective:
    """Enforce a real wall-clock deadline on each objective call.

    Parameters
    ----------
    objective:
        The wrapped callable (``config -> value`` or ``config ->
        (value, meta)``).
    timeout:
        Deadline in real seconds per evaluation.

    Picklable (threads are created per call, never stored), so
    watchdogged specs cross process-pool boundaries.  Exceptions raised
    by the objective inside the worker thread are re-raised in the
    caller with their original type, preserving classifier behavior.
    """

    def __init__(self, objective, timeout: float):
        if timeout <= 0:
            raise ValueError("timeout must be > 0")
        self.objective = objective
        self.timeout = float(timeout)
        self.timeouts = 0
        #: Late completions of abandoned (timed-out) worker threads whose
        #: results were fenced off and discarded.
        self.stale_completions = 0
        self._generation = 0
        self._gen_lock = threading.Lock()

    def __getstate__(self):
        return {
            "objective": self.objective,
            "timeout": self.timeout,
            "timeouts": self.timeouts,
            "stale_completions": self.stale_completions,
        }

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._generation = 0
        self._gen_lock = threading.Lock()

    def __call__(self, config: Mapping[str, Any]) -> Any:
        box: dict[str, Any] = {}
        with self._gen_lock:
            self._generation += 1
            gen = self._generation

        def target() -> None:
            try:
                result = self.objective(config)
                err = None
            except BaseException as exc:  # re-raised in the caller
                result, err = None, exc
            # Fence: publish only if this call is still the live
            # generation.  A zombie thread finishing after its timeout
            # verdict (and possibly after later evaluations started) must
            # not leak its result into shared state.
            with self._gen_lock:
                if gen != self._generation:
                    self.stale_completions += 1
                    logger.warning(
                        "discarding stale result of abandoned evaluation "
                        "(generation %d, now %d)", gen, self._generation,
                    )
                    return
                if err is not None:
                    box["error"] = err
                else:
                    box["result"] = result

        worker = threading.Thread(
            target=target, name="repro-watchdog-eval", daemon=True
        )
        worker.start()
        worker.join(self.timeout)
        with self._gen_lock:
            done = "result" in box or "error" in box
            if not done:
                # Advance the generation *under the lock* so the worker
                # thread either published before this point or will see a
                # stale token and discard.
                self._generation += 1
        if not done:
            self.timeouts += 1
            logger.warning(
                "watchdog fired: evaluation exceeded %gs wall-clock "
                "deadline; abandoning worker thread", self.timeout,
            )
            raise EvaluationTimeoutError(
                f"evaluation exceeded wall-clock deadline of "
                f"{self.timeout:g}s (worker thread abandoned)"
            )
        if "error" in box:
            raise box["error"]
        return box["result"]
