"""Circuit breaker: quarantine chronically-failing regions of the space.

A poison region — configurations that fail *permanently* (bad kernel
geometry, guaranteed OOM) — is invisible to retry logic: every sample
drawn there burns a full failure penalty, and the acquisition function
only learns to avoid the exact points it has seen.  The breaker takes
the classic service-resilience pattern to the search space: the unit
hypercube is partitioned into ``resolution^d`` cells (via the space's
``encode`` map), permanently-classified failures are counted per cell,
and once a cell accumulates ``threshold`` of them it *trips* — the
engines stop sampling it entirely and the campaign degrades gracefully
instead of re-probing poison.

Only kinds in ``count_kinds`` (default: PERMANENT and NUMERIC — failures
deterministic in the configuration) advance the breaker; transient
failures and timeouts do not, so a flaky node cannot quarantine a
healthy region.  Tripped cells are reported in
``SearchResult.meta["quarantined"]``.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

import numpy as np

from ..log import get_logger
from .taxonomy import FailureKind

__all__ = ["CircuitBreaker"]

logger = get_logger("faults")


class CircuitBreaker:
    """Per-region failure counter with a trip threshold.

    Parameters
    ----------
    space:
        The search (sub)space; its ``encode`` maps configurations into
        the unit hypercube that is partitioned into cells.
    threshold:
        Permanent-failure count at which a cell trips (the issue's K).
    resolution:
        Cells per axis; a cell is a ``1/resolution``-wide hyper-interval
        (the "neighborhood" granularity).
    count_kinds:
        Failure kinds that advance the counter.

    The breaker never consumes random state — ``allows`` is a pure
    lookup — so consulting it leaves a fault-free search's RNG streams
    untouched (part of the chaos-determinism guarantee).
    """

    def __init__(
        self,
        space,
        *,
        threshold: int = 3,
        resolution: int = 4,
        count_kinds: Iterable[FailureKind] = (
            FailureKind.PERMANENT,
            FailureKind.NUMERIC,
        ),
    ):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if resolution < 1:
            raise ValueError("resolution must be >= 1")
        self.space = space
        self.threshold = int(threshold)
        self.resolution = int(resolution)
        self.count_kinds = frozenset(FailureKind(k) for k in count_kinds)
        self._counts: dict[tuple[int, ...], int] = {}
        self._tripped: set[tuple[int, ...]] = set()

    # ------------------------------------------------------------------
    def cell(self, config: Mapping[str, Any]) -> tuple[int, ...]:
        """The grid cell containing ``config`` (key of the neighborhood)."""
        u = np.asarray(self.space.encode(config), dtype=float)
        idx = np.floor(np.clip(u, 0.0, 1.0 - 1e-12) * self.resolution)
        return tuple(int(i) for i in idx)

    def record(
        self, config: Mapping[str, Any], kind: FailureKind | str | None
    ) -> bool:
        """Count one classified failure; returns True when this record
        trips the cell's breaker (first crossing of the threshold)."""
        if kind is None:
            return False
        kind = FailureKind(kind)
        if kind not in self.count_kinds:
            return False
        key = self.cell(config)
        self._counts[key] = self._counts.get(key, 0) + 1
        if self._counts[key] >= self.threshold and key not in self._tripped:
            self._tripped.add(key)
            logger.warning(
                "circuit breaker tripped: cell %s quarantined after %d "
                "%s failures", key, self._counts[key], kind.value,
            )
            return True
        return False

    def allows(self, config: Mapping[str, Any]) -> bool:
        """Whether ``config`` may be evaluated (its cell has not tripped)."""
        return not self._tripped or self.cell(config) not in self._tripped

    def is_quarantined(self, config: Mapping[str, Any]) -> bool:
        return not self.allows(config)

    # ------------------------------------------------------------------
    @property
    def tripped_cells(self) -> list[tuple[int, ...]]:
        return sorted(self._tripped)

    @property
    def n_tripped(self) -> int:
        return len(self._tripped)

    def summary(self) -> dict[str, Any]:
        """JSONL-safe description for ``SearchResult.meta["quarantined"]``."""
        return {
            "threshold": self.threshold,
            "resolution": self.resolution,
            "cells": [list(c) for c in self.tripped_cells],
            "failures_counted": int(sum(self._counts.values())),
        }
