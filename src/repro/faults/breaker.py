"""Circuit breaker: quarantine chronically-failing regions of the space.

A poison region — configurations that fail *permanently* (bad kernel
geometry, guaranteed OOM) — is invisible to retry logic: every sample
drawn there burns a full failure penalty, and the acquisition function
only learns to avoid the exact points it has seen.  The breaker takes
the classic service-resilience pattern to the search space: the unit
hypercube is partitioned into ``resolution^d`` cells (via the space's
``encode`` map), permanently-classified failures are counted per cell,
and once a cell accumulates ``threshold`` of them it *trips* — the
engines stop sampling it entirely and the campaign degrades gracefully
instead of re-probing poison.

Only kinds in ``count_kinds`` (default: PERMANENT and NUMERIC — failures
deterministic in the configuration) advance the breaker; transient
failures and timeouts do not, so a flaky node cannot quarantine a
healthy region.  Tripped cells are reported in
``SearchResult.meta["quarantined"]``.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Iterable, Mapping

import numpy as np

from ..log import get_logger
from .taxonomy import FailureKind

__all__ = [
    "CircuitBreaker",
    "breaker_sidecar_path",
    "persist_breaker",
    "restore_breaker",
]

logger = get_logger("faults")


def breaker_sidecar_path(checkpoint_path: str | os.PathLike) -> str:
    """Breaker-state sidecar for an evaluation checkpoint file.

    Lives in the same checkpoint scope (``<checkpoint>.breaker.json``) so
    whatever moves, copies, or fences the checkpoint carries the breaker
    state with it.
    """
    return os.fspath(checkpoint_path) + ".breaker.json"


def persist_breaker(
    breaker: "CircuitBreaker", checkpoint_path: str | os.PathLike | None
) -> None:
    """Atomically snapshot ``breaker`` next to its checkpoint file."""
    if checkpoint_path is None:
        return
    path = breaker_sidecar_path(checkpoint_path)
    directory = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as f:
            json.dump(breaker.state_dict(), f)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def restore_breaker(
    breaker: "CircuitBreaker", checkpoint_path: str | os.PathLike | None
) -> bool:
    """Load a persisted sidecar into ``breaker``.

    Returns ``True`` when non-empty state was restored — callers must
    then *skip* rebuilding the breaker from evaluation records, which
    would double-count every failure.  A missing, corrupt, or
    geometry-mismatched sidecar returns ``False`` (rebuild as before).
    """
    if checkpoint_path is None:
        return False
    path = breaker_sidecar_path(checkpoint_path)
    if not os.path.exists(path):
        return False
    try:
        with open(path) as f:
            state = json.load(f)
    except (OSError, ValueError):
        logger.warning("corrupt breaker sidecar %s; rebuilding from records", path)
        return False
    breaker.load_state(state)
    return breaker.total_counted > 0 or breaker.n_tripped > 0


class CircuitBreaker:
    """Per-region failure counter with a trip threshold.

    Parameters
    ----------
    space:
        The search (sub)space; its ``encode`` maps configurations into
        the unit hypercube that is partitioned into cells.
    threshold:
        Permanent-failure count at which a cell trips (the issue's K).
    resolution:
        Cells per axis; a cell is a ``1/resolution``-wide hyper-interval
        (the "neighborhood" granularity).
    count_kinds:
        Failure kinds that advance the counter.

    The breaker never consumes random state — ``allows`` is a pure
    lookup — so consulting it leaves a fault-free search's RNG streams
    untouched (part of the chaos-determinism guarantee).
    """

    def __init__(
        self,
        space,
        *,
        threshold: int = 3,
        resolution: int = 4,
        count_kinds: Iterable[FailureKind] = (
            FailureKind.PERMANENT,
            FailureKind.NUMERIC,
        ),
    ):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if resolution < 1:
            raise ValueError("resolution must be >= 1")
        self.space = space
        self.threshold = int(threshold)
        self.resolution = int(resolution)
        self.count_kinds = frozenset(FailureKind(k) for k in count_kinds)
        self._counts: dict[tuple[int, ...], int] = {}
        self._tripped: set[tuple[int, ...]] = set()

    # ------------------------------------------------------------------
    def cell(self, config: Mapping[str, Any]) -> tuple[int, ...]:
        """The grid cell containing ``config`` (key of the neighborhood)."""
        u = np.asarray(self.space.encode(config), dtype=float)
        idx = np.floor(np.clip(u, 0.0, 1.0 - 1e-12) * self.resolution)
        return tuple(int(i) for i in idx)

    def record(
        self, config: Mapping[str, Any], kind: FailureKind | str | None
    ) -> bool:
        """Count one classified failure; returns True when this record
        trips the cell's breaker (first crossing of the threshold)."""
        if kind is None:
            return False
        kind = FailureKind(kind)
        if kind not in self.count_kinds:
            return False
        key = self.cell(config)
        self._counts[key] = self._counts.get(key, 0) + 1
        if self._counts[key] >= self.threshold and key not in self._tripped:
            self._tripped.add(key)
            logger.warning(
                "circuit breaker tripped: cell %s quarantined after %d "
                "%s failures", key, self._counts[key], kind.value,
            )
            return True
        return False

    def allows(self, config: Mapping[str, Any]) -> bool:
        """Whether ``config`` may be evaluated (its cell has not tripped)."""
        return not self._tripped or self.cell(config) not in self._tripped

    def is_quarantined(self, config: Mapping[str, Any]) -> bool:
        return not self.allows(config)

    # ------------------------------------------------------------------
    @property
    def tripped_cells(self) -> list[tuple[int, ...]]:
        return sorted(self._tripped)

    @property
    def n_tripped(self) -> int:
        return len(self._tripped)

    @property
    def total_counted(self) -> int:
        """Total failures counted so far (all cells)."""
        return int(sum(self._counts.values()))

    # -- persistence ----------------------------------------------------
    def state_dict(self) -> dict[str, Any]:
        """JSON-safe snapshot of the mutable breaker state.

        Persisted next to the evaluation checkpoint so a resumed campaign
        restores its quarantine — including partial per-cell counts that
        had not yet tripped — instead of re-paying failures to rediscover
        it.  Cells are keyed by comma-joined indices (JSON objects cannot
        key on tuples).
        """
        return {
            "threshold": self.threshold,
            "resolution": self.resolution,
            "counts": {
                ",".join(str(i) for i in cell): n
                for cell, n in sorted(self._counts.items())
            },
            "tripped": [list(c) for c in self.tripped_cells],
        }

    def load_state(self, state: Mapping[str, Any]) -> None:
        """Restore a :meth:`state_dict` snapshot, replacing current state.

        Snapshots taken under a different grid geometry are ignored (the
        cell keys would be meaningless): the breaker then rebuilds from
        the evaluation records as before.
        """
        if (
            int(state.get("threshold", self.threshold)) != self.threshold
            or int(state.get("resolution", self.resolution)) != self.resolution
        ):
            logger.warning(
                "ignoring persisted breaker state with mismatched geometry "
                "(threshold/resolution %s/%s vs ours %d/%d)",
                state.get("threshold"), state.get("resolution"),
                self.threshold, self.resolution,
            )
            return
        self._counts = {
            tuple(int(i) for i in key.split(",")): int(n)
            for key, n in state.get("counts", {}).items()
        }
        self._tripped = {
            tuple(int(i) for i in cell) for cell in state.get("tripped", ())
        }

    def summary(self) -> dict[str, Any]:
        """JSONL-safe description for ``SearchResult.meta["quarantined"]``."""
        return {
            "threshold": self.threshold,
            "resolution": self.resolution,
            "cells": [list(c) for c in self.tripped_cells],
            "failures_counted": int(sum(self._counts.values())),
        }
