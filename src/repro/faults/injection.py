"""Deterministic, seed-driven fault injection for objectives.

The executor's resilience machinery (retries, checkpoint/resume,
memoization, watchdog, circuit breaker) is only trustworthy if it can be
*exercised* — and exercising it requires faults that are reproducible.
:class:`FaultyObjective` wraps any objective with a :class:`FaultPlan`
whose decisions are a pure function of ``(plan seed, configuration,
attempt number)``: the same campaign seed and plan always produce the
same faults at the same evaluations, in-process or across pool workers.

Fault channels (all independently seeded per configuration):

* **transient exceptions** — a fraction ``transient_rate`` of
  configurations raise :class:`~repro.faults.TransientFault` on their
  first ``transient_burst`` attempts, then succeed.  With retry capacity
  >= the burst, a campaign under transient faults is *bit-identical* to
  a fault-free one — the headline chaos-suite property.
* **poison regions** — configurations inside a declared region of the
  space always raise :class:`~repro.faults.PermanentFault` (the
  "this kernel configuration can never launch" scenario the circuit
  breaker quarantines).
* **NaN results** — a fraction ``numeric_rate`` of configurations
  return NaN on every attempt (deterministic numeric garbage).
* **hangs** — a fraction ``hang_rate`` of configurations sleep
  ``hang_seconds`` of real wall-clock before returning (watchdog prey).
* **runtime noise** — multiplicative log-normal noise of scale
  ``noise_scale`` on the returned value (seeded per configuration, so
  still deterministic — but *not* bit-identical to a fault-free run).

Plans serialize to/from JSON (``FaultPlan.from_json``) so campaigns can
be chaos-tested from the CLI via ``--inject-faults plan.json``.
"""

from __future__ import annotations

import json
import math
import os
import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

from ..log import get_logger
from .taxonomy import PermanentFault, TransientFault

__all__ = ["FaultPlan", "PoisonRegion", "FaultyObjective"]

logger = get_logger("faults")

_canonical_key = None


def _config_key(config: Mapping[str, Any]) -> str:
    """Canonical configuration key (lazy import: ``repro.search.cache``
    imports this package's taxonomy, so a module-level import here would
    be circular)."""
    global _canonical_key
    if _canonical_key is None:
        from ..search.cache import canonical_key

        _canonical_key = canonical_key
    return _canonical_key(config)


@dataclass(frozen=True)
class PoisonRegion:
    """An axis-aligned region of the configuration space that always fails.

    ``bounds`` maps parameter names to either a ``[low, high]`` numeric
    interval (inclusive) or an explicit list of poisoned values
    (categorical/ordinal axes).  A configuration is poisoned when *every*
    listed parameter matches; parameters absent from the configuration
    never match.
    """

    bounds: Mapping[str, Any] = field(default_factory=dict)

    def contains(self, config: Mapping[str, Any]) -> bool:
        if not self.bounds:
            return False
        for name, spec in self.bounds.items():
            if name not in config:
                return False
            value = config[name]
            if (
                isinstance(spec, Sequence)
                and not isinstance(spec, str)
                and len(spec) == 2
                and all(isinstance(b, (int, float)) for b in spec)
                and isinstance(value, (int, float, np.integer, np.floating))
            ):
                low, high = float(spec[0]), float(spec[1])
                if not (low <= float(value) <= high):
                    return False
            elif isinstance(spec, Sequence) and not isinstance(spec, str):
                if value not in spec:
                    return False
            else:
                if value != spec:
                    return False
        return True

    def to_dict(self) -> dict[str, Any]:
        return {"bounds": {k: v for k, v in self.bounds.items()}}

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "PoisonRegion":
        return cls(bounds=dict(d.get("bounds", d)))


@dataclass(frozen=True)
class FaultPlan:
    """Seed-driven description of which faults to inject, and how often.

    All rates are fractions of the configuration space in ``[0, 1]``;
    whether a given configuration is affected is decided by hashing the
    canonicalized configuration with ``seed`` — never by global counters
    or wall-clock — so injection commutes with retries, resumes, and
    process-pool boundaries.
    """

    seed: int = 0
    transient_rate: float = 0.0
    transient_burst: int = 1
    numeric_rate: float = 0.0
    hang_rate: float = 0.0
    hang_seconds: float = 0.0
    noise_scale: float = 0.0
    poison: tuple[PoisonRegion, ...] = ()

    def __post_init__(self):
        for name in ("transient_rate", "numeric_rate", "hang_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.transient_burst < 1:
            raise ValueError("transient_burst must be >= 1")
        if self.hang_seconds < 0 or self.noise_scale < 0:
            raise ValueError("hang_seconds and noise_scale must be >= 0")
        object.__setattr__(
            self, "poison", tuple(
                r if isinstance(r, PoisonRegion) else PoisonRegion.from_dict(r)
                for r in self.poison
            )
        )

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "transient_rate": self.transient_rate,
            "transient_burst": self.transient_burst,
            "numeric_rate": self.numeric_rate,
            "hang_rate": self.hang_rate,
            "hang_seconds": self.hang_seconds,
            "noise_scale": self.noise_scale,
            "poison": [r.to_dict() for r in self.poison],
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "FaultPlan":
        known = {
            "seed", "transient_rate", "transient_burst", "numeric_rate",
            "hang_rate", "hang_seconds", "noise_scale",
        }
        kwargs: dict[str, Any] = {k: d[k] for k in known if k in d}
        kwargs["poison"] = tuple(
            PoisonRegion.from_dict(r) for r in d.get("poison", ())
        )
        unknown = set(d) - known - {"poison"}
        if unknown:
            raise ValueError(f"unknown FaultPlan fields: {sorted(unknown)}")
        return cls(**kwargs)

    @classmethod
    def from_json(cls, path: str | os.PathLike) -> "FaultPlan":
        with open(os.fspath(path)) as f:
            return cls.from_dict(json.load(f))

    def save_json(self, path: str | os.PathLike) -> None:
        with open(os.fspath(path), "w") as f:
            json.dump(self.to_dict(), f, indent=2)

    @property
    def active(self) -> bool:
        """Whether the plan can inject anything at all."""
        return bool(
            self.transient_rate or self.numeric_rate or self.hang_rate
            or self.noise_scale or self.poison
        )


class FaultyObjective:
    """Wrap an objective with a deterministic fault plan.

    A plain picklable class (no closures) so fault-injected specs cross
    ``ProcessPoolExecutor`` boundaries like any other.  The only mutable
    state is the per-configuration attempt counter that drives transient
    bursts; it travels with the pickle, and because injection decisions
    are keyed on (seed, configuration, attempt) the faults observed by a
    resumed or pooled campaign match an uninterrupted one.
    """

    def __init__(self, objective, plan: FaultPlan):
        self.objective = objective
        self.plan = plan
        self._attempts: dict[int, int] = {}
        self.injected = {
            "transient": 0, "permanent": 0, "numeric": 0, "hang": 0,
        }

    # -- deterministic per-config randomness ---------------------------
    def _config_hash(self, config: Mapping[str, Any]) -> int:
        return zlib.crc32(_config_key(config).encode("utf-8"))

    def _uniforms(self, chash: int, n: int = 4) -> list[float]:
        """``n`` uniforms that depend only on (plan seed, configuration).

        Splitmix64 over a (seed, config-hash) state — a pure integer-mix
        generator, so deriving the channel uniforms costs microseconds
        per evaluation (constructing a ``numpy.random.SeedSequence`` here
        instead measurably violated the <5% injection-overhead budget on
        cheap objectives).
        """
        state = (
            (self.plan.seed & _MASK64) * 0x9E3779B97F4A7C15 + chash
        ) & _MASK64
        out = []
        for _ in range(n):
            state = (state + 0x9E3779B97F4A7C15) & _MASK64
            out.append(_mix64(state) / 2.0**64)
        return out

    # ------------------------------------------------------------------
    def __call__(self, config: Mapping[str, Any]) -> Any:
        plan = self.plan
        for region in plan.poison:
            if region.contains(config):
                self.injected["permanent"] += 1
                logger.debug(
                    "injecting permanent fault (poison region %s)",
                    region.bounds,
                )
                raise PermanentFault(
                    f"injected permanent fault: poison region {region.bounds}"
                )
        chash = self._config_hash(config)
        u_transient, u_numeric, u_hang, u_noise = self._uniforms(chash)
        if plan.hang_rate and u_hang < plan.hang_rate and plan.hang_seconds > 0:
            self.injected["hang"] += 1
            time.sleep(plan.hang_seconds)
        if plan.transient_rate and u_transient < plan.transient_rate:
            attempt = self._attempts.get(chash, 0)
            self._attempts[chash] = attempt + 1
            if attempt < plan.transient_burst:
                self.injected["transient"] += 1
                logger.debug(
                    "injecting transient fault (attempt %d/%d)",
                    attempt + 1, plan.transient_burst,
                )
                raise TransientFault(
                    f"injected transient fault (attempt {attempt + 1}"
                    f"/{plan.transient_burst})"
                )
        if plan.numeric_rate and u_numeric < plan.numeric_rate:
            self.injected["numeric"] += 1
            return float("nan")
        out = self.objective(config)
        if plan.noise_scale:
            # Seeded log-normal multiplicative noise: ln(factor) ~
            # N(0, noise_scale), derived from the per-config uniform so
            # repeated evaluations of one configuration agree.
            z = math.sqrt(2.0) * _erfinv(2.0 * u_noise - 1.0)
            factor = math.exp(plan.noise_scale * z)
            if isinstance(out, tuple):
                return float(out[0]) * factor, out[1]
            return float(out) * factor
        return out


_MASK64 = (1 << 64) - 1


def _mix64(z: int) -> int:
    """Splitmix64 output mix (Steele, Lea & Flood 2014)."""
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def _erfinv(x: float) -> float:
    """Inverse error function (scipy-free; Winitzki's approximation
    refined by one Newton step — plenty for noise generation)."""
    a = 0.147
    ln1mx2 = math.log(max(1.0 - x * x, 1e-300))
    term = 2.0 / (math.pi * a) + ln1mx2 / 2.0
    y = math.copysign(
        math.sqrt(math.sqrt(term * term - ln1mx2 / a) - term), x
    )
    # One Newton refinement: f(y) = erf(y) - x.
    err = math.erf(y) - x
    y -= err * math.sqrt(math.pi) / 2.0 * math.exp(y * y)
    return y
