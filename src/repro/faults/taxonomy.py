"""Failure taxonomy: *why* an evaluation failed, not just that it did.

GPTune-style crash recovery (PAPER.md §2) treats every failure alike:
retry, and if retries run out, record FAILED.  That burns budget on
failures that can never succeed (a configuration that always segfaults)
and gives up too early on ones that would (a flaky filesystem).  This
module introduces a small, closed vocabulary of failure *kinds*:

``TRANSIENT``
    Environmental hiccup (node flake, I/O error).  Retrying the same
    configuration may succeed — the only kind worth backoff-retrying.
``PERMANENT``
    The configuration itself is broken (invalid kernel launch, OOM at
    this size).  Retrying is wasted budget; the circuit breaker counts
    these toward quarantining the surrounding region.
``TIMEOUT``
    The evaluation exceeded its wall-clock deadline (watchdog fired) or
    its simulated runtime cap.  Re-running would spend the full timeout
    again, so it is not retried.
``NUMERIC``
    The run completed but produced NaN/inf — numerically meaningless,
    deterministic for a given configuration, not retryable.
``WORKER_LOST``
    The process-pool worker executing the evaluation died
    (``BrokenProcessPool``).  The *configuration* is not implicated, so
    the work is resubmitted.

The kind is recorded in ``Evaluation.meta["failure_kind"]`` so it
round-trips through the JSONL checkpoint: a resumed search and the
memoization cache can distinguish retryable from permanent failures.

:func:`classify_exception` is the default classifier hook.  Exceptions
carrying a ``failure_kind`` attribute (all :class:`FaultError`
subclasses) classify themselves; stdlib exception families get sensible
defaults; everything unknown is TRANSIENT — the retry-friendly default
that preserves the pre-taxonomy behavior of retrying generic errors.
"""

from __future__ import annotations

from concurrent.futures import BrokenExecutor
from enum import Enum
from typing import Any, Callable, Mapping

__all__ = [
    "FailureKind",
    "RETRYABLE_KINDS",
    "FaultError",
    "TransientFault",
    "PermanentFault",
    "NumericFault",
    "EvaluationTimeoutError",
    "WorkerLostError",
    "classify_exception",
    "failure_kind_of",
    "FAILURE_KIND_KEY",
]

#: ``Evaluation.meta`` key under which the kind is persisted (JSONL-safe).
FAILURE_KIND_KEY = "failure_kind"


class FailureKind(str, Enum):
    """Closed vocabulary of evaluation-failure causes."""

    TRANSIENT = "transient"
    PERMANENT = "permanent"
    TIMEOUT = "timeout"
    NUMERIC = "numeric"
    WORKER_LOST = "worker_lost"


#: Kinds for which re-running the same configuration can succeed.
RETRYABLE_KINDS = frozenset({FailureKind.TRANSIENT, FailureKind.WORKER_LOST})


class FaultError(RuntimeError):
    """Base class for self-classifying evaluation faults."""

    kind: FailureKind = FailureKind.TRANSIENT

    @property
    def failure_kind(self) -> FailureKind:
        return self.kind


class TransientFault(FaultError):
    """Environmental failure; the same configuration may succeed on retry."""

    kind = FailureKind.TRANSIENT


class PermanentFault(FaultError):
    """The configuration itself cannot succeed; never retry it."""

    kind = FailureKind.PERMANENT


class NumericFault(FaultError):
    """The run produced numerically meaningless output (NaN/inf)."""

    kind = FailureKind.NUMERIC


class EvaluationTimeoutError(FaultError):
    """The evaluation exceeded its wall-clock deadline (watchdog fired)."""

    kind = FailureKind.TIMEOUT


class WorkerLostError(FaultError):
    """The worker process executing the evaluation died."""

    kind = FailureKind.WORKER_LOST


# Exception classifier -------------------------------------------------------

#: Signature of a classifier hook: exception -> FailureKind.
Classifier = Callable[[BaseException], FailureKind]

_PERMANENT_TYPES = (
    ValueError,
    TypeError,
    KeyError,
    IndexError,
    AttributeError,
    NotImplementedError,
    MemoryError,
    AssertionError,
)
_NUMERIC_TYPES = (ZeroDivisionError, FloatingPointError, OverflowError)
_TRANSIENT_TYPES = (ConnectionError, InterruptedError, BlockingIOError, OSError)


def classify_exception(exc: BaseException) -> FailureKind:
    """Map an exception raised by an objective to a :class:`FailureKind`.

    Precedence: an explicit ``failure_kind`` attribute on the exception
    (the hook for applications with richer error models) wins; then
    timeouts and broken-executor errors; then numeric, permanent, and
    transient stdlib families.  Unrecognized exceptions default to
    TRANSIENT so generic errors keep the historical retry behavior.
    """
    kind = getattr(exc, "failure_kind", None)
    if isinstance(kind, FailureKind):
        return kind
    if isinstance(kind, str):
        try:
            return FailureKind(kind)
        except ValueError:
            pass
    if isinstance(exc, TimeoutError):
        return FailureKind.TIMEOUT
    if isinstance(exc, (BrokenExecutor, BrokenPipeError)):
        return FailureKind.WORKER_LOST
    if isinstance(exc, _NUMERIC_TYPES):
        return FailureKind.NUMERIC
    if isinstance(exc, _PERMANENT_TYPES):
        return FailureKind.PERMANENT
    if isinstance(exc, _TRANSIENT_TYPES):
        return FailureKind.TRANSIENT
    return FailureKind.TRANSIENT


def failure_kind_of(record_or_meta: Any) -> FailureKind | None:
    """Extract the persisted failure kind from an ``Evaluation`` (or a
    bare meta mapping); ``None`` for successful/unclassified records."""
    meta = getattr(record_or_meta, "meta", record_or_meta)
    if not isinstance(meta, Mapping):
        return None
    raw = meta.get(FAILURE_KIND_KEY)
    if raw is None:
        return None
    try:
        return FailureKind(raw)
    except ValueError:
        return None
