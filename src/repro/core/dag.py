"""The interdependence DAG and its partition (methodology phase 2).

The paper conceptualizes phase 2 "as a partitioning problem on Directed
Acyclic Graphs (DAGs), where vertices represent routines, and their edges
denote how their parameters affect the runtime variability of routines".
Edges from a routine to *itself* (a parameter moving its own routine) are
the expected case and are kept as self-records only; an edge between two
*different* routines is interdependence evidence.  "To avoid weak
performance impacts ... we implement an edge-pruning mechanism based on a
cut-off"; after pruning, routines still connected must be searched jointly
— the partition is the set of weakly-connected components.

Built on :mod:`networkx` so the graph can be exported, visualized, and
queried with standard tooling.
"""

from __future__ import annotations

from typing import Callable

import networkx as nx

from .influence import InfluenceMatrix
from .routine import RoutineSet

__all__ = ["InterdependenceDAG"]


class InterdependenceDAG:
    """Routine-level interdependence graph.

    Vertices are routine names.  A directed edge ``A -> B`` means "some
    parameter owned by A moves B's runtime above the cut-off"; the edge
    carries ``parameters``: a dict of ``{parameter: score}`` accumulating
    every parameter that creates the dependence (edge weight = max score).

    Construction is via :meth:`from_influence`, which applies the cut-off
    prune at build time; :meth:`prune` re-prunes an existing graph at a
    stricter cut-off (for the cut-off ablation).
    """

    def __init__(self, routines: RoutineSet):
        self.routines = routines
        self.graph = nx.DiGraph()
        for r in routines.names:
            self.graph.add_node(r)

    # ------------------------------------------------------------------
    @classmethod
    def from_influence(
        cls,
        influence: InfluenceMatrix,
        *,
        cutoff: float,
    ) -> "InterdependenceDAG":
        """Build the pruned DAG from an influence matrix.

        ``cutoff`` is the paper's interdependence threshold (0.25 for the
        synthetic study, 0.10 for RT-TDDFT): external influences with
        score <= cutoff are discarded as "weak performance impacts on
        other vertices or runtime fluctuations".
        """
        dag = cls(influence.routines)
        for ext in influence.external_influences(cutoff):
            dag.add_dependence(ext.source, ext.target, ext.parameter, ext.score)
        return dag

    def add_dependence(
        self, source: str, target: str, parameter: str, score: float
    ) -> None:
        """Record that ``parameter`` (owned by ``source``) moves
        ``target``."""
        for name in (source, target):
            if name not in self.graph:
                raise KeyError(f"unknown routine {name!r}")
        if source == target:
            raise ValueError("self-dependences are implicit; add cross-routine edges only")
        if score < 0:
            raise ValueError("score must be >= 0")
        if self.graph.has_edge(source, target):
            params = self.graph.edges[source, target]["parameters"]
            params[parameter] = max(score, params.get(parameter, 0.0))
            self.graph.edges[source, target]["weight"] = max(params.values())
        else:
            self.graph.add_edge(source, target, parameters={parameter: score}, weight=score)

    # ------------------------------------------------------------------
    def prune(self, cutoff: float) -> "InterdependenceDAG":
        """Return a new DAG keeping only edges whose strongest parameter
        influence exceeds ``cutoff``."""
        out = InterdependenceDAG(self.routines)
        for src, dst, data in self.graph.edges(data=True):
            kept = {p: s for p, s in data["parameters"].items() if s > cutoff}
            for p, s in kept.items():
                out.add_dependence(src, dst, p, s)
        return out

    # ------------------------------------------------------------------
    def partition(self) -> list[list[str]]:
        """The search groups: weakly-connected components.

        Each component is one (joint) search; singleton components are
        independent searches.  Output order: components sorted by the
        routine order of the application, members likewise — deterministic
        for tests and reports.
        """
        order = {name: i for i, name in enumerate(self.routines.names)}
        comps = [
            sorted(c, key=order.__getitem__)
            for c in nx.weakly_connected_components(self.graph)
        ]
        comps.sort(key=lambda c: order[c[0]])
        return comps

    def edges(self) -> list[tuple[str, str, dict[str, float]]]:
        """All cross-routine edges with their parameter score dicts."""
        return [
            (src, dst, dict(data["parameters"]))
            for src, dst, data in self.graph.edges(data=True)
        ]

    def dependent_pairs(self) -> set[frozenset[str]]:
        """Unordered routine pairs connected by at least one edge."""
        return {frozenset((a, b)) for a, b, _ in self.graph.edges(data=True)}

    def is_independent(self, routine: str) -> bool:
        """True when the routine shares no edge with any other routine."""
        return self.graph.degree(routine) == 0

    def to_networkx(self) -> nx.DiGraph:
        """A copy of the underlying graph for external tooling."""
        return self.graph.copy()

    # ------------------------------------------------------------------
    def format_diagram(
        self,
        is_hierarchical: "Callable[[str, str], bool] | None" = None,
    ) -> str:
        """ASCII rendering of the DAG (Figure 2 / Figure 5 material).

        With ``is_hierarchical`` given (routine-pair predicate), edges
        between an enclosing region and its members are listed under a
        "staged" section instead of merging their endpoints — the display
        counterpart of the planner's hierarchical staging.
        """
        pred = is_hierarchical or (lambda a, b: False)
        peer = InterdependenceDAG(self.routines)
        staged_lines: list[str] = []
        for src, dst, data in self.graph.edges(data=True):
            if pred(src, dst):
                for p, s in sorted(data["parameters"].items(), key=lambda kv: -kv[1]):
                    staged_lines.append(
                        f"    {src} --{p} ({100 * s:.1f}%)--> {dst}"
                    )
            else:
                for p, s in data["parameters"].items():
                    peer.add_dependence(src, dst, p, s)

        lines = []
        for comp in peer.partition():
            if len(comp) == 1 and peer.is_independent(comp[0]):
                lines.append(f"[{comp[0]}]  (independent)")
                continue
            lines.append("[" + " + ".join(comp) + "]  (merged)")
            for src, dst, data in peer.graph.edges(data=True):
                if src in comp:
                    for p, s in sorted(data["parameters"].items(), key=lambda kv: -kv[1]):
                        lines.append(f"    {src} --{p} ({100 * s:.1f}%)--> {dst}")
        if staged_lines:
            lines.append("staged (enclosing-region) dependencies:")
            lines.extend(staged_lines)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"InterdependenceDAG(routines={len(self.routines)}, "
            f"edges={self.graph.number_of_edges()})"
        )
