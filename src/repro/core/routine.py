"""The `routine` abstraction consumed by the methodology.

The paper's unit of decomposition is a *routine* (a kernel or code region
"executing independently, offering the opportunity for separate
optimization").  A routine here is:

* a name,
* the set of parameter names the routine *owns* (its "visible performance
  parameters" — e.g. Group 1 owns ``x0..x4``; the GPU ZCOPY kernel owns
  ``u_zcopy, tb_zcopy, tb_sm_zcopy``),
* an objective callable returning that routine's runtime (or objective
  contribution) for a **full** application configuration.

Crucially, the objective receives the full configuration: whether
parameters outside the owned set actually influence the routine's runtime
is exactly what the methodology's sensitivity analysis discovers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

__all__ = ["Routine", "RoutineSet"]


@dataclass(frozen=True)
class Routine:
    """One tunable routine of an application.

    Attributes
    ----------
    name:
        Identifier used as the DAG vertex label (e.g. ``"Group 3"``).
    parameters:
        Names of the parameters this routine owns.  Ownership determines
        which edges of the interdependence DAG are *internal* (expected)
        versus *external* (evidence of interdependence).
    objective:
        ``config -> runtime`` for this routine alone, evaluated on a full
        application configuration.
    weight:
        Relative importance of the routine (e.g. its share of total
        runtime).  Used by the planner's rule 5: when a kernel appears in
        several regions "prioritize the kernel with highest impact".
    """

    name: str
    parameters: tuple[str, ...]
    objective: Callable[[Mapping[str, Any]], float]
    weight: float = 1.0

    def __post_init__(self):
        if not self.name:
            raise ValueError("routine name must be non-empty")
        if not self.parameters:
            raise ValueError(f"routine {self.name!r} owns no parameters")
        if len(set(self.parameters)) != len(self.parameters):
            raise ValueError(f"routine {self.name!r} lists duplicate parameters")
        if self.weight < 0:
            raise ValueError("routine weight must be >= 0")

    def evaluate(self, config: Mapping[str, Any]) -> float:
        """Evaluate this routine's objective on a full configuration."""
        return float(self.objective(config))


class RoutineSet:
    """An ordered collection of routines forming one application.

    Validates that routine names are unique and exposes ownership lookups
    used when classifying DAG edges.  Parameters may be owned by multiple
    routines (the paper's shared cuZcopy kernel appears in Groups 1 and 3);
    :meth:`owners` returns all of them.

    Parameters
    ----------
    routines:
        The member routines, in application order.
    profiler:
        Optional cross-target profiled evaluation: ``config -> {routine
        name: runtime}`` from **one** application run.  One profiled run
        observes every routine at once — the physical reality the paper's
        ``1 + V x d`` cost formula assumes ("evaluating all targets at one
        configuration costs a single application run") — so analyses that
        would otherwise call each routine objective separately collapse a
        ``t x`` per-configuration redundancy.  The mapping must cover
        every routine name; extra keys are ignored.
    """

    def __init__(
        self,
        routines: Sequence[Routine],
        *,
        profiler: Callable[[Mapping[str, Any]], Mapping[str, float]] | None = None,
    ):
        rs = list(routines)
        if not rs:
            raise ValueError("a routine set needs at least one routine")
        names = [r.name for r in rs]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate routine names: {dupes}")
        self.routines: list[Routine] = rs
        self._by_name = {r.name: r for r in rs}
        self.profiler = profiler

    @property
    def has_profiler(self) -> bool:
        """Whether one application run yields all routine timings."""
        return self.profiler is not None

    def profile(self, config: Mapping[str, Any]) -> dict[str, float]:
        """All routine runtimes for ``config``.

        With a :attr:`profiler` this is **one** application run; without
        one it falls back to evaluating each routine objective separately
        (``len(self)`` runs), so callers can always use the profiled code
        path and pay the profiler's cost advantage only when the
        application actually offers it.
        """
        if self.profiler is None:
            return {r.name: r.evaluate(config) for r in self.routines}
        out = self.profiler(config)
        missing = [r.name for r in self.routines if r.name not in out]
        if missing:
            raise KeyError(
                f"profiler output is missing routines: {missing}"
            )
        return {r.name: float(out[r.name]) for r in self.routines}

    def __iter__(self):
        return iter(self.routines)

    def __len__(self) -> int:
        return len(self.routines)

    def __getitem__(self, name: str) -> Routine:
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    @property
    def names(self) -> list[str]:
        return [r.name for r in self.routines]

    def all_parameters(self) -> list[str]:
        """Union of owned parameters, first-owner order, deduplicated."""
        seen: dict[str, None] = {}
        for r in self.routines:
            for p in r.parameters:
                seen.setdefault(p)
        return list(seen)

    def owners(self, parameter: str) -> list[Routine]:
        """Routines that own ``parameter`` (possibly several: shared
        kernels)."""
        return [r for r in self.routines if parameter in r.parameters]

    def shared_parameters(self) -> dict[str, list[str]]:
        """Parameters owned by more than one routine -> owner names."""
        out: dict[str, list[str]] = {}
        for p in self.all_parameters():
            owning = [r.name for r in self.owners(p)]
            if len(owning) > 1:
                out[p] = owning
        return out
