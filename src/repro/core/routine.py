"""The `routine` abstraction consumed by the methodology.

The paper's unit of decomposition is a *routine* (a kernel or code region
"executing independently, offering the opportunity for separate
optimization").  A routine here is:

* a name,
* the set of parameter names the routine *owns* (its "visible performance
  parameters" — e.g. Group 1 owns ``x0..x4``; the GPU ZCOPY kernel owns
  ``u_zcopy, tb_zcopy, tb_sm_zcopy``),
* an objective callable returning that routine's runtime (or objective
  contribution) for a **full** application configuration.

Crucially, the objective receives the full configuration: whether
parameters outside the owned set actually influence the routine's runtime
is exactly what the methodology's sensitivity analysis discovers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

__all__ = ["Routine", "RoutineSet"]


@dataclass(frozen=True)
class Routine:
    """One tunable routine of an application.

    Attributes
    ----------
    name:
        Identifier used as the DAG vertex label (e.g. ``"Group 3"``).
    parameters:
        Names of the parameters this routine owns.  Ownership determines
        which edges of the interdependence DAG are *internal* (expected)
        versus *external* (evidence of interdependence).
    objective:
        ``config -> runtime`` for this routine alone, evaluated on a full
        application configuration.
    weight:
        Relative importance of the routine (e.g. its share of total
        runtime).  Used by the planner's rule 5: when a kernel appears in
        several regions "prioritize the kernel with highest impact".
    """

    name: str
    parameters: tuple[str, ...]
    objective: Callable[[Mapping[str, Any]], float]
    weight: float = 1.0

    def __post_init__(self):
        if not self.name:
            raise ValueError("routine name must be non-empty")
        if not self.parameters:
            raise ValueError(f"routine {self.name!r} owns no parameters")
        if len(set(self.parameters)) != len(self.parameters):
            raise ValueError(f"routine {self.name!r} lists duplicate parameters")
        if self.weight < 0:
            raise ValueError("routine weight must be >= 0")

    def evaluate(self, config: Mapping[str, Any]) -> float:
        """Evaluate this routine's objective on a full configuration."""
        return float(self.objective(config))


class RoutineSet:
    """An ordered collection of routines forming one application.

    Validates that routine names are unique and exposes ownership lookups
    used when classifying DAG edges.  Parameters may be owned by multiple
    routines (the paper's shared cuZcopy kernel appears in Groups 1 and 3);
    :meth:`owners` returns all of them.
    """

    def __init__(self, routines: Sequence[Routine]):
        rs = list(routines)
        if not rs:
            raise ValueError("a routine set needs at least one routine")
        names = [r.name for r in rs]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate routine names: {dupes}")
        self.routines: list[Routine] = rs
        self._by_name = {r.name: r for r in rs}

    def __iter__(self):
        return iter(self.routines)

    def __len__(self) -> int:
        return len(self.routines)

    def __getitem__(self, name: str) -> Routine:
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    @property
    def names(self) -> list[str]:
        return [r.name for r in self.routines]

    def all_parameters(self) -> list[str]:
        """Union of owned parameters, first-owner order, deduplicated."""
        seen: dict[str, None] = {}
        for r in self.routines:
            for p in r.parameters:
                seen.setdefault(p)
        return list(seen)

    def owners(self, parameter: str) -> list[Routine]:
        """Routines that own ``parameter`` (possibly several: shared
        kernels)."""
        return [r for r in self.routines if parameter in r.parameters]

    def shared_parameters(self) -> dict[str, list[str]]:
        """Parameters owned by more than one routine -> owner names."""
        out: dict[str, list[str]] = {}
        for p in self.all_parameters():
            owning = [r.name for r in self.owners(p)]
            if len(owning) > 1:
                out[p] = owning
        return out
