"""The end-to-end tuning methodology (the paper's Section IV pipeline).

:class:`TuningMethodology` wires the five guideline steps together:

1. **Constrain the search and fix the budget** — the caller provides an
   already-constrained :class:`~repro.space.SearchSpace` (domain-expert
   knowledge) and an optional evaluation budget / timeout.
2. **Statistical insights** — an optional random evaluation sample feeds
   Pearson + random-forest feature importance
   (:func:`repro.insights.analyze_parameters`), with the one-in-ten rule
   checked.
3. **Interdependence discovery** — a per-routine sensitivity analysis
   produces the influence matrix (phase 1).
4. **Merge dependent searches, drop parameters** — the
   :class:`~repro.core.SearchPlanner` prunes the DAG at the cut-off,
   partitions it, and caps each search at 10 dimensions (phase 2).
5. **Shared-kernel priority** — handled inside the planner.

:meth:`TuningMethodology.run` then executes the planned searches with the
chosen engine (BO by default) through a :class:`~repro.search.SearchCampaign`
and returns a :class:`MethodologyResult` carrying every intermediate
artifact, the combined best configuration, and the full observation
accounting that backs the paper's cost claims.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from ..faults.injection import FaultPlan
from ..insights.importance import ParameterInsights, analyze_parameters
from ..insights.phase1 import (
    MeasureTask,
    Phase1Evaluator,
    ProfiledMeasurer,
    TargetMeasurer,
    project_observations,
)
from ..insights.sensitivity import SensitivityAnalysis, SensitivityResult
from ..log import get_logger
from ..search.result import CampaignResult
from ..search.runner import SearchCampaign, SearchSpec
from ..search.samplers.base import canonical_engine_name
from ..search.store import space_fingerprint
from ..space import SearchSpace
from ..telemetry.core import NULL_TRACER
from .dag import InterdependenceDAG
from .influence import InfluenceMatrix
from .planner import SearchPlan, SearchPlanner
from .routine import RoutineSet

__all__ = ["TuningMethodology", "MethodologyResult"]

logger = get_logger("core")


@dataclass
class MethodologyResult:
    """Everything the methodology produced, end to end.

    Attributes
    ----------
    sensitivity:
        Phase-1 per-routine sensitivity analysis.
    influence:
        The influence matrix derived from it.
    dag:
        The pruned interdependence DAG.
    plan:
        The final set of searches (Table VII material).
    insights:
        Step-2 statistical insights (``None`` when skipped).
    campaign:
        Search execution results (``None`` for ``plan_only`` runs).
    analysis_evaluations:
        Objective evaluations spent on sensitivity + insights — the
        methodology's *overhead*, which the paper argues is small compared
        to a traditional orthogonality analysis.  With profiled
        evaluation (a profiler-carrying routine set) each analysis
        configuration costs **one** application run regardless of the
        number of targets, so this figure is the paper's ``1 + V x d``
        (plus the insight sample and any re-measurements) rather than
        ``t x`` that.
    analysis_warnings:
        Degradation notes from the insight sample (failed measurements
        that were re-measured once and then dropped); sensitivity-phase
        warnings live on ``sensitivity.warnings``.
    warm_seeded:
        Phase-1 observations injected into search evaluation databases as
        warm-start seed history, summed over members.  Every seeded
        record replaces one fresh search evaluation, so the campaign's
        ``n_evaluations`` is smaller by exactly this amount.
    """

    sensitivity: SensitivityResult
    influence: InfluenceMatrix
    dag: InterdependenceDAG
    plan: SearchPlan
    insights: ParameterInsights | None = None
    campaign: CampaignResult | None = None
    analysis_evaluations: int = 0
    analysis_warnings: list[str] = field(default_factory=list)
    warm_seeded: int = 0
    dag_diagram: str = ""
    """Hierarchy-aware rendering of the DAG (staged edges separated)."""

    @property
    def best_config(self) -> dict[str, Any]:
        if self.campaign is None:
            raise RuntimeError("methodology was run plan-only; no best_config")
        return self.campaign.combined_config

    @property
    def staged_wall_time(self) -> float:
        """Wall-clock respecting stages: searches within a stage run in
        parallel; stages run back to back."""
        if self.campaign is None:
            return 0.0
        by_name = {s.name: s for s in self.campaign.searches}
        total = 0.0
        for stage in self.plan.stages():
            total += max(
                (by_name[p.name].search_time for p in stage if p.name in by_name),
                default=0.0,
            )
        return total

    @property
    def total_evaluations(self) -> int:
        n = self.analysis_evaluations
        if self.campaign is not None:
            n += self.campaign.n_evaluations
        return n

    def summary(self) -> str:
        lines = [
            f"cut-off: {100 * self.plan.cutoff:.0f}%  "
            f"dimension cap: {self.plan.dimension_cap}",
            f"analysis evaluations: {self.analysis_evaluations}",
            "",
            "interdependence DAG:",
            (self.dag_diagram or self.dag.format_diagram())
            or "  (no cross-routine edges)",
            "",
            "planned searches:",
            self.plan.format_table(),
        ]
        if self.campaign is not None:
            lines += [
                "",
                f"campaign wall-time: {self.campaign.measured_wall_time:.2f}s "
                f"(measured)  evaluations: {self.campaign.n_evaluations}",
            ]
            if self.warm_seeded:
                lines.append(
                    f"warm-start: seeded {self.warm_seeded} phase-1 "
                    f"observations ({self.warm_seeded} fewer search "
                    "evaluations)"
                )
        return "\n".join(lines)


class TuningMethodology:
    """Cost-effective complex-tuning-search methodology.

    Parameters
    ----------
    space:
        Constrained full application search space (step 1).
    routines:
        The application's tunable routines with ownership and objectives.
    cutoff:
        Interdependence cut-off (paper: 0.25 synthetic, 0.10 RT-TDDFT).
    dimension_cap:
        Maximum dimensions per search (paper: 10).
    n_variations / variation / variation_mode:
        Sensitivity-analysis controls (paper: V=100 at +10% for synthetic,
        V=5 expert-guided for RT-TDDFT).
    n_baselines:
        Independent random baselines to average the sensitivity scores
        over (>1 stabilizes the influence ranking at proportional
        observation cost).
    insight_samples:
        Size of the random sample for step-2 statistics (0 disables; the
        paper uses 100-200 application runs).
    total_objective:
        Optional full-application objective used for the insight sample
        (defaults to the weighted sum of routine objectives).
    engine / engine_options:
        Search engine for the planned searches.
    engine_overrides:
        Optional mapping of planned-search name (a DAG region label like
        ``"G1"`` or a merged-group name like ``"G3+G4"``) to an engine
        name from the sampler registry — so each region can run the
        engine that fits its space (e.g. ``cma-es-lite`` on an
        all-numeric region, ``tpe`` on a conditional one) while every
        other search keeps the default ``engine``.  Names are validated
        against the registry up front; warm-start seeding is applied per
        member according to its *resolved* engine.
    hierarchy:
        Optional region nesting forwarded to the planner (see
        :class:`~repro.core.SearchPlanner`); enables staged plans like the
        paper's batch-first / MPI-first RT-TDDFT sequencing.
    parallel / n_workers:
        Execute each stage's member searches concurrently in a process
        pool (deterministic in-process fallback when objectives are not
        picklable — per-member results are identical either way).
    parallel_analysis:
        Fan the Phase-1 measurements (baseline, variations, insight
        sample) across the same process pool.  Planning consumes all
        random state before any measurement, so the parallel analysis is
        bit-identical to the sequential one for deterministic objectives
        (set ``noise_scale=0`` on the synthetic suite to verify).
    analysis_checkpoint_dir:
        Directory for Phase-1 append-only observation logs
        (``sensitivity-b<i>.jsonl``, ``insights.jsonl``); a killed
        analysis resumes mid-``V x d`` instead of restarting.
    warm_start:
        Recycle Phase-1 observations as BO seed history: each planned
        search's subspace is matched against the observation log
        (non-tuned parameters are pinned at the sensitivity baseline so
        one-at-a-time variations of tuned parameters match exactly) and
        up to ``warm_start_max`` matches are injected into the member's
        evaluation database before the engine starts — replacing that
        many cold evaluations.  Applies to the ``bo`` / ``batch-bo``
        engines; off by default so existing campaigns reproduce
        bit-for-bit.
    warm_start_tolerance:
        Relative tolerance for numeric pin matching during projection
        (0 = exact).  Tolerance-matched records are tagged
        ``warm_inexact`` and never served from the memoization cache.
    warm_start_max:
        Cap on seeded records per search (``None`` -> the engine's
        ``n_initial``, default 5).  Uncapped seeding could swallow the
        whole budget with one-at-a-time variations and leave BO no fresh
        evaluations.
    checkpoint_dir:
        Directory for crash-recovery checkpoints; each stage writes its
        members' append-only JSONL evaluation databases to
        ``<checkpoint_dir>/stage-<i>/`` and a rerun resumes them.
    max_retries / retry_backoff / memoize:
        Robustness policy applied to every search-stage objective (see
        :class:`~repro.search.SearchSpec`).  Retries absorb
        transiently-classified failures; permanently-classified ones
        short-circuit.
    wall_timeout:
        Real wall-clock deadline (seconds) per search evaluation,
        enforced by the :class:`~repro.faults.WatchdogObjective`.
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan` injected around every
        *search-stage* objective for chaos testing.  Sensitivity and
        insight evaluations are never fault-injected, so
        ``analysis_evaluations`` accounting is unaffected.
    quarantine_threshold / quarantine_resolution:
        Circuit-breaker configuration forwarded to every search (see
        :class:`~repro.faults.CircuitBreaker`).
    eval_store / eval_store_extra / eval_provenance:
        Optional cross-job :class:`~repro.search.EvaluationStore`: every
        search-stage member is given the store with a
        :func:`~repro.search.space_fingerprint` derived from its own
        subspace (pinned assignments included) plus the
        ``eval_store_extra`` context dict, and the ``eval_provenance``
        gate — so successive jobs on the same application never
        re-evaluate a configuration another job already measured.
        Phase-1 analysis measurements are not stored: they observe
        per-routine timings under the profiler, not the search
        objectives.
    telemetry:
        Optional :class:`repro.telemetry.Telemetry`.  The pipeline emits
        ``campaign`` / ``insights`` / ``sensitivity`` / ``dag_partition``
        spans in the campaign scope and threads the handle through every
        stage's :class:`~repro.search.SearchCampaign` (member ``search``
        spans, per-evaluation events, metrics, live progress).  A pure
        observer: results are bit-identical with telemetry on or off.
        ``None`` (default) disables.
    """

    def __init__(
        self,
        space: SearchSpace,
        routines: RoutineSet,
        *,
        cutoff: float = 0.10,
        dimension_cap: int = 10,
        n_variations: int = 5,
        n_baselines: int = 1,
        variation: float = 0.10,
        variation_mode: str = "relative",
        insight_samples: int = 0,
        total_objective: Callable[[Mapping[str, Any]], float] | None = None,
        engine: str = "bo",
        engine_options: dict[str, Any] | None = None,
        engine_overrides: Mapping[str, str] | None = None,
        hierarchy: Mapping[str, Sequence[str]] | None = None,
        parallel: bool = False,
        n_workers: int | None = None,
        parallel_analysis: bool = False,
        analysis_checkpoint_dir: str | None = None,
        warm_start: bool = False,
        warm_start_tolerance: float = 0.0,
        warm_start_max: int | None = None,
        checkpoint_dir: str | None = None,
        max_retries: int = 0,
        retry_backoff: float = 0.05,
        memoize: bool = False,
        wall_timeout: float | None = None,
        fault_plan: FaultPlan | None = None,
        quarantine_threshold: int | None = None,
        quarantine_resolution: int = 4,
        eval_store=None,
        eval_store_extra: Mapping[str, Any] | None = None,
        eval_provenance: Mapping[str, Any] | None = None,
        telemetry=None,
        random_state: int | np.random.Generator | None = None,
    ):
        self.space = space
        self.routines = routines
        self.cutoff = float(cutoff)
        self.dimension_cap = int(dimension_cap)
        self.hierarchy = dict(hierarchy) if hierarchy else None
        self.n_variations = int(n_variations)
        self.n_baselines = int(n_baselines)
        self.variation = float(variation)
        self.variation_mode = variation_mode
        self.insight_samples = int(insight_samples)
        self.total_objective = total_objective
        self.engine = engine
        self.engine_options = dict(engine_options or {})
        self.engine_overrides = dict(engine_overrides or {})
        for region, eng in self.engine_overrides.items():
            canonical_engine_name(eng)  # fail fast on unknown engines
            if not region:
                raise ValueError("engine_overrides keys must be non-empty")
        self.parallel = bool(parallel)
        self.n_workers = n_workers
        self.parallel_analysis = bool(parallel_analysis)
        self.analysis_checkpoint_dir = analysis_checkpoint_dir
        self.warm_start = bool(warm_start)
        self.warm_start_tolerance = float(warm_start_tolerance)
        self.warm_start_max = warm_start_max
        self.checkpoint_dir = checkpoint_dir
        self.max_retries = int(max_retries)
        self.retry_backoff = float(retry_backoff)
        self.memoize = bool(memoize)
        self.wall_timeout = wall_timeout
        self.fault_plan = fault_plan
        self.quarantine_threshold = quarantine_threshold
        self.quarantine_resolution = int(quarantine_resolution)
        self.eval_store = eval_store
        self.eval_store_extra = dict(eval_store_extra or {})
        self.eval_provenance = dict(eval_provenance or {})
        self.telemetry = telemetry
        self.rng = (
            random_state
            if isinstance(random_state, np.random.Generator)
            else np.random.default_rng(random_state)
        )

    # ------------------------------------------------------------------
    def _tracer(self):
        """Campaign-scope tracer (the no-op singleton when disabled)."""
        if self.telemetry is None:
            return NULL_TRACER
        return self.telemetry.tracer()

    def _default_total(self, config: Mapping[str, Any]) -> float:
        return float(sum(r.weight * r.evaluate(config) for r in self.routines))

    def _phase1_evaluator(self) -> Phase1Evaluator:
        """The Phase-1 evaluation engine configured for this run."""
        return Phase1Evaluator(
            parallel=self.parallel_analysis,
            n_workers=self.n_workers,
            checkpoint_dir=self.analysis_checkpoint_dir,
            telemetry=self.telemetry,
        )

    def collect_insights(
        self, evaluator: Phase1Evaluator | None = None
    ) -> tuple[ParameterInsights, int, list[str]]:
        """Step 2: random evaluation sample -> statistical insights.

        Measurements run through the Phase-1 engine: profiled (one
        application run yields all routine timings, summed with their
        weights for the total objective) when the routine set has a
        profiler and no explicit ``total_objective`` was given.  Failed
        measurements (raised or non-finite) are re-measured once; a
        sample point that fails twice is dropped from the sample with a
        warning instead of aborting the campaign.  Returns ``(insights,
        n_evaluations, warnings)``.
        """
        configs = self.space.sample_batch(self.insight_samples, self.rng)
        tasks = [
            MeasureTask(i, "insight", None, dict(c))
            for i, c in enumerate(configs)
        ]
        if self.total_objective is not None:
            measurer = TargetMeasurer({"__total__": self.total_objective})
        elif self.routines.has_profiler:
            measurer = ProfiledMeasurer(self.routines)
        else:
            measurer = TargetMeasurer({"__total__": self._default_total})
        if evaluator is None:
            evaluator = Phase1Evaluator()
        observations = evaluator.run(tasks, measurer, label="insights")

        kept: list[Mapping[str, Any]] = []
        objectives: list[float] = []
        warns: list[str] = []
        n_evals = 0
        for task in tasks:
            obs = observations[task.index]
            n_evals += 1 + obs.extra_runs
            if "__total__" in obs.values:
                y = obs.values["__total__"]
            elif obs.ok:
                y = float(
                    sum(
                        r.weight * obs.values[r.name] for r in self.routines
                    )
                )
            else:
                y = None
            if y is None or not np.isfinite(y):
                last = "; ".join(
                    f"{t}: {e}" for t, e in obs.errors.items()
                ) or f"non-finite total {y!r}"
                warns.append(
                    f"insight sample {task.index}: measurement failed "
                    f"twice ({last}); dropped from the sample"
                )
                continue
            kept.append(configs[task.index])
            objectives.append(y)
        if warns:
            logger.warning(
                "insight sample degraded: %d of %d configurations dropped",
                len(warns), len(configs),
            )
        ins = analyze_parameters(
            self.space, kept, objectives, random_state=self.rng
        )
        return ins, n_evals, warns

    def run_sensitivity(
        self,
        baseline: Mapping[str, Any] | None = None,
        *,
        evaluator: Phase1Evaluator | None = None,
    ) -> SensitivityResult:
        """Step 3 / phase 1: per-routine sensitivity analysis."""
        sa = SensitivityAnalysis.from_routines(
            self.space,
            self.routines,
            n_variations=self.n_variations,
            variation=self.variation,
            mode=self.variation_mode,
            random_state=self.rng,
        )
        if self.n_baselines > 1 and baseline is None:
            return sa.run_averaged(self.n_baselines, evaluator=evaluator)
        return sa.run(baseline, evaluator=evaluator)

    # ------------------------------------------------------------------
    def analyze(
        self,
        baseline: Mapping[str, Any] | None = None,
        *,
        checkpoint: str | None = None,
        evaluator: Phase1Evaluator | None = None,
    ) -> MethodologyResult:
        """Run the analysis phases only (no search execution).

        With ``checkpoint`` set, the phase-1 sensitivity result is loaded
        from that JSON file when it exists (skipping the ``1 + V x d``
        application runs) and saved there after a fresh analysis — crash
        recovery for the observation-expensive phase, mirroring the
        evaluation database's role for the searches.  The file is written
        atomically (temp file + ``os.replace``), and an unparsable
        checkpoint falls back to a fresh analysis with a warning instead
        of poisoning the resume.  Phase 2 is pure computation and always
        re-runs (so cut-off/cap changes re-plan from cached observations
        for free).

        ``evaluator`` overrides the Phase-1 evaluation engine (default:
        one built from ``parallel_analysis`` / ``analysis_checkpoint_dir``
        / ``telemetry``); :meth:`run` passes its own so warm-start
        projection can reuse the collected observations.
        """
        import json
        import os
        import tempfile

        if evaluator is None:
            evaluator = self._phase1_evaluator()
        tracer = self._tracer()
        insights: ParameterInsights | None = None
        analysis_warns: list[str] = []
        analysis_evals = 0
        if self.insight_samples > 0:
            with tracer.span("insights", n_samples=self.insight_samples):
                insights, n, analysis_warns = self.collect_insights(evaluator)
            analysis_evals += n

        sens: SensitivityResult | None = None
        if checkpoint and os.path.exists(checkpoint):
            try:
                with open(checkpoint) as f:
                    sens = SensitivityResult.from_dict(json.load(f))
            except (OSError, ValueError, KeyError, TypeError) as exc:
                logger.warning(
                    "sensitivity checkpoint %s is unparsable (%r); "
                    "falling back to a fresh analysis", checkpoint, exc,
                )
                sens = None
            else:
                tracer.event("sensitivity_checkpoint_loaded", path=checkpoint)
        if sens is None:
            with tracer.span("sensitivity", n_variations=self.n_variations) as sp:
                sens = self.run_sensitivity(baseline, evaluator=evaluator)
                sp.attrs["n_evaluations"] = sens.n_evaluations
            analysis_evals += sens.n_evaluations
            if checkpoint:
                directory = os.path.dirname(os.path.abspath(checkpoint))
                fd, tmp = tempfile.mkstemp(
                    dir=directory,
                    prefix=os.path.basename(checkpoint) + ".",
                    suffix=".tmp",
                )
                try:
                    with os.fdopen(fd, "w") as f:
                        json.dump(sens.to_dict(), f)
                        f.flush()
                        os.fsync(f.fileno())
                    os.replace(tmp, checkpoint)
                except BaseException:
                    try:
                        os.unlink(tmp)
                    except OSError:
                        pass
                    raise

        with tracer.span("dag_partition") as sp:
            influence = InfluenceMatrix.from_sensitivity(self.routines, sens)
            planner = self._planner(influence, insights)
            plan = planner.plan()
            dag = planner.build_dag()
            sp.attrs.update(
                n_searches=len(plan.searches), n_stages=plan.n_stages
            )
        return MethodologyResult(
            sensitivity=sens,
            influence=influence,
            dag=dag,
            plan=plan,
            insights=insights,
            analysis_evaluations=analysis_evals,
            analysis_warnings=analysis_warns,
            dag_diagram=planner.format_dag(dag),
        )

    def _planner(self, influence, insights) -> SearchPlanner:
        return SearchPlanner(
            self.routines,
            influence,
            self.space,
            cutoff=self.cutoff,
            dimension_cap=self.dimension_cap,
            insights=insights,
            hierarchy=self.hierarchy,
        )

    def run(
        self,
        baseline: Mapping[str, Any] | None = None,
        *,
        defaults: Mapping[str, Any] | None = None,
    ) -> MethodologyResult:
        """Full pipeline: analyze, plan, and execute the searches.

        Stages run in order; each stage's searches execute (logically in
        parallel) with every parameter tuned by an *earlier* stage pinned
        to its found optimum.
        """
        tracer = self._tracer()
        with tracer.span("campaign", space=self.space.name) as campaign_span:
            result = self._run_pipeline(baseline, defaults)
            if result.campaign is not None:
                campaign_span.attrs["n_evaluations"] = (
                    result.campaign.n_evaluations
                )
        return result

    def _engine_for(self, search_name: str) -> str:
        """Resolve one planned search's engine (override or default)."""
        return self.engine_overrides.get(search_name, self.engine)

    def _warm_records(self, observations, planner, search, subspace, engine=None):
        """Project Phase-1 observations onto one member's subspace."""
        engine = engine if engine is not None else self.engine
        if not observations or engine not in ("bo", "batch-bo", "gp-bo"):
            return None
        cap = self.warm_start_max
        if cap is None:
            cap = int(self.engine_options.get("n_initial", 5))
        records = project_observations(
            observations,
            planner.members(search),
            subspace,
            tolerance=self.warm_start_tolerance,
            max_records=cap,
        )
        return records or None

    def _run_pipeline(
        self,
        baseline: Mapping[str, Any] | None,
        defaults: Mapping[str, Any] | None,
    ) -> MethodologyResult:
        evaluator = self._phase1_evaluator()
        result = self.analyze(baseline, evaluator=evaluator)
        planner = self._planner(result.influence, result.insights)

        carried: dict[str, Any] = dict(defaults or {})
        observations = evaluator.observations if self.warm_start else []
        if self.warm_start:
            if observations:
                # Pin non-tuned parameters at the sensitivity baseline (a
                # caller's explicit defaults still win): one-at-a-time
                # variations of a search's tuned parameters then match its
                # pinned slice exactly, which is what makes Phase-1
                # observations projectable onto the search subspaces.
                carried = {
                    **dict(result.sensitivity.baseline),
                    **(defaults or {}),
                }
            else:
                logger.debug(
                    "warm start requested but no phase-1 observations were "
                    "collected (checkpoint-loaded analysis?); searches "
                    "start cold"
                )
        campaign = CampaignResult(
            strategy=", ".join(s.name for s in result.plan.searches)
        )
        for stage in range(result.plan.n_stages):
            specs = [
                SearchSpec(
                    space=sub,
                    objective=obj,
                    engine=self._engine_for(s.name),
                    max_evaluations=s.budget,
                    engine_options=dict(self.engine_options),
                    max_retries=self.max_retries,
                    retry_backoff=self.retry_backoff,
                    memoize=self.memoize,
                    wall_timeout=self.wall_timeout,
                    fault_plan=self.fault_plan,
                    quarantine_threshold=self.quarantine_threshold,
                    quarantine_resolution=self.quarantine_resolution,
                    warm_start=self._warm_records(
                        observations, planner, s, sub,
                        engine=self._engine_for(s.name),
                    ),
                    eval_store=self.eval_store,
                    eval_store_key=(
                        space_fingerprint(sub, extra=self.eval_store_extra)
                        if self.eval_store is not None
                        else None
                    ),
                    eval_provenance=(
                        dict(self.eval_provenance)
                        if self.eval_store is not None
                        else None
                    ),
                )
                for s, sub, obj in planner.materialize(
                    result.plan, defaults=carried, stage=stage
                )
            ]
            if not specs:
                continue
            stage_campaign = SearchCampaign(
                specs,
                strategy=f"stage-{stage}",
                random_state=self.rng,
                parallel=self.parallel,
                n_workers=self.n_workers,
                checkpoint_dir=(
                    f"{self.checkpoint_dir}/stage-{stage}"
                    if self.checkpoint_dir
                    else None
                ),
                telemetry=self.telemetry,
            )
            stage_result = stage_campaign.run()
            campaign.searches.extend(stage_result.searches)
            for s in stage_result.searches:
                carried.update(s.tuned_config)
        result.campaign = campaign
        result.warm_seeded = sum(
            s.meta.get("warm_seeded", 0) for s in campaign.searches
        )
        return result
