"""Influence scores: the output of methodology phase 1.

Phase 1 of the paper's methodology "tags the influence of different tuning
parameters on each routine with an influence score", obtained from the
sensitivity analysis (one baseline + V one-at-a-time variations, see
:mod:`repro.insights.sensitivity`).  :class:`InfluenceMatrix` stores these
``(parameter, routine)`` scores together with routine ownership so phase 2
can distinguish

* **internal** influence — a parameter moving its *own* routine (expected;
  never creates a cross-routine DAG edge), from
* **external** influence — a parameter owned by routine A moving routine
  B's runtime (the interdependence signal that, above the cut-off, forces
  A and B into a joint search).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..insights.sensitivity import SensitivityResult
from .routine import RoutineSet

__all__ = ["InfluenceMatrix", "ExternalInfluence"]


@dataclass(frozen=True)
class ExternalInfluence:
    """One cross-routine influence record.

    ``parameter`` is owned by ``source`` (one of possibly several owners)
    and moves ``target``'s runtime by ``score`` (mean relative
    variability).
    """

    parameter: str
    source: str
    target: str
    score: float


class InfluenceMatrix:
    """Dense (parameter x routine) influence-score table with ownership.

    Parameters
    ----------
    routines:
        The application's routines (ownership source of truth).
    scores:
        ``{routine: {parameter: score}}`` — the layout produced by
        :class:`repro.insights.SensitivityResult`.
    """

    def __init__(self, routines: RoutineSet, scores: Mapping[str, Mapping[str, float]]):
        self.routines = routines
        missing = [r for r in routines.names if r not in scores]
        if missing:
            raise ValueError(f"scores missing for routines: {missing}")
        self.parameters: list[str] = routines.all_parameters()
        self._scores: dict[str, dict[str, float]] = {}
        for rname in routines.names:
            row = dict(scores[rname])
            absent = [p for p in self.parameters if p not in row]
            if absent:
                raise ValueError(
                    f"scores for routine {rname!r} missing parameters: {absent}"
                )
            bad = {p: s for p, s in row.items() if s < 0 or not np.isfinite(s)}
            if bad:
                raise ValueError(f"invalid (negative/non-finite) scores: {bad}")
            self._scores[rname] = row

    # ------------------------------------------------------------------
    @classmethod
    def from_sensitivity(
        cls, routines: RoutineSet, result: SensitivityResult
    ) -> "InfluenceMatrix":
        """Adopt a sensitivity analysis whose targets are the routines."""
        return cls(routines, result.scores)

    # ------------------------------------------------------------------
    def score(self, parameter: str, routine: str) -> float:
        """Influence of ``parameter`` on ``routine``'s runtime."""
        return self._scores[routine][parameter]

    def is_internal(self, parameter: str, routine: str) -> bool:
        """True when ``routine`` owns ``parameter``."""
        return parameter in self.routines[routine].parameters

    def routine_scores(self, routine: str) -> dict[str, float]:
        return dict(self._scores[routine])

    def parameter_scores(self, parameter: str) -> dict[str, float]:
        """Influence of one parameter across all routines."""
        return {r: self._scores[r][parameter] for r in self.routines.names}

    def max_influence(self, parameter: str) -> float:
        """Largest influence the parameter exerts on any routine — the
        ranking key used when the planner drops parameters under the
        dimension cap."""
        return max(self.parameter_scores(parameter).values())

    # ------------------------------------------------------------------
    def external_influences(self, cutoff: float = 0.0) -> list[ExternalInfluence]:
        """Cross-routine influences with ``score > cutoff``.

        For a shared parameter (several owners) one record per owner is
        emitted, excluding targets that themselves own the parameter.
        Sorted by descending score for stable reporting.
        """
        if cutoff < 0:
            raise ValueError("cutoff must be >= 0")
        out: list[ExternalInfluence] = []
        for target in self.routines.names:
            for param, s in self._scores[target].items():
                if s <= cutoff or self.is_internal(param, target):
                    continue
                for owner in self.routines.owners(param):
                    out.append(
                        ExternalInfluence(
                            parameter=param,
                            source=owner.name,
                            target=target,
                            score=s,
                        )
                    )
        out.sort(key=lambda e: (-e.score, e.parameter, e.source, e.target))
        return out

    def as_array(self) -> tuple[np.ndarray, list[str], list[str]]:
        """Scores as ``(n_routines, n_parameters)`` + labels."""
        R = self.routines.names
        P = self.parameters
        M = np.array([[self._scores[r][p] for p in P] for r in R], dtype=float)
        return M, R, P

    def format_table(self, k: int = 10) -> str:
        """Top-``k`` parameters per routine, Tables II/V/VI style."""
        lines = []
        for r in self.routines.names:
            lines.append(f"== {r} ==")
            top = sorted(self._scores[r].items(), key=lambda kv: -kv[1])[:k]
            for p, s in top:
                marker = "" if self.is_internal(p, r) else "  <- external"
                lines.append(f"  {p:<16} {100.0 * s:8.2f}%{marker}")
        return "\n".join(lines)
