"""The paper's primary contribution: the cost-effective tuning methodology.

Routine abstraction, influence scoring, interdependence DAG partitioning,
the 10-dimension search planner, and the end-to-end
:class:`TuningMethodology` pipeline.
"""

from .dag import InterdependenceDAG
from .influence import ExternalInfluence, InfluenceMatrix
from .methodology import MethodologyResult, TuningMethodology
from .planner import PlannedSearch, SearchPlan, SearchPlanner
from .routine import Routine, RoutineSet

__all__ = [
    "Routine",
    "RoutineSet",
    "InfluenceMatrix",
    "ExternalInfluence",
    "InterdependenceDAG",
    "SearchPlanner",
    "SearchPlan",
    "PlannedSearch",
    "TuningMethodology",
    "MethodologyResult",
]
