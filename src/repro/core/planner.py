"""Search planning: turn the DAG partition into concrete searches.

Implements methodology steps 4 and 5 (paper Section IV):

4. *"Merge dependent searches and drop parameters: we limit to 10
   dimensions per search."*  Each weakly-connected DAG component becomes
   one planned search over the union of its routines' parameters.  When a
   component's parameter count exceeds ``dimension_cap``, the "ten most
   influential variables (based on the data insights)" are kept; the rest
   are pinned to their defaults.
5. *"If the same kernel appears in different regions, and its parameter
   values must be the same across all regions, prioritize the kernel with
   highest impact."*  A parameter owned by routines that land in different
   components is tuned only in the component whose owning routine has the
   highest ``weight``; the other components treat it as pinned.

The planner is a pure function of (routines, influence matrix, space,
cut-off, cap, optional importance ranking): it performs **no** objective
evaluations, so it can be unit-tested exhaustively and re-run for the
cut-off / cap ablations at zero cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from ..insights.importance import ParameterInsights
from ..space import PinnedSubspace, SearchSpace
from .dag import InterdependenceDAG
from .influence import InfluenceMatrix
from .routine import RoutineSet

__all__ = ["PlannedSearch", "SearchPlan", "SearchPlanner"]


@dataclass
class PlannedSearch:
    """One search the methodology decided to run.

    Attributes
    ----------
    name:
        e.g. ``"Group 3+Group 4"`` for a merged search.
    routines:
        Member routine names (singleton for independent searches).
    tuned:
        Parameter names actually searched (post cap, post shared-kernel
        resolution), in influence-rank order.
    dropped:
        Parameters this search *would* own but pins instead: either cut by
        the dimension cap or ceded to a higher-impact component.  Values
        are the reasons (``"dimension-cap"`` / ``"owned-elsewhere"``).
    budget:
        Evaluation budget (the paper's ``10 x dims``).
    """

    name: str
    routines: tuple[str, ...]
    tuned: tuple[str, ...]
    dropped: dict[str, str] = field(default_factory=dict)
    stage: int = 0

    @property
    def dimension(self) -> int:
        return len(self.tuned)

    @property
    def budget(self) -> int:
        return 10 * self.dimension

    @property
    def is_merged(self) -> bool:
        return len(self.routines) > 1


@dataclass
class SearchPlan:
    """The full set of planned searches plus shared context.

    ``pinned`` collects the default assignments of every dropped
    parameter so callers can build consistent full configurations.
    """

    searches: list[PlannedSearch]
    cutoff: float
    dimension_cap: int
    pinned: dict[str, Any] = field(default_factory=dict)

    @property
    def n_searches(self) -> int:
        return len(self.searches)

    @property
    def n_stages(self) -> int:
        return 1 + max((s.stage for s in self.searches), default=0)

    def stages(self) -> list[list[PlannedSearch]]:
        """Searches grouped by execution stage.

        Stage k+1 searches start only after stage k finished, pinning the
        values stage k tuned — the paper's "we first determine the batch
        value that optimizes the overall execution of the Slater
        Determinant region" sequencing.
        """
        out: list[list[PlannedSearch]] = [[] for _ in range(self.n_stages)]
        for s in self.searches:
            out[s.stage].append(s)
        return out

    def search_for(self, routine: str) -> PlannedSearch:
        for s in self.searches:
            if routine in s.routines:
                return s
        raise KeyError(f"no planned search contains routine {routine!r}")

    def all_tuned(self) -> list[str]:
        out: list[str] = []
        for s in self.searches:
            out.extend(s.tuned)
        return out

    def format_table(self) -> str:
        """Table VII-style rendering of the plan."""
        lines = [f"{'Search':<28} {'Stage':>5} {'Dims':>4}  Parameters"]
        for s in self.searches:
            label = "+".join(s.routines)
            lines.append(
                f"{label:<28} {s.stage:>5} {s.dimension:>4}  {', '.join(s.tuned)}"
            )
            for p, why in sorted(s.dropped.items()):
                lines.append(f"{'':<28} {'':>5} {'':>4}  [dropped {p}: {why}]")
        return "\n".join(lines)


class SearchPlanner:
    """Build a :class:`SearchPlan` and materialize its subspaces/objectives.

    Parameters
    ----------
    routines, influence:
        Phase-1 outputs.
    space:
        The full application search space (domains + constraints).
    cutoff:
        Interdependence cut-off for the DAG prune (fractional: 0.25 = 25%).
    dimension_cap:
        Maximum dimensions per search (paper: 10).
    insights:
        Optional :class:`repro.insights.ParameterInsights`; when present,
        the drop ranking combines sensitivity influence with forest
        importance (both normalized ranks, sensitivity first) — matching
        the paper's "leveraging insights from sensitivity analysis and
        feature importance analysis".
    hierarchy:
        Optional region nesting, ``{enclosing routine: [enclosed
        routines]}`` (direct children; transitive nesting is derived).
        Interdependence edges between an enclosing region and its own
        members do not merge searches — an outer loop's parameter
        (``nbatches``) trivially moves every kernel it launches.  Instead
        they *stage* the plan: the enclosing region's search runs first
        and its tuned values are pinned for the enclosed searches, exactly
        the paper's handling of ``nbatches``/``nstreams`` and the MPI
        grid for RT-TDDFT.
    """

    def __init__(
        self,
        routines: RoutineSet,
        influence: InfluenceMatrix,
        space: SearchSpace,
        *,
        cutoff: float = 0.10,
        dimension_cap: int = 10,
        insights: ParameterInsights | None = None,
        hierarchy: Mapping[str, Sequence[str]] | None = None,
    ):
        if cutoff < 0:
            raise ValueError("cutoff must be >= 0")
        if dimension_cap < 1:
            raise ValueError("dimension_cap must be >= 1")
        missing = [p for p in routines.all_parameters() if p not in space]
        if missing:
            raise ValueError(f"routines reference parameters not in the space: {missing}")
        self.routines = routines
        self.influence = influence
        self.space = space
        self.cutoff = float(cutoff)
        self.dimension_cap = int(dimension_cap)
        self.insights = insights
        self._ancestors = self._close_hierarchy(hierarchy or {})

    def _close_hierarchy(
        self, hierarchy: Mapping[str, Sequence[str]]
    ) -> dict[str, set[str]]:
        """``{routine: set of its (transitive) ancestors}``."""
        parent: dict[str, set[str]] = {r: set() for r in self.routines.names}
        for anc, members in hierarchy.items():
            if anc not in self.routines:
                raise KeyError(f"unknown routine in hierarchy: {anc!r}")
            for m in members:
                if m not in self.routines:
                    raise KeyError(f"unknown routine in hierarchy: {m!r}")
                if m == anc:
                    raise ValueError(f"routine {anc!r} cannot enclose itself")
                parent[m].add(anc)
        # Transitive closure (hierarchies are tiny; repeated passes fine).
        changed = True
        while changed:
            changed = False
            for r, anc in parent.items():
                extra = set().union(*(parent[a] for a in anc)) - anc if anc else set()
                if r in extra or r in anc:
                    raise ValueError(f"hierarchy contains a cycle through {r!r}")
                if extra:
                    anc.update(extra)
                    changed = True
        return parent

    def _is_hierarchical(self, a: str, b: str) -> bool:
        """True when one routine (transitively) encloses the other."""
        return a in self._ancestors[b] or b in self._ancestors[a]

    # ------------------------------------------------------------------
    def build_dag(self) -> InterdependenceDAG:
        return InterdependenceDAG.from_influence(self.influence, cutoff=self.cutoff)

    def format_dag(self, dag: InterdependenceDAG) -> str:
        """Hierarchy-aware rendering of ``dag`` (staged edges separate)."""
        return dag.format_diagram(is_hierarchical=self._is_hierarchical)

    def _peer_dag(self, full: InterdependenceDAG) -> InterdependenceDAG:
        """Copy of the DAG without hierarchical (enclosing<->enclosed)
        edges — the graph whose components define merged searches."""
        peer = InterdependenceDAG(self.routines)
        for src, dst, params in full.edges():
            if self._is_hierarchical(src, dst):
                continue
            for p, s in params.items():
                peer.add_dependence(src, dst, p, s)
        return peer

    def _assign_stages(
        self, full: InterdependenceDAG, components: list[list[str]]
    ) -> dict[int, int]:
        """Stage index per component (longest-path depth over the
        enclosing->enclosed edges between components)."""
        import networkx as nx

        comp_of = {r: i for i, comp in enumerate(components) for r in comp}
        H = nx.DiGraph()
        H.add_nodes_from(range(len(components)))
        for src, dst, _params in full.edges():
            if not self._is_hierarchical(src, dst):
                continue
            anc, desc = (src, dst) if src in self._ancestors[dst] else (dst, src)
            ca, cd = comp_of[anc], comp_of[desc]
            if ca != cd:
                H.add_edge(ca, cd)
        if not nx.is_directed_acyclic_graph(H):
            # A component both encloses and is enclosed by another (merged
            # across hierarchy levels); no consistent order exists, run
            # everything concurrently.
            return {i: 0 for i in range(len(components))}
        stages = {}
        for c in nx.topological_sort(H):
            preds = list(H.predecessors(c))
            stages[c] = 1 + max((stages[p] for p in preds), default=-1)
        return stages

    def _rank_key(self, component: Sequence[str]) -> Callable[[str], tuple]:
        """Descending-influence ranking for parameters of one component.

        Primary key: max sensitivity influence on any member routine.
        Tie-break: forest importance (when available), then name.
        """
        imp = self.insights.importances if self.insights is not None else {}

        def key(param: str) -> tuple:
            sens = max(self.influence.score(param, r) for r in component)
            return (-sens, -imp.get(param, 0.0), param)

        return key

    def _component_parameters(self, component: Sequence[str]) -> list[str]:
        seen: dict[str, None] = {}
        for rname in component:
            for p in self.routines[rname].parameters:
                seen.setdefault(p)
        return list(seen)

    def _resolve_shared(
        self, components: list[list[str]]
    ) -> dict[str, str]:
        """Shared-kernel rule: parameter -> winning routine name.

        Only parameters whose owners span *different* components need
        resolution; the winner is the owner on which the parameter has
        the highest measured influence — "the region with highest impact"
        (ties: higher routine weight, then routine order).  For the
        paper's shared cuZcopy kernel this selects Group 3, whose forward
        transpose&padding moves far more data than Group 1's backward
        transpose.
        """
        comp_of = {r: i for i, comp in enumerate(components) for r in comp}
        winners: dict[str, str] = {}
        for param, owner_names in self.routines.shared_parameters().items():
            comps = {comp_of[o] for o in owner_names}
            if len(comps) <= 1:
                continue  # all owners merged anyway
            order = {n: i for i, n in enumerate(self.routines.names)}
            best = max(
                owner_names,
                key=lambda o: (
                    self.influence.score(param, o),
                    self.routines[o].weight,
                    -order[o],
                ),
            )
            winners[param] = best
        return winners

    # ------------------------------------------------------------------
    def plan(self) -> SearchPlan:
        """Produce the search plan (no objective evaluations)."""
        full = self.build_dag()
        components = self._peer_dag(full).partition()
        stages = self._assign_stages(full, components)
        shared_winners = self._resolve_shared(components)
        comp_of = {r: i for i, comp in enumerate(components) for r in comp}

        searches: list[PlannedSearch] = []
        pinned: dict[str, Any] = {}
        for ci, comp in enumerate(components):
            params = self._component_parameters(comp)
            dropped: dict[str, str] = {}

            # Rule 5: cede shared parameters won by another component.
            kept = []
            for p in params:
                winner = shared_winners.get(p)
                if winner is not None and comp_of[winner] != comp_of[comp[0]]:
                    dropped[p] = "owned-elsewhere"
                else:
                    kept.append(p)

            # Rule 4: dimension cap, keep the most influential.
            kept.sort(key=self._rank_key(comp))
            if len(kept) > self.dimension_cap:
                for p in kept[self.dimension_cap:]:
                    dropped[p] = "dimension-cap"
                kept = kept[: self.dimension_cap]

            for p, why in dropped.items():
                if why == "dimension-cap":
                    pinned[p] = self.space[p].default

            searches.append(
                PlannedSearch(
                    name="+".join(comp),
                    routines=tuple(comp),
                    tuned=tuple(kept),
                    dropped=dropped,
                    stage=stages.get(ci, 0),
                )
            )
        searches.sort(key=lambda s: s.stage)
        return SearchPlan(
            searches=searches,
            cutoff=self.cutoff,
            dimension_cap=self.dimension_cap,
            pinned=pinned,
        )

    # ------------------------------------------------------------------
    def materialize(
        self,
        plan: SearchPlan,
        *,
        defaults: Mapping[str, Any] | None = None,
        stage: int | None = None,
    ) -> list[tuple[PlannedSearch, PinnedSubspace, Callable[[Mapping[str, Any]], float]]]:
        """Turn a plan into (search, subspace, objective) triples.

        Each subspace keeps the search's tuned parameters and pins the
        rest (plan pins > caller ``defaults`` > parameter defaults).  The
        objective of a search is the **weighted sum of its member
        routines' objectives** — for a merged search this is the paper's
        "minimize joint runtime".  With ``stage`` given, only that stage's
        searches are materialized (callers pass earlier stages' tuned
        values through ``defaults``).
        """
        base = self.space.defaults()
        base.update(defaults or {})
        base.update(plan.pinned)

        out = []
        for s in plan.searches:
            if stage is not None and s.stage != stage:
                continue
            sub = self.space.subspace(list(s.tuned), pinned=base, name=s.name)
            members = self.members(s)

            def objective(config: Mapping[str, Any], _members=members) -> float:
                return float(sum(m.weight * m.evaluate(config) for m in _members))

            out.append((s, sub, objective))
        return out

    def members(self, search: PlannedSearch) -> list:
        """The member routines of one planned search, in plan order.

        The order matters: a search's objective sums ``weight *
        objective`` over exactly this sequence, and warm-start projection
        reconstructs that sum from profiled Phase-1 observations — same
        members, same order, bit-identical floating-point result.
        """
        return [self.routines[r] for r in search.routines]
