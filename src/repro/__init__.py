"""repro — reproduction of "Cost-Effective Methodology for Complex Tuning
Searches in HPC: Navigating Interdependencies and Dimensionality"
(Dieguez et al., IPDPS 2024).

Public API tour
---------------
* :mod:`repro.core` — the methodology: routines, influence matrices, the
  interdependence DAG, the search planner, and the end-to-end
  :class:`~repro.core.TuningMethodology` pipeline.
* :mod:`repro.space` — constrained mixed-type search spaces.
* :mod:`repro.bo` — the Bayesian-optimization engine (GP surrogates,
  acquisitions, crash-recoverable databases, transfer learning).
* :mod:`repro.search` — random/grid baselines and the campaign runner.
* :mod:`repro.faults` — failure taxonomy, deterministic fault injection,
  evaluation watchdog, and circuit breaker (see ``docs/robustness.md``).
* :mod:`repro.insights` — sensitivity analysis, correlation, random-forest
  feature importance.
* :mod:`repro.synthetic` — the paper's five 20-dimensional synthetic cases.
* :mod:`repro.tddft` — the simulated GPU-offloaded RT-TDDFT application.
* :mod:`repro.mpisim` — the simulated MPI cluster substrate.

Quickstart
----------
>>> from repro.synthetic import SyntheticFunction
>>> from repro.core import TuningMethodology
>>> f = SyntheticFunction(case=3, random_state=0)
>>> tm = TuningMethodology(f.search_space(), f.routines(),
...                        cutoff=0.25, n_variations=20, random_state=0)
>>> result = tm.analyze()
>>> [s.name for s in result.plan.searches]
['Group 1', 'Group 2', 'Group 3+Group 4']
"""

from . import (
    bo,
    core,
    faults,
    insights,
    mpisim,
    profiling,
    search,
    space,
    synthetic,
    tddft,
)
from .core import (
    InfluenceMatrix,
    InterdependenceDAG,
    MethodologyResult,
    Routine,
    RoutineSet,
    SearchPlan,
    SearchPlanner,
    TuningMethodology,
)
from .space import Categorical, Integer, Ordinal, Real, SearchSpace

__version__ = "1.0.0"

__all__ = [
    "bo",
    "core",
    "faults",
    "insights",
    "mpisim",
    "profiling",
    "search",
    "space",
    "synthetic",
    "tddft",
    "Routine",
    "RoutineSet",
    "InfluenceMatrix",
    "InterdependenceDAG",
    "SearchPlanner",
    "SearchPlan",
    "TuningMethodology",
    "MethodologyResult",
    "SearchSpace",
    "Real",
    "Integer",
    "Ordinal",
    "Categorical",
    "__version__",
]
