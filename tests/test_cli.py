"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_synthetic_defaults(self):
        args = build_parser().parse_args(["synthetic"])
        assert args.case == 3 and args.cutoff == 0.25

    def test_tddft_defaults(self):
        args = build_parser().parse_args(["tddft"])
        assert args.case_study == 1 and args.cutoff == 0.10

    def test_invalid_case_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["synthetic", "--case", "7"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out
        assert "bench_table3_strategies.py" in out

    def test_synthetic_plan_only(self, capsys):
        rc = main(
            ["synthetic", "--case", "4", "--variations", "20", "--plan-only"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Group 3+Group 4" in out

    def test_tddft_plan_only(self, capsys):
        rc = main(
            ["tddft", "--case-study", "1", "--variations", "5",
             "--baselines", "2", "--plan-only"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Slater Determinant" in out
        assert "Stage" in out
