"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_synthetic_defaults(self):
        args = build_parser().parse_args(["synthetic"])
        assert args.case == 3 and args.cutoff == 0.25

    def test_tddft_defaults(self):
        args = build_parser().parse_args(["tddft"])
        assert args.case_study == 1 and args.cutoff == 0.10

    def test_invalid_case_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["synthetic", "--case", "7"])

    def test_telemetry_flags(self):
        args = build_parser().parse_args(
            ["synthetic", "--trace-dir", "/tmp/t", "--quiet", "-vv"]
        )
        assert args.trace_dir == "/tmp/t"
        assert args.no_progress is True
        assert args.verbose == 2

    def test_report_requires_trace_path(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["report"])

    def test_phase1_engine_flags(self):
        args = build_parser().parse_args([
            "synthetic", "--parallel-analysis",
            "--analysis-checkpoint-dir", "/tmp/p1",
            "--warm-start", "--warm-start-tolerance", "0.05",
            "--warm-start-max", "3",
        ])
        assert args.parallel_analysis is True
        assert args.analysis_checkpoint_dir == "/tmp/p1"
        assert args.warm_start is True
        assert args.warm_start_tolerance == 0.05
        assert args.warm_start_max == 3

    def test_phase1_engine_defaults_off(self):
        args = build_parser().parse_args(["tddft", "--no-warm-start"])
        assert args.parallel_analysis is False
        assert args.analysis_checkpoint_dir is None
        assert args.warm_start is False
        assert args.warm_start_tolerance == 0.0
        assert args.warm_start_max is None

    def test_phase1_flags_reach_methodology_kwargs(self):
        from repro.cli import _robustness_kwargs

        args = build_parser().parse_args(
            ["synthetic", "--warm-start", "--parallel-analysis"]
        )
        kw = _robustness_kwargs(args)
        assert kw["warm_start"] is True
        assert kw["parallel_analysis"] is True
        assert kw["warm_start_tolerance"] == 0.0
        assert kw["warm_start_max"] is None
        assert kw["analysis_checkpoint_dir"] is None


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out
        assert "bench_table3_strategies.py" in out

    def test_synthetic_plan_only(self, capsys):
        rc = main(
            ["synthetic", "--case", "4", "--variations", "20", "--plan-only"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Group 3+Group 4" in out

    def test_tddft_plan_only(self, capsys):
        rc = main(
            ["tddft", "--case-study", "1", "--variations", "5",
             "--baselines", "2", "--plan-only"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Slater Determinant" in out
        assert "Stage" in out


class TestTelemetryCommands:
    def test_no_trace_dir_writes_no_telemetry_files(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        rc = main(
            ["synthetic", "--case", "1", "--variations", "5", "--seed", "0",
             "--no-progress", "--plan-only"]
        )
        assert rc == 0
        assert list(tmp_path.rglob("*.jsonl")) == []

    def test_trace_dir_then_report(self, tmp_path, capsys):
        rc = main(
            ["synthetic", "--case", "1", "--variations", "5", "--seed", "0",
             "--trace-dir", str(tmp_path), "--no-progress"]
        )
        assert rc == 0
        trace = tmp_path / "synthetic.trace.jsonl"
        assert trace.exists()
        capsys.readouterr()

        rc = main(["report", str(trace)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "stage wall-time attribution" in out
        assert "best-value-vs-evaluations progression" in out
        assert "campaign" in out

    def test_report_empty_trace_fails(self, tmp_path, capsys):
        trace = tmp_path / "empty.trace.jsonl"
        trace.write_text(
            '{"format":"repro-trace","kind":"header","version":1}\n'
        )
        assert main(["report", str(trace)]) == 1
        assert "empty trace" in capsys.readouterr().out
