"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_synthetic_defaults(self):
        args = build_parser().parse_args(["synthetic"])
        assert args.case == 3 and args.cutoff == 0.25

    def test_tddft_defaults(self):
        args = build_parser().parse_args(["tddft"])
        assert args.case_study == 1 and args.cutoff == 0.10

    def test_invalid_case_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["synthetic", "--case", "7"])

    def test_telemetry_flags(self):
        args = build_parser().parse_args(
            ["synthetic", "--trace-dir", "/tmp/t", "--quiet", "-vv"]
        )
        assert args.trace_dir == "/tmp/t"
        assert args.no_progress is True
        assert args.verbose == 2

    def test_report_without_source_is_usage_error(self, capsys):
        # TRACE became optional when --service arrived, so the check
        # moved from argparse into the command itself.
        assert build_parser().parse_args(["report"]).trace is None
        assert main(["report"]) == 2
        assert "--service" in capsys.readouterr().err

    def test_report_service_flag(self):
        args = build_parser().parse_args(["report", "--service", "/tmp/svc"])
        assert args.service == "/tmp/svc"
        assert args.trace is None

    def test_watch_defaults(self):
        args = build_parser().parse_args(["watch"])
        assert args.job is None
        assert args.server == "http://127.0.0.1:8642"
        assert args.raw is False
        assert args.last_event_id is None
        assert args.max_events is None
        assert args.timeout == 3600

    def test_watch_flags(self):
        args = build_parser().parse_args(
            ["watch", "job-1", "--raw", "--last-event-id", "7",
             "--max-events", "20", "--keepalive", "2.5"]
        )
        assert args.job == "job-1"
        assert args.raw is True
        assert args.last_event_id == 7
        assert args.max_events == 20
        assert args.keepalive == 2.5

    def test_serve_job_traces_toggle(self):
        base = ["serve", "--registry-dir", "/tmp/svc"]
        assert build_parser().parse_args(base).job_traces is True
        args = build_parser().parse_args(base + ["--no-job-traces"])
        assert args.job_traces is False

    def test_phase1_engine_flags(self):
        args = build_parser().parse_args([
            "synthetic", "--parallel-analysis",
            "--analysis-checkpoint-dir", "/tmp/p1",
            "--warm-start", "--warm-start-tolerance", "0.05",
            "--warm-start-max", "3",
        ])
        assert args.parallel_analysis is True
        assert args.analysis_checkpoint_dir == "/tmp/p1"
        assert args.warm_start is True
        assert args.warm_start_tolerance == 0.05
        assert args.warm_start_max == 3

    def test_phase1_engine_defaults_off(self):
        args = build_parser().parse_args(["tddft", "--no-warm-start"])
        assert args.parallel_analysis is False
        assert args.analysis_checkpoint_dir is None
        assert args.warm_start is False
        assert args.warm_start_tolerance == 0.0
        assert args.warm_start_max is None

    def test_phase1_flags_reach_methodology_kwargs(self):
        from repro.cli import _robustness_kwargs

        args = build_parser().parse_args(
            ["synthetic", "--warm-start", "--parallel-analysis"]
        )
        kw = _robustness_kwargs(args)
        assert kw["warm_start"] is True
        assert kw["parallel_analysis"] is True
        assert kw["warm_start_tolerance"] == 0.0
        assert kw["warm_start_max"] is None
        assert kw["analysis_checkpoint_dir"] is None


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out
        assert "bench_table3_strategies.py" in out

    def test_synthetic_plan_only(self, capsys):
        rc = main(
            ["synthetic", "--case", "4", "--variations", "20", "--plan-only"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Group 3+Group 4" in out

    def test_tddft_plan_only(self, capsys):
        rc = main(
            ["tddft", "--case-study", "1", "--variations", "5",
             "--baselines", "2", "--plan-only"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Slater Determinant" in out
        assert "Stage" in out


class TestTelemetryCommands:
    def test_no_trace_dir_writes_no_telemetry_files(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        rc = main(
            ["synthetic", "--case", "1", "--variations", "5", "--seed", "0",
             "--no-progress", "--plan-only"]
        )
        assert rc == 0
        assert list(tmp_path.rglob("*.jsonl")) == []

    def test_trace_dir_then_report(self, tmp_path, capsys):
        rc = main(
            ["synthetic", "--case", "1", "--variations", "5", "--seed", "0",
             "--trace-dir", str(tmp_path), "--no-progress"]
        )
        assert rc == 0
        trace = tmp_path / "synthetic.trace.jsonl"
        assert trace.exists()
        capsys.readouterr()

        rc = main(["report", str(trace)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "stage wall-time attribution" in out
        assert "best-value-vs-evaluations progression" in out
        assert "campaign" in out

    def test_report_empty_trace_fails(self, tmp_path, capsys):
        trace = tmp_path / "empty.trace.jsonl"
        trace.write_text(
            '{"format":"repro-trace","kind":"header","version":1}\n'
        )
        assert main(["report", str(trace)]) == 1
        assert "empty trace" in capsys.readouterr().out


class TestServiceCommands:
    FAST = {"engine": "bo", "budget": 5, "seed": 0}

    def _run_service_dir(self, tmp_path):
        from repro.service import JobRegistry, JobSpec, Supervisor

        registry = JobRegistry(tmp_path / "registry")
        sup = Supervisor(
            registry, jobs_dir=str(tmp_path / "jobs"), workers=1, inline=True
        )
        rec, _ = sup.submit(JobSpec(kind="campaign", params=dict(self.FAST)))
        sup.run(drain_when_idle=True, poll_interval=0.0)
        registry.close()
        return rec

    def test_report_service_aggregates(self, tmp_path, capsys):
        rec = self._run_service_dir(tmp_path)
        assert main(["report", "--service", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert rec.job_id in out
        assert "cross-job stage wall-time attribution" in out

    def test_report_service_empty_dir(self, tmp_path, capsys):
        from repro.service import JobRegistry

        JobRegistry(tmp_path / "registry").close()
        assert main(["report", "--service", str(tmp_path)]) == 1
        assert "no jobs" in capsys.readouterr().out

    def test_watch_job_to_completion(self, tmp_path, capsys):
        import json
        import threading

        from repro.service import (
            JobRegistry, ServiceServer, Supervisor, submit_job,
        )

        registry = JobRegistry(tmp_path / "registry")
        sup = Supervisor(
            registry, jobs_dir=str(tmp_path / "jobs"), workers=1, inline=True
        )
        thread = threading.Thread(
            target=sup.run, kwargs={"poll_interval": 0.01}, daemon=True
        )
        thread.start()
        try:
            with ServiceServer(sup) as server:
                rec = submit_job(server.url, "campaign", params=self.FAST)
                rc = main(
                    ["watch", rec["job_id"], "--server", server.url,
                     "--keepalive", "0.5", "--timeout", "60"]
                )
                out = capsys.readouterr().out
                assert rc == 0
                assert f"{rec['job_id']} done" in out
                assert "tune_start" in out
                assert out.count("eval #") == self.FAST["budget"]
                capsys.readouterr()

                # --raw replays the same stream as machine-readable JSON.
                rc = main(
                    ["watch", rec["job_id"], "--server", server.url,
                     "--raw", "--keepalive", "0.5", "--timeout", "60"]
                )
                lines = [
                    json.loads(l) for l in
                    capsys.readouterr().out.splitlines()
                ]
                assert rc == 0
                assert all("cursor" in l for l in lines)
                assert lines[-1]["event"] == "job_done"
        finally:
            sup.request_drain()
            thread.join(timeout=30)
            registry.close()

    def test_watch_unknown_job_errors(self, tmp_path, capsys):
        import threading

        from repro.service import JobRegistry, ServiceServer, Supervisor

        registry = JobRegistry(tmp_path / "registry")
        sup = Supervisor(
            registry, jobs_dir=str(tmp_path / "jobs"), workers=1, inline=True
        )
        try:
            with ServiceServer(sup) as server:
                rc = main(["watch", "ghost", "--server", server.url])
            assert rc == 1
            assert "ghost" in capsys.readouterr().err
        finally:
            registry.close()
