"""Tests for the cluster machine model."""

import pytest

from repro.mpisim import ClusterSpec, InterconnectSpec, NodeSpec, perlmutter_gpu


class TestSpecs:
    def test_perlmutter_defaults(self):
        c = perlmutter_gpu()
        assert c.nodes == 10
        assert c.ranks_per_node == 4  # one rank per A100
        assert c.total_ranks == 40
        assert c.node.gpus == 4
        assert c.node.cores == 64

    def test_rank_placement(self):
        c = perlmutter_gpu(nodes=3)
        assert c.node_of_rank(0) == 0
        assert c.node_of_rank(3) == 0
        assert c.node_of_rank(4) == 1
        assert c.node_of_rank(11) == 2
        assert c.same_node(0, 3)
        assert not c.same_node(3, 4)

    def test_rank_out_of_range(self):
        c = perlmutter_gpu(nodes=2)
        with pytest.raises(ValueError):
            c.node_of_rank(8)
        with pytest.raises(ValueError):
            c.node_of_rank(-1)

    def test_intra_node_bandwidth_bounded_by_dram(self):
        c = perlmutter_gpu()
        assert c.intra_node_bandwidth() <= c.node.memory_bandwidth

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec(nodes=0)
        with pytest.raises(ValueError):
            ClusterSpec(ranks_per_node=0)
        with pytest.raises(ValueError):
            NodeSpec(cores=0)
        with pytest.raises(ValueError):
            NodeSpec(pcie_bandwidth=-1.0)
        with pytest.raises(ValueError):
            InterconnectSpec(injection_bandwidth=0.0)
